//! The Model Tuning Server and the end-to-end EdgeTune run
//! (Algorithm 1).
//!
//! [`EdgeTune`] wires everything together: a [`TrainingBackend`] supplies
//! trials, a sampler + multi-fidelity scheduler explores the joint
//! (model × training × system)-parameter space under a budget policy, and
//! for every trial an [`AsyncInferenceServer`] request is fired *at trial
//! start* and collected *at trial end* — the onefold pipelining of Fig. 6.
//! Trial scores combine training cost, accuracy and the estimated
//! inference metrics through the §4.4 ratio objective, and the user gets
//! back both the winning configuration and the deployment
//! [`InferenceRecommendation`].
//!
//! Time accounting is *simulated*: trial runtimes come from the device
//! models, and because the inference sweep runs on separate CPU resources
//! in parallel with training, it only extends the tuning makespan when it
//! outlasts its trial (which the paper argues — and these models confirm —
//! essentially never happens). Its *energy*, however, is real work done by
//! the tuning server and is always added.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Duration;

use edgetune_device::profile::WorkProfile;
use edgetune_device::spec::DeviceSpec;
use edgetune_faults::{
    DegradationLadder, DegradationStats, Fallback, FaultInjector, FaultPlan, Supervisor, TrialFault,
};
use edgetune_tuner::budget::{BudgetPolicy, TrialBudget};
use edgetune_tuner::objective::{InferenceObjective, TrainMeasurement, TrainObjective};
use edgetune_tuner::sampler::{GridSampler, RandomSampler, Sampler, TpeSampler};
use edgetune_tuner::scheduler::{Evaluate, HyperBand, SchedulerConfig, SuccessiveHalving};
use edgetune_tuner::space::Config;
use edgetune_tuner::trial::{History, TrialFailure, TrialOutcome, TrialRecord};
use edgetune_tuner::Metric;
use edgetune_util::rng::SeedStream;
use edgetune_util::units::{Joules, Seconds};
use edgetune_util::{Error, Result};
use edgetune_workloads::catalog::{Workload, WorkloadId};

use crate::async_server::{AsyncInferenceServer, InferenceReply};
use crate::backend::{SimTrainingBackend, TrainingBackend};
use crate::cache::{CacheKey, CacheStats, HistoricalCache};
use crate::checkpoint::StudyCheckpoint;
use crate::inference::{
    fallback_recommendation, InferenceRecommendation, InferenceSpace, InferenceTuningServer,
};
use crate::timeline::{Lane, Timeline};

/// Which search strategy the Model Tuning Server uses (§4.2; the user
/// can pick per server, the default being BOHB = TPE + HyperBand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Exhaustive grid with the given per-dimension resolution.
    Grid(usize),
    /// Uniform random search.
    Random,
    /// Model-based TPE (BOHB's sampler).
    Tpe,
}

/// Complete configuration of an EdgeTune run.
#[derive(Debug, Clone)]
pub struct EdgeTuneConfig {
    /// The workload to tune (used by the default simulated backend).
    pub workload: WorkloadId,
    /// The edge device inference is tuned for.
    pub edge_device: DeviceSpec,
    /// Metric of the Model Tuning Server's ratio objective.
    pub train_metric: Metric,
    /// Metric of the Inference Tuning Server's objective.
    pub inference_metric: Metric,
    /// Budget policy for training trials.
    pub budget: BudgetPolicy,
    /// Scheduler shape (cohort size, η, rungs).
    pub scheduler: SchedulerConfig,
    /// Search strategy of the model server.
    pub sampler: SamplerKind,
    /// Use HyperBand brackets (BOHB-style) instead of one
    /// successive-halving bracket.
    pub hyperband: bool,
    /// Trials below this accuracy are infeasible, if set.
    pub accuracy_floor: Option<f64>,
    /// Load/save the historical inference cache at this path, if set.
    pub cache_path: Option<PathBuf>,
    /// Consult the historical cache (§3.4); disabling it is an ablation
    /// that re-tunes every architecture from scratch.
    pub historical_cache: bool,
    /// Pipeline inference tuning with training (Algorithm 1); disabling
    /// it is an ablation that runs every sweep on the critical path.
    pub pipelining: bool,
    /// Concurrent sweep workers inside the inference server.
    pub inference_workers: usize,
    /// Concurrent training-trial slots on the model server (§3.1: "the
    /// model server can parallelize its tuning process"). Trials of one
    /// scheduler rung are independent; with `n` slots the simulated
    /// makespan of a rung is its list-scheduled parallel length.
    pub trial_workers: usize,
    /// Root randomness seed.
    pub seed: u64,
    /// Fault-injection plan for chaos runs. [`FaultPlan::none`] (the
    /// default) injects nothing and leaves every code path and report
    /// byte-identical to a fault-free build.
    pub fault_plan: FaultPlan,
    /// Retry/backoff/deadline policy the fault-tolerance layer applies to
    /// crashed trials and lost inference replies.
    pub supervisor: Supervisor,
    /// Ordered fallbacks when an inference reply is lost.
    pub degradation: DegradationLadder,
    /// Real-time cap on waiting for one inference reply before the
    /// degradation ladder engages.
    pub reply_timeout: Duration,
    /// Write a resumable study checkpoint here after every completed
    /// rung, if set.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from `checkpoint_path` when it exists: completed trials are
    /// replayed from the checkpoint instead of re-executed, and the
    /// fault-injection cursors are restored so the continuation makes the
    /// same random decisions the uninterrupted run would have made.
    pub resume: bool,
    /// Stop tuning after this many completed rungs, if set — the
    /// controlled "interruption" used to exercise checkpoint/resume.
    pub halt_after_rungs: Option<u32>,
}

impl EdgeTuneConfig {
    /// The paper's default setup for a workload: BOHB (TPE + HyperBand),
    /// multi-budget, runtime objectives, Raspberry Pi 3B+ as the edge
    /// target.
    #[must_use]
    pub fn for_workload(workload: WorkloadId) -> Self {
        EdgeTuneConfig {
            workload,
            edge_device: DeviceSpec::raspberry_pi_3b(),
            train_metric: Metric::Runtime,
            inference_metric: Metric::Runtime,
            budget: BudgetPolicy::multi_default(),
            scheduler: SchedulerConfig::new(8, 2.0, 8),
            sampler: SamplerKind::Tpe,
            hyperband: true,
            accuracy_floor: None,
            cache_path: None,
            historical_cache: true,
            pipelining: true,
            inference_workers: 1,
            trial_workers: 1,
            seed: SeedStream::default().seed(),
            fault_plan: FaultPlan::none(),
            supervisor: Supervisor::default(),
            degradation: DegradationLadder::default(),
            reply_timeout: Duration::from_secs(30),
            checkpoint_path: None,
            resume: false,
            halt_after_rungs: None,
        }
    }

    /// Sets the edge device.
    #[must_use]
    pub fn with_edge_device(mut self, device: DeviceSpec) -> Self {
        self.edge_device = device;
        self
    }

    /// Sets both objectives' metric (runtime- vs energy-oriented run,
    /// the §5.4 comparison).
    #[must_use]
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.train_metric = metric;
        self.inference_metric = metric;
        self
    }

    /// Sets the budget policy.
    #[must_use]
    pub fn with_budget(mut self, budget: BudgetPolicy) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the scheduler shape.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the sampler.
    #[must_use]
    pub fn with_sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// Single successive-halving bracket instead of HyperBand.
    #[must_use]
    pub fn without_hyperband(mut self) -> Self {
        self.hyperband = false;
        self
    }

    /// Requires trials to reach at least this accuracy.
    #[must_use]
    pub fn with_accuracy_floor(mut self, floor: f64) -> Self {
        self.accuracy_floor = Some(floor);
        self
    }

    /// Persists the historical cache at `path`.
    #[must_use]
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Disables the historical cache (ablation: every architecture is
    /// re-tuned on every trial).
    #[must_use]
    pub fn without_historical_cache(mut self) -> Self {
        self.historical_cache = false;
        self
    }

    /// Disables pipelining (ablation: inference sweeps run synchronously
    /// on the model server's critical path).
    #[must_use]
    pub fn without_pipelining(mut self) -> Self {
        self.pipelining = false;
        self
    }

    /// Sets the number of concurrent inference-sweep workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_inference_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.inference_workers = workers;
        self
    }

    /// Sets the number of concurrent training-trial slots (and gives the
    /// inference server a matching worker pool).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_trial_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.trial_workers = workers;
        self.inference_workers = self.inference_workers.max(workers);
        self
    }

    /// Sets the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables fault injection under `plan` (a chaos run).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the retry/deadline policy of the fault-tolerance layer.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Sets the degradation ladder for lost inference replies.
    #[must_use]
    pub fn with_degradation(mut self, ladder: DegradationLadder) -> Self {
        self.degradation = ladder;
        self
    }

    /// Sets the real-time cap on waiting for one inference reply.
    #[must_use]
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Checkpoints the study at `path` after every completed rung.
    #[must_use]
    pub fn with_checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resumes from the configured checkpoint path when it exists.
    #[must_use]
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Halts tuning after `rungs` completed rungs (a controlled
    /// interruption for checkpoint/resume testing).
    #[must_use]
    pub fn with_halt_after_rungs(mut self, rungs: u32) -> Self {
        self.halt_after_rungs = Some(rungs);
        self
    }

    fn build_sampler(&self) -> Box<dyn Sampler> {
        let seed = SeedStream::new(self.seed).child("sampler");
        match self.sampler {
            SamplerKind::Grid(resolution) => Box::new(GridSampler::new(resolution)),
            SamplerKind::Random => Box::new(RandomSampler::new(seed)),
            SamplerKind::Tpe => Box::new(TpeSampler::new(seed)),
        }
    }
}

/// What the fault-tolerance layer observed during a chaos run: the plan
/// that was injected, every ladder rung exercised, and the failure
/// counters of both servers. Present in a [`TuningReport`] only when a
/// fault plan was active, so fault-free reports are unchanged.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultReport {
    /// The injected fault plan.
    pub plan: FaultPlan,
    /// Faults observed and fallbacks taken by the Model Tuning Server.
    pub degradation: DegradationStats,
    /// Real panics caught by the inference server's supervision loop.
    pub worker_panics: u64,
    /// Inference requests dropped by injected worker deaths.
    pub injected_losses: u64,
    /// Inference sweeps delayed by injected device outages.
    pub injected_outages: u64,
    /// Trials that ended with a failure marker in the history.
    pub failed_trials: u64,
}

/// The outcome of an EdgeTune run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TuningReport {
    history: History,
    best: TrialRecord,
    recommendation: InferenceRecommendation,
    timeline: Timeline,
    cache_stats: CacheStats,
    makespan: Seconds,
    stall_time: Seconds,
    inference_energy: Joules,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    faults: Option<FaultReport>,
}

impl TuningReport {
    /// Full trial history.
    #[must_use]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The winning trial.
    #[must_use]
    pub fn best(&self) -> &TrialRecord {
        &self.best
    }

    /// The winning configuration.
    #[must_use]
    pub fn best_config(&self) -> &Config {
        &self.best.config
    }

    /// Accuracy of the winning trial.
    #[must_use]
    pub fn best_accuracy(&self) -> f64 {
        self.best.outcome.accuracy
    }

    /// The deployment recommendation for the winning architecture —
    /// EdgeTune's extra output over a conventional tuner.
    #[must_use]
    pub fn recommendation(&self) -> &InferenceRecommendation {
        &self.recommendation
    }

    /// Total tuning duration (wall clock): with one trial slot this is
    /// the sum of trial runtimes plus any stalls waiting for the
    /// inference server (Fig. 13/14's "tuning duration"); with parallel
    /// trial slots it is the list-scheduled makespan.
    #[must_use]
    pub fn tuning_runtime(&self) -> Seconds {
        self.makespan
    }

    /// Total *resource* time consumed by trials (the sum of their
    /// durations, independent of how many ran concurrently).
    #[must_use]
    pub fn trial_resource_time(&self) -> Seconds {
        self.history.total_runtime()
    }

    /// Total tuning energy: training trials plus the inference server's
    /// sweeps (Fig. 13/14's "tuning energy").
    #[must_use]
    pub fn tuning_energy(&self) -> Joules {
        self.history.total_energy()
    }

    /// Time the model server spent stalled on inference replies (zero
    /// when pipelining fully hides the inference server).
    #[must_use]
    pub fn stall_time(&self) -> Seconds {
        self.stall_time
    }

    /// Energy consumed by inference sweeps alone.
    #[must_use]
    pub fn inference_energy(&self) -> Joules {
        self.inference_energy
    }

    /// The Fig. 6-style pipelining timeline.
    #[must_use]
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Historical-cache statistics of the run.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// What the fault-tolerance layer observed — `None` unless the run
    /// had an active fault plan.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultReport> {
        self.faults.as_ref()
    }

    /// A compact human-readable summary of the run — what the CLI and
    /// examples print.
    #[must_use]
    pub fn summary(&self) -> String {
        let rec = &self.recommendation;
        let mut summary = format!(
            "winner {} (accuracy {:.1}%, {} trials)\n\
             tuning {:.1} min / {:.1} kJ (stall {:.1}s, cache {}h/{}m)\n\
             deploy on {}: batch {}, {} cores @ {:.2} GHz -> {:.1} items/s, {:.3} J/item",
            self.best.config,
            self.best.outcome.accuracy * 100.0,
            self.history.len(),
            self.tuning_runtime().as_minutes(),
            self.tuning_energy().as_kilojoules(),
            self.stall_time.value(),
            self.cache_stats.hits,
            self.cache_stats.misses,
            rec.device,
            rec.batch,
            rec.cores,
            rec.freq.as_ghz(),
            rec.throughput.value(),
            rec.energy_per_item.value(),
        );
        if let Some(faults) = &self.faults {
            let d = &faults.degradation;
            summary.push_str(&format!(
                "\nchaos: {} failed trials ({} crashes, {} stragglers, {} timeouts), \
                 {} retries, {} lost replies \
                 (stale-cache {}, default-rec {}, skipped {})",
                faults.failed_trials,
                d.trial_crashes,
                d.trial_stragglers,
                d.trial_timeouts,
                d.trial_retries,
                d.worker_losses,
                d.stale_cache_served,
                d.default_recommendations,
                d.trials_skipped,
            ));
        }
        summary
    }

    /// Serialises the full report (history, winner, recommendation,
    /// timeline, statistics) to pretty JSON — the artefact a tuning
    /// service would hand back to its user.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if serialisation fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::storage(format!("serialising report: {e}")))
    }

    /// Reads a report previously produced by [`TuningReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if parsing fails.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::storage(format!("parsing report: {e}")))
    }
}

/// Evaluator wiring one training trial to its pipelined inference request.
struct OnefoldEvaluator<'a> {
    backend: &'a mut dyn TrainingBackend,
    inference: &'a AsyncInferenceServer,
    device: &'a DeviceSpec,
    inference_metric: Metric,
    objective: TrainObjective,
    timeline: &'a mut Timeline,
    pipelining: bool,
    trial_workers: usize,
    clock: Seconds,
    stall: Seconds,
    inference_energy: Joules,
    /// Whether a fault plan is active. With `false` every fault-tolerance
    /// branch below is dead code and the evaluator behaves exactly like
    /// the pre-chaos implementation.
    faults_enabled: bool,
    supervisor: Supervisor,
    ladder: &'a DegradationLadder,
    reply_timeout: Duration,
    /// Seed stream for backoff jitter; draws are counted so retried
    /// operations never share a jitter value.
    supervisor_seed: SeedStream,
    backoff_draws: u64,
    stats: DegradationStats,
    /// Checkpointing: where to write, under which root seed, and how many
    /// rungs have completed (the halt criterion).
    checkpoint_path: Option<&'a PathBuf>,
    root_seed: u64,
    halt_after_rungs: Option<u32>,
    rungs_completed: u32,
    /// Trials restored from a checkpoint, replayed front-to-back instead
    /// of re-executed. Empty on a fresh run.
    replay: VecDeque<TrialRecord>,
}

/// Everything one trial produced, before timeline/clock accounting.
struct TrialRun {
    outcome: TrialOutcome,
    arch: String,
    train_runtime: Seconds,
    sweep_runtime: Seconds,
    sweep_energy: Joules,
    stall: Seconds,
    cache_hit: bool,
}

impl OnefoldEvaluator<'_> {
    fn next_backoff(&mut self, attempt: u32) -> Seconds {
        let draw = self.backoff_draws;
        self.backoff_draws += 1;
        self.supervisor.backoff(attempt, self.supervisor_seed, draw)
    }

    /// Walks the degradation ladder after an inference reply was lost.
    /// Returns the salvaged reply (if any rung produced one) and the
    /// extra stall time the recovery cost.
    fn degrade(
        &mut self,
        key: &CacheKey,
        profile: WorkProfile,
    ) -> (Option<InferenceReply>, Seconds) {
        let mut extra = Seconds::ZERO;
        for step in self.ladder.steps() {
            match step {
                Fallback::Retry => {
                    let mut attempt: u32 = 1;
                    while !self.supervisor.give_up(attempt) {
                        extra += self.next_backoff(attempt);
                        self.stats.inference_retries += 1;
                        let Some(pending) = self.inference.try_submit(key.clone(), profile) else {
                            break;
                        };
                        match pending.wait_timeout(self.reply_timeout) {
                            Ok(reply) => return (Some(reply), extra),
                            Err(_) => {
                                self.stats.worker_losses += 1;
                                attempt += 1;
                            }
                        }
                    }
                }
                Fallback::StaleCache => {
                    if let Some(recommendation) = self.inference.peek(key) {
                        self.stats.stale_cache_served += 1;
                        let reply = InferenceReply {
                            recommendation,
                            runtime: Seconds::ZERO,
                            energy: Joules::ZERO,
                            cache_hit: true,
                        };
                        return (Some(reply), extra);
                    }
                }
                Fallback::DeviceDefault => {
                    self.stats.default_recommendations += 1;
                    let reply = InferenceReply {
                        recommendation: fallback_recommendation(self.device, &profile),
                        runtime: Seconds::ZERO,
                        energy: Joules::ZERO,
                        cache_hit: true,
                    };
                    return (Some(reply), extra);
                }
                Fallback::SkipWithPenalty => return (None, extra),
            }
        }
        (None, extra)
    }

    /// Runs the training side of one trial under the supervisor: injected
    /// crashes are retried with backoff until success, retry exhaustion,
    /// or the deadline. Returns the successful measurement (with the
    /// wasted time/energy of failed attempts folded in) or the failure to
    /// record.
    fn train_supervised(
        &mut self,
        config: &Config,
        budget: TrialBudget,
    ) -> std::result::Result<(Seconds, Joules, f64), (TrialFailure, Seconds, Joules)> {
        let mut attempt: u32 = 1;
        let mut paid_runtime = Seconds::ZERO;
        let mut paid_energy = Joules::ZERO;
        loop {
            let trial = self.backend.run_trial(config, budget);
            match trial.injected {
                Some(TrialFault::Crash) => {
                    self.stats.trial_crashes += 1;
                    paid_runtime += trial.runtime;
                    paid_energy += trial.energy;
                    if self.supervisor.deadline_exceeded(paid_runtime) {
                        self.stats.trial_timeouts += 1;
                        return Err((TrialFailure::Timeout, paid_runtime, paid_energy));
                    }
                    if self.supervisor.give_up(attempt) {
                        self.stats.trials_skipped += 1;
                        return Err((TrialFailure::Crash, paid_runtime, paid_energy));
                    }
                    paid_runtime += self.next_backoff(attempt);
                    self.stats.trial_retries += 1;
                    attempt += 1;
                }
                Some(TrialFault::Straggle { .. }) => {
                    self.stats.trial_stragglers += 1;
                    return Ok((
                        paid_runtime + trial.runtime,
                        paid_energy + trial.energy,
                        trial.accuracy,
                    ));
                }
                None => {
                    return Ok((
                        paid_runtime + trial.runtime,
                        paid_energy + trial.energy,
                        trial.accuracy,
                    ));
                }
            }
        }
    }

    /// Runs one trial plus its pipelined inference request, with no
    /// global accounting.
    fn run_one(&mut self, config: &Config, budget: TrialBudget) -> TrialRun {
        // (1) Fire the inference request as soon as the architecture is
        //     known — before training starts (Algorithm 1, line 6).
        let (arch, profile) = self.backend.architecture(config);
        let key = CacheKey::new(
            self.device.name.clone(),
            arch.clone(),
            self.inference_metric,
        );
        let pending = self.inference.submit(key.clone(), profile);

        // (2) Run the training trial (supervised when faults are active).
        let (train_runtime, train_energy, accuracy) = match self.train_supervised(config, budget) {
            Ok(success) => success,
            Err((failure, paid_runtime, paid_energy)) => {
                // The trial is abandoned; still collect (and account)
                // its pipelined sweep so the queue drains and the
                // sweep's energy is not silently lost.
                let (sweep_runtime, sweep_energy, cache_hit) =
                    match pending.wait_timeout(self.reply_timeout) {
                        Ok(reply) => (reply.runtime, reply.energy, reply.cache_hit),
                        Err(_) => (Seconds::ZERO, Joules::ZERO, true),
                    };
                return TrialRun {
                    outcome: TrialOutcome::failed(
                        failure,
                        paid_runtime,
                        paid_energy + sweep_energy,
                    ),
                    arch,
                    train_runtime: paid_runtime,
                    sweep_runtime,
                    sweep_energy,
                    stall: Seconds::ZERO,
                    cache_hit,
                };
            }
        };

        // (3) Collect the inference reply, degrading when it is lost.
        let (reply, extra_stall) = match pending.wait_timeout(self.reply_timeout) {
            Ok(reply) => (Some(reply), Seconds::ZERO),
            Err(_) if self.faults_enabled => {
                self.stats.worker_losses += 1;
                self.degrade(&key, profile)
            }
            Err(_) => (None, Seconds::ZERO),
        };
        let Some(reply) = reply else {
            // Fault-free: the server died — mark the trial infeasible
            // rather than crash the job (legacy behaviour, no marker).
            // Chaos: the ladder ran dry — skip with a penalty score.
            let outcome = if self.faults_enabled {
                self.stats.trials_skipped += 1;
                TrialOutcome::failed(
                    TrialFailure::InferenceLoss,
                    train_runtime + extra_stall,
                    train_energy,
                )
            } else {
                TrialOutcome::new(f64::INFINITY, accuracy, train_runtime, train_energy)
            };
            return TrialRun {
                outcome,
                arch,
                train_runtime,
                sweep_runtime: Seconds::ZERO,
                sweep_energy: Joules::ZERO,
                stall: extra_stall,
                cache_hit: true,
            };
        };
        // Pipelined: only the sweep's excess over its trial stalls the
        // model server. Synchronous (ablation): the whole sweep sits on
        // the critical path after the trial.
        let base_stall = if self.pipelining {
            Seconds::new((reply.runtime.value() - train_runtime.value()).max(0.0))
        } else {
            reply.runtime
        };
        let stall = base_stall + extra_stall;

        // (4) Combine both servers' metrics in the ratio objective.
        let measurement = TrainMeasurement {
            accuracy,
            train_time: train_runtime,
            train_energy,
            inference_time: Some(reply.recommendation.latency_per_item),
            inference_energy: Some(reply.recommendation.energy_per_item),
        };
        let score = self.objective.score(&measurement);
        TrialRun {
            outcome: TrialOutcome::new(
                score,
                accuracy,
                train_runtime + stall,
                train_energy + reply.energy,
            ),
            arch,
            train_runtime,
            sweep_runtime: reply.runtime,
            sweep_energy: reply.energy,
            stall,
            cache_hit: reply.cache_hit,
        }
    }

    /// Timeline/clock accounting for one trial placed at `start`.
    fn record(&mut self, id: u64, run: &TrialRun, start: Seconds) {
        let busy_end = start + run.train_runtime;
        self.timeline
            .record(Lane::ModelServer, format!("trial-{id}"), start, busy_end);
        if !run.cache_hit && run.sweep_runtime.value() > 0.0 {
            let sweep_start = if self.pipelining { start } else { busy_end };
            self.timeline.record(
                Lane::InferenceServer,
                run.arch.clone(),
                sweep_start,
                sweep_start + run.sweep_runtime,
            );
        }
        self.stall += run.stall;
        self.inference_energy += run.sweep_energy;
    }
}

impl Evaluate for OnefoldEvaluator<'_> {
    fn evaluate(&mut self, id: u64, config: &Config, budget: TrialBudget) -> TrialOutcome {
        // Resume: trials already in the checkpoint are replayed, not
        // re-executed. The scheduler regenerates the identical (id,
        // config) sequence from the shared seed; a mismatch means the
        // checkpoint belongs to a different run, so replay is abandoned
        // and the trial executes live.
        if let Some(front) = self.replay.front() {
            if front.id == id && front.config == *config {
                let record = self.replay.pop_front().expect("front exists");
                let start = self.clock;
                self.timeline.record(
                    Lane::ModelServer,
                    format!("trial-{id}"),
                    start,
                    start + record.outcome.runtime,
                );
                self.clock = start + record.outcome.runtime;
                return record.outcome;
            }
            self.replay.clear();
        }
        let run = self.run_one(config, budget);
        let start = self.clock;
        self.record(id, &run, start);
        self.clock = start + run.train_runtime + run.stall;
        run.outcome
    }

    fn evaluate_rung(&mut self, trials: Vec<(u64, Config, TrialBudget)>) -> Vec<TrialOutcome> {
        if !self.replay.is_empty() || self.trial_workers <= 1 || trials.len() <= 1 {
            return trials
                .into_iter()
                .map(|(id, config, budget)| self.evaluate(id, &config, budget))
                .collect();
        }
        // Simulated parallel execution: the rung's trials are
        // list-scheduled onto `trial_workers` slots; the rung advances
        // the clock by its makespan, not by the sum of trial durations.
        let runs: Vec<(u64, TrialRun)> = trials
            .into_iter()
            .map(|(id, config, budget)| (id, self.run_one(&config, budget)))
            .collect();
        let rung_start = self.clock;
        let mut loads = vec![Seconds::ZERO; self.trial_workers];
        let mut outcomes = Vec::with_capacity(runs.len());
        for (id, run) in runs {
            let (slot, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.value().partial_cmp(&b.1.value()).expect("finite loads"))
                .expect("at least one worker");
            let start = rung_start + loads[slot];
            self.record(id, &run, start);
            loads[slot] = (start + run.train_runtime + run.stall) - rung_start;
            outcomes.push(run.outcome);
        }
        let makespan = loads.into_iter().fold(Seconds::ZERO, Seconds::max);
        self.clock = rung_start + makespan;
        outcomes
    }

    fn on_rung_complete(&mut self, history: &History) {
        self.rungs_completed += 1;
        if let Some(path) = self.checkpoint_path {
            let checkpoint = StudyCheckpoint::new(
                self.root_seed,
                history,
                self.inference.cache_snapshot(),
                self.backend.fault_cursor(),
                self.inference.submitted(),
            );
            // A failed checkpoint write must never kill the study: the
            // run is still correct, only resumability is lost.
            let _ = checkpoint.save(path);
        }
    }

    fn should_halt(&self) -> bool {
        self.halt_after_rungs
            .is_some_and(|rungs| self.rungs_completed >= rungs)
    }
}

/// The EdgeTune tuning job.
#[derive(Debug, Clone)]
pub struct EdgeTune {
    config: EdgeTuneConfig,
}

impl EdgeTune {
    /// Creates a job from a configuration.
    #[must_use]
    pub fn new(config: EdgeTuneConfig) -> Self {
        EdgeTune { config }
    }

    /// The job's configuration.
    #[must_use]
    pub fn config(&self) -> &EdgeTuneConfig {
        &self.config
    }

    /// Runs the job with the default simulated backend for the configured
    /// workload.
    ///
    /// # Errors
    ///
    /// Propagates configuration and storage errors; see
    /// [`EdgeTune::run_with_backend`].
    pub fn run(&self) -> Result<TuningReport> {
        let workload = Workload::by_id(self.config.workload);
        let mut backend =
            SimTrainingBackend::new(workload, SeedStream::new(self.config.seed).child("trials"));
        if !self.config.fault_plan.is_none() {
            backend = backend.with_fault_injector(FaultInjector::new(
                self.config.fault_plan,
                SeedStream::new(self.config.seed).child("trial-faults"),
            ));
        }
        self.run_with_backend(&mut backend)
    }

    /// Runs the job against any training backend (e.g. the real
    /// `edgetune-nn` one).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for inconsistent configurations,
    /// [`Error::Storage`] if the historical cache cannot be written, and
    /// [`Error::Channel`] if the inference server fails irrecoverably.
    pub fn run_with_backend(&self, backend: &mut dyn TrainingBackend) -> Result<TuningReport> {
        let space = backend.search_space();
        if space.is_empty() {
            return Err(Error::invalid_config("backend search space is empty"));
        }
        let faults_enabled = !self.config.fault_plan.is_none();

        // Resume: restore the trial log, cache, and fault cursors from the
        // checkpoint so the continuation replays the interrupted study.
        let mut replay: VecDeque<TrialRecord> = VecDeque::new();
        let mut first_seq: u64 = 0;
        let mut resumed_cache: Option<HistoricalCache> = None;
        if self.config.resume {
            if let Some(path) = &self.config.checkpoint_path {
                if path.exists() {
                    let checkpoint = StudyCheckpoint::load(path)?;
                    if checkpoint.seed != self.config.seed {
                        return Err(Error::invalid_config(format!(
                            "checkpoint was written under seed {}, not {}: resuming would \
                             silently diverge",
                            checkpoint.seed, self.config.seed
                        )));
                    }
                    backend.set_fault_cursor(checkpoint.fault_cursor);
                    first_seq = checkpoint.inference_cursor;
                    replay = checkpoint.history().records().to_vec().into();
                    resumed_cache = Some(checkpoint.cache);
                }
            }
        }

        // Historical cache: the checkpoint's snapshot wins on resume, then
        // the persistent file, else start fresh.
        let cache = match resumed_cache {
            Some(cache) => cache,
            None => match &self.config.cache_path {
                Some(path) if path.exists() => HistoricalCache::load(path)?,
                _ => HistoricalCache::new(),
            },
        };

        let inference_server = InferenceTuningServer::new(
            self.config.edge_device.clone(),
            InferenceSpace::for_device(&self.config.edge_device),
            InferenceObjective::new(self.config.inference_metric),
        )?;
        let inference_faults = if faults_enabled {
            Some(FaultInjector::new(
                self.config.fault_plan,
                SeedStream::new(self.config.seed).child("inference-faults"),
            ))
        } else {
            None
        };
        let async_server = AsyncInferenceServer::start_supervised(
            inference_server,
            cache,
            self.config.inference_workers,
            self.config.historical_cache,
            inference_faults,
            first_seq,
        );

        let mut objective = TrainObjective::inference_aware(self.config.train_metric);
        if let Some(floor) = self.config.accuracy_floor {
            objective = objective.with_accuracy_floor(floor);
        }

        let mut timeline = Timeline::new();
        let mut sampler = self.config.build_sampler();
        let device_name = self.config.edge_device.name.clone();

        let (history, makespan, stall, inference_energy, degradation) = {
            let mut evaluator = OnefoldEvaluator {
                backend,
                inference: &async_server,
                device: &self.config.edge_device,
                inference_metric: self.config.inference_metric,
                objective,
                timeline: &mut timeline,
                pipelining: self.config.pipelining,
                trial_workers: self.config.trial_workers,
                clock: Seconds::ZERO,
                stall: Seconds::ZERO,
                inference_energy: Joules::ZERO,
                faults_enabled,
                supervisor: self.config.supervisor,
                ladder: &self.config.degradation,
                reply_timeout: self.config.reply_timeout,
                supervisor_seed: SeedStream::new(self.config.seed).child("supervisor"),
                backoff_draws: 0,
                stats: DegradationStats::default(),
                checkpoint_path: self.config.checkpoint_path.as_ref(),
                root_seed: self.config.seed,
                halt_after_rungs: self.config.halt_after_rungs,
                rungs_completed: 0,
                replay,
            };
            let history = if self.config.hyperband {
                HyperBand::new(self.config.scheduler).run(
                    sampler.as_mut(),
                    &space,
                    &self.config.budget,
                    &mut evaluator,
                )
            } else {
                SuccessiveHalving::new(self.config.scheduler).run(
                    sampler.as_mut(),
                    &space,
                    &self.config.budget,
                    &mut evaluator,
                )
            };
            (
                history,
                evaluator.clock,
                evaluator.stall,
                evaluator.inference_energy,
                evaluator.stats,
            )
        };

        // Harvest the inference server's fault counters before shutdown.
        let worker_panics = async_server.worker_panics();
        let injected_losses = async_server.injected_losses();
        let injected_outages = async_server.injected_outages();

        // The tuning job's output is the final-rung winner: raw ratio
        // scores are only comparable within one budget level.
        let best = history
            .winner()
            .ok_or_else(|| Error::invalid_config("no trials were executed"))?
            .clone();

        // The winner's recommendation is in the cache by construction.
        let (best_arch, best_profile) = backend.architecture(&best.config);
        let key = CacheKey::new(&device_name, best_arch, self.config.inference_metric);
        let mut final_cache = async_server.shutdown();
        let recommendation = match final_cache.peek(&key) {
            Some(rec) => rec.clone(),
            None => {
                // Only reachable if the worker died mid-run; recompute
                // synchronously.
                let server = InferenceTuningServer::new(
                    self.config.edge_device.clone(),
                    InferenceSpace::for_device(&self.config.edge_device),
                    InferenceObjective::new(self.config.inference_metric),
                )?;
                let (rec, _) = server.tune(&best_profile);
                final_cache.store(&key, rec.clone());
                rec
            }
        };

        if let Some(path) = &self.config.cache_path {
            final_cache.save(path)?;
        }

        let faults = if faults_enabled {
            Some(FaultReport {
                plan: self.config.fault_plan,
                degradation,
                worker_panics,
                injected_losses,
                injected_outages,
                failed_trials: history
                    .records()
                    .iter()
                    .filter(|r| r.outcome.is_failed())
                    .count() as u64,
            })
        } else {
            None
        };

        Ok(TuningReport {
            history,
            best,
            recommendation,
            timeline,
            cache_stats: final_cache.stats(),
            makespan,
            stall_time: stall,
            inference_energy,
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{PARAM_GPUS, PARAM_MODEL_HP};

    fn quick_config() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn end_to_end_run_produces_report() {
        let report = EdgeTune::new(quick_config()).run().unwrap();
        assert!(!report.history().is_empty());
        assert!(report.best_accuracy() > 0.0);
        assert!(report.tuning_runtime().value() > 0.0);
        assert!(report.tuning_energy().value() > 0.0);
        assert!(report.recommendation().batch >= 1);
        assert!(report.recommendation().throughput.value() > 0.0);
        assert!(report.best_config().get(PARAM_MODEL_HP).is_some());
        assert!(report.best_config().get(PARAM_GPUS).is_some());
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let a = EdgeTune::new(quick_config()).run().unwrap();
        let b = EdgeTune::new(quick_config()).run().unwrap();
        assert_eq!(a.best_config(), b.best_config());
        assert_eq!(a.tuning_runtime(), b.tuning_runtime());
        assert_eq!(a.recommendation(), b.recommendation());
        let c = EdgeTune::new(quick_config().with_seed(43)).run().unwrap();
        // Different seed explores differently (history differs).
        assert!(
            c.history().records().len() != a.history().records().len()
                || c.tuning_runtime() != a.tuning_runtime()
                || c.best_config() != a.best_config()
        );
    }

    #[test]
    fn inference_tuning_is_pipelined_not_stalling() {
        // The paper's claim: the inference sweep always fits inside its
        // training trial, so the model server never stalls.
        let report = EdgeTune::new(quick_config()).run().unwrap();
        assert_eq!(
            report.stall_time(),
            Seconds::ZERO,
            "inference must hide behind training"
        );
        assert!((report.timeline().overlap_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn historical_cache_avoids_retuning_architectures() {
        // Only 3 distinct architectures exist for IC, so with >3 trials
        // the cache must hit.
        let report = EdgeTune::new(quick_config()).run().unwrap();
        let stats = report.cache_stats();
        assert!(
            stats.misses <= 3,
            "at most one miss per architecture: {stats:?}"
        );
        assert!(stats.hits > 0, "repeated architectures must hit: {stats:?}");
    }

    #[test]
    fn inference_energy_is_accounted() {
        let report = EdgeTune::new(quick_config()).run().unwrap();
        assert!(report.inference_energy().value() > 0.0);
        assert!(report.tuning_energy().value() > report.inference_energy().value());
    }

    #[test]
    fn cache_persists_across_runs() {
        let dir = std::env::temp_dir().join("edgetune-server-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::remove_file(&path).ok();

        let cfg = quick_config().with_cache_path(&path);
        let first = EdgeTune::new(cfg.clone()).run().unwrap();
        assert!(path.exists());
        let second = EdgeTune::new(cfg).run().unwrap();
        // Second run starts warm: no misses at all.
        assert_eq!(second.cache_stats().misses, 0, "warm cache should not miss");
        assert!(second.inference_energy().value() < first.inference_energy().value() + 1e-9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hyperband_mode_runs_more_trials() {
        let sha = EdgeTune::new(quick_config()).run().unwrap();
        let hb = EdgeTune::new(quick_config().with_scheduler(SchedulerConfig::new(4, 2.0, 4)))
            .run()
            .unwrap();
        // without_hyperband was only applied to `sha`.
        let _ = (sha, hb);
    }

    #[test]
    fn energy_metric_changes_the_objective() {
        let runtime = EdgeTune::new(quick_config()).run().unwrap();
        let energy = EdgeTune::new(quick_config().with_metric(Metric::Energy))
            .run()
            .unwrap();
        // Both must complete; the recommendations may legitimately agree,
        // but the recommendation metric must be populated either way.
        assert!(runtime.recommendation().energy_per_item.value() > 0.0);
        assert!(energy.recommendation().energy_per_item.value() > 0.0);
    }

    #[test]
    fn accuracy_floor_filters_low_budget_winners() {
        let report = EdgeTune::new(quick_config().with_accuracy_floor(0.3))
            .run()
            .unwrap();
        assert!(
            report.best_accuracy() >= 0.3,
            "winner must respect the floor: {}",
            report.best_accuracy()
        );
    }

    #[test]
    fn random_and_grid_samplers_work() {
        for kind in [SamplerKind::Random, SamplerKind::Grid(3)] {
            let report = EdgeTune::new(quick_config().with_sampler(kind))
                .run()
                .unwrap();
            assert!(!report.history().is_empty(), "{kind:?}");
        }
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    fn quick_config() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn cache_ablation_retunes_every_architecture() {
        let with_cache = EdgeTune::new(quick_config()).run().unwrap();
        let without = EdgeTune::new(quick_config().without_historical_cache())
            .run()
            .unwrap();
        assert_eq!(without.cache_stats().hits, 0, "no hits without the cache");
        assert!(
            without.cache_stats().misses > with_cache.cache_stats().misses,
            "every trial pays a sweep: {} vs {}",
            without.cache_stats().misses,
            with_cache.cache_stats().misses
        );
        assert!(
            without.inference_energy() > with_cache.inference_energy(),
            "re-tuning costs energy"
        );
        // The recommendation itself is unchanged — the cache is purely a
        // cost optimisation.
        assert_eq!(without.recommendation(), with_cache.recommendation());
    }

    #[test]
    fn pipelining_ablation_puts_sweeps_on_the_critical_path() {
        let pipelined = EdgeTune::new(quick_config()).run().unwrap();
        let synchronous = EdgeTune::new(quick_config().without_pipelining())
            .run()
            .unwrap();
        assert_eq!(pipelined.stall_time(), Seconds::ZERO);
        assert!(
            synchronous.stall_time().value() > 0.0,
            "synchronous sweeps must stall the model server"
        );
        assert!(synchronous.tuning_runtime() > pipelined.tuning_runtime());
        // Synchronous sweeps start after their trial, so nothing
        // overlaps.
        assert!(synchronous.timeline().overlap_fraction() < 0.01);
    }

    #[test]
    fn worker_pool_accepts_multiple_workers() {
        let report = EdgeTune::new(quick_config().with_inference_workers(4))
            .run()
            .unwrap();
        assert!(!report.history().is_empty());
        assert!(report.recommendation().batch >= 1);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    fn base() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(8, 2.0, 8))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn parallel_trials_shrink_the_makespan_not_the_work() {
        let sequential = EdgeTune::new(base()).run().unwrap();
        let parallel = EdgeTune::new(base().with_trial_workers(4)).run().unwrap();
        // Same trials, same evidence, same winner.
        assert_eq!(sequential.history().len(), parallel.history().len());
        assert_eq!(sequential.best_config(), parallel.best_config());
        // Resource time is identical; wall time shrinks.
        assert_eq!(
            sequential.trial_resource_time(),
            parallel.trial_resource_time(),
            "parallelism must not change the work done"
        );
        assert!(
            parallel.tuning_runtime().value() < sequential.tuning_runtime().value() * 0.6,
            "4 slots should cut the makespan substantially: {} vs {}",
            parallel.tuning_runtime(),
            sequential.tuning_runtime()
        );
        // Energy is work, not wall time: unchanged.
        assert_eq!(sequential.tuning_energy(), parallel.tuning_energy());
    }

    #[test]
    fn sequential_makespan_equals_resource_time() {
        let report = EdgeTune::new(base()).run().unwrap();
        assert!(
            (report.tuning_runtime().value() - report.trial_resource_time().value()).abs() < 1e-6,
            "one slot: makespan == sum of trial durations"
        );
    }

    #[test]
    fn parallel_makespan_is_bounded_by_theory() {
        // makespan >= resource_time / workers and >= longest trial.
        let report = EdgeTune::new(base().with_trial_workers(3)).run().unwrap();
        let lower_bound = report.trial_resource_time().value() / 3.0;
        assert!(report.tuning_runtime().value() >= lower_bound - 1e-6);
        let longest = report
            .history()
            .records()
            .iter()
            .map(|r| r.outcome.runtime.value())
            .fold(0.0f64, f64::max);
        assert!(report.tuning_runtime().value() >= longest - 1e-6);
        assert!(report.tuning_runtime() <= report.trial_resource_time());
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;

    fn quick_config() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(8, 2.0, 8))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn disabled_plan_leaves_the_report_without_fault_keys() {
        let report = EdgeTune::new(quick_config()).run().unwrap();
        assert!(report.faults().is_none());
        let json = report.to_json().unwrap();
        assert!(
            !json.contains("\"faults\"") && !json.contains("\"failure\""),
            "a fault-free report must serialize exactly as before this feature existed"
        );
    }

    #[test]
    fn chaos_run_reports_what_was_injected_and_how_it_degraded() {
        let report = EdgeTune::new(quick_config().with_fault_plan(FaultPlan::uniform(0.25)))
            .run()
            .unwrap();
        let faults = report.faults().expect("chaos runs carry a fault report");
        assert_eq!(faults.plan, FaultPlan::uniform(0.25));
        let d = &faults.degradation;
        assert!(
            !d.is_empty(),
            "a 25% fault rate over a full study must inject something"
        );
        assert_eq!(
            faults.failed_trials,
            report
                .history()
                .records()
                .iter()
                .filter(|r| r.outcome.is_failed())
                .count() as u64
        );
        // The study still produces a usable answer.
        assert!(report.best_accuracy() > 0.0 || report.best().outcome.is_failed());
        assert!(report.recommendation().batch >= 1);
    }

    #[test]
    fn trial_crashes_are_retried_and_survivors_win() {
        let plan = FaultPlan::none().with_trial_crash(0.2);
        let report = EdgeTune::new(quick_config().with_fault_plan(plan))
            .run()
            .unwrap();
        let d = &report.faults().unwrap().degradation;
        assert!(d.trial_crashes > 0, "20% crash rate must fire: {d:?}");
        assert!(
            d.trial_retries > 0,
            "the supervisor must retry crashed trials: {d:?}"
        );
        assert!(
            report.best().outcome.score.is_finite(),
            "the winner must be a surviving trial"
        );
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let config = || quick_config().with_fault_plan(FaultPlan::uniform(0.3));
        let a = EdgeTune::new(config()).run().unwrap();
        let b = EdgeTune::new(config()).run().unwrap();
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn lost_inference_replies_degrade_instead_of_poisoning_the_study() {
        // Every request's worker dies, so no real recommendation ever
        // arrives: the ladder must fall through to stale-cache/default
        // recommendations and the run must still complete.
        let plan = FaultPlan::none().with_worker_panic(1.0);
        let config = quick_config()
            .with_fault_plan(plan)
            .with_reply_timeout(Duration::from_millis(200))
            .with_supervisor(Supervisor::new(edgetune_faults::RetryPolicy {
                max_attempts: 2,
                base_delay: Seconds::new(1.0),
                multiplier: 2.0,
                max_delay: Seconds::new(10.0),
                jitter: 0.5,
            }));
        let report = EdgeTune::new(config).run().unwrap();
        let faults = report.faults().unwrap();
        assert!(faults.injected_losses > 0);
        let d = &faults.degradation;
        assert!(d.worker_losses > 0);
        assert!(
            d.stale_cache_served + d.default_recommendations + d.trials_skipped > 0,
            "lost replies must walk the ladder: {d:?}"
        );
        assert!(report.recommendation().batch >= 1);
    }

    #[test]
    fn resume_under_a_different_seed_is_rejected() {
        let dir = std::env::temp_dir().join("edgetune-resume-seed-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        std::fs::remove_file(&path).ok();
        let _ = EdgeTune::new(quick_config().with_checkpoint_path(&path))
            .run()
            .unwrap();
        assert!(path.exists(), "each rung writes a checkpoint");
        let err = EdgeTune::new(
            quick_config()
                .with_seed(43)
                .with_checkpoint_path(&path)
                .resuming(),
        )
        .run()
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;

    #[test]
    fn summary_mentions_the_key_outputs() {
        let report = EdgeTune::new(
            EdgeTuneConfig::for_workload(WorkloadId::Ic)
                .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
                .without_hyperband()
                .with_seed(42),
        )
        .run()
        .unwrap();
        let summary = report.summary();
        assert!(summary.contains("winner"), "{summary}");
        assert!(summary.contains("deploy on Raspberry Pi 3B+"), "{summary}");
        assert!(summary.contains("items/s"), "{summary}");
        assert!(summary.contains("J/item"), "{summary}");
    }
}
