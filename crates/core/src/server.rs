//! The Model Tuning Server façade and the end-to-end EdgeTune run
//! (Algorithm 1).
//!
//! [`EdgeTune`] wires everything together: a
//! [`TrainingBackend`](crate::backend::TrainingBackend) supplies trials,
//! a sampler + multi-fidelity scheduler explores the joint
//! (model × training × system)-parameter space under a budget policy, and
//! for every trial an
//! [`AsyncInferenceServer`](crate::async_server::AsyncInferenceServer)
//! request is fired *at trial start* and collected *at trial end* — the
//! onefold pipelining of Fig. 6. Trial scores combine training cost,
//! accuracy and the estimated inference metrics through the §4.4 ratio
//! objective, and the user gets back both the winning configuration and
//! the deployment
//! [`InferenceRecommendation`](crate::inference::InferenceRecommendation).
//!
//! Time accounting is *simulated*: trial runtimes come from the device
//! models, and because the inference sweep runs on separate CPU resources
//! in parallel with training, it only extends the tuning makespan when it
//! outlasts its trial (which the paper argues — and these models confirm —
//! essentially never happens). Its *energy*, however, is real work done by
//! the tuning server and is always added. Real worker threads
//! ([`EdgeTuneConfig::with_trial_workers`]) only change how fast that
//! simulation is computed, never what it computes.
//!
//! This module is a façade: configuration lives in [`crate::config`],
//! execution in [`crate::engine`]. The long-standing public paths
//! (`server::EdgeTune`, `server::EdgeTuneConfig`, `server::TuningReport`,
//! …) are preserved via re-exports.

pub use crate::config::{EdgeTuneConfig, SamplerKind};
pub use crate::engine::report::{FaultReport, TuningReport};

use crate::backend::TrainingBackend;
use crate::engine::Engine;
use edgetune_util::Result;

/// The EdgeTune tuning job.
#[derive(Debug, Clone)]
pub struct EdgeTune {
    config: EdgeTuneConfig,
}

impl EdgeTune {
    /// Creates a job from a configuration.
    #[must_use]
    pub fn new(config: EdgeTuneConfig) -> Self {
        EdgeTune { config }
    }

    /// The job's configuration.
    #[must_use]
    pub fn config(&self) -> &EdgeTuneConfig {
        &self.config
    }

    /// Runs the job with the default simulated backend for the configured
    /// workload.
    ///
    /// # Errors
    ///
    /// Propagates configuration and storage errors; see
    /// [`EdgeTune::run_with_backend`].
    pub fn run(&self) -> Result<TuningReport> {
        Engine::new(&self.config).run()
    }

    /// Runs the job against any training backend (e.g. the real
    /// `edgetune-nn` one).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`](edgetune_util::Error::InvalidConfig)
    /// for inconsistent configurations,
    /// [`Error::Storage`](edgetune_util::Error::Storage) if the historical
    /// cache cannot be written, and
    /// [`Error::Channel`](edgetune_util::Error::Channel) if the inference
    /// server fails irrecoverably.
    pub fn run_with_backend(&self, backend: &mut dyn TrainingBackend) -> Result<TuningReport> {
        Engine::new(&self.config).run_with_backend(backend)
    }

    /// Runs the job and additionally returns the Chrome trace of every
    /// span and event the study emitted on the simulated clock — open it
    /// in `chrome://tracing` or Perfetto to see the Fig. 6 pipelining.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`EdgeTune::run`].
    pub fn run_traced(&self) -> Result<(TuningReport, edgetune_trace::ChromeTrace)> {
        Engine::new(&self.config).run_traced()
    }
}

#[cfg(test)]
mod facade_tests {
    use super::*;
    use edgetune_tuner::scheduler::SchedulerConfig;
    use edgetune_workloads::catalog::WorkloadId;

    fn golden_config() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(6, 2.0, 6))
            .without_hyperband()
            .with_seed(1234)
    }

    /// The golden snapshot: the report's JSON artefact is a stability
    /// contract — byte-identical for a fixed seed whatever the real
    /// thread count, before and after any internal refactor.
    #[test]
    fn report_json_is_byte_identical_across_trial_worker_counts() {
        let baseline = EdgeTune::new(golden_config())
            .run()
            .unwrap()
            .to_json()
            .unwrap();
        for workers in [1, 4] {
            let json = EdgeTune::new(golden_config().with_trial_workers(workers))
                .run()
                .unwrap()
                .to_json()
                .unwrap();
            assert_eq!(baseline, json, "trial_workers={workers} changed the report");
        }
    }

    #[test]
    fn report_json_round_trips_through_the_facade_path() {
        let report = EdgeTune::new(golden_config()).run().unwrap();
        let json = report.to_json().unwrap();
        let restored = crate::server::TuningReport::from_json(&json).expect("parses");
        assert_eq!(restored.best_config(), report.best_config());
        assert_eq!(restored.to_json().unwrap(), json, "round trip is lossless");
    }

    #[test]
    fn facade_reexports_preserve_the_public_paths() {
        // Compile-time check that the pre-refactor paths still resolve.
        let _: fn(EdgeTuneConfig) -> EdgeTune = crate::server::EdgeTune::new;
        let _ = crate::server::SamplerKind::Tpe;
        fn takes_report(_: &crate::server::TuningReport) {}
        fn takes_faults(_: &crate::server::FaultReport) {}
        let _ = (takes_report, takes_faults);
    }
}
