//! The Inference Tuning Server (§3.4).
//!
//! Given an architecture's [`WorkProfile`], the server sweeps the
//! inference hyperparameter (batch size) jointly with the inference
//! *system* parameters (CPU cores, DVFS frequency) on an emulated edge
//! device, applies the user's inference objective (minimise per-item
//! runtime or energy), and returns an [`InferenceRecommendation`] the
//! user can deploy directly — the paper's headline "more useful
//! information" output.

use edgetune_device::latency::{simulate_inference, CpuAllocation};
use edgetune_device::profile::WorkProfile;
use edgetune_device::spec::DeviceSpec;
use edgetune_util::units::{
    energy_per_item, throughput, Hertz, ItemsPerSecond, Joules, JoulesPerItem, Seconds, Watts,
};
use edgetune_util::{Error, Result};
use serde::{Deserialize, Serialize};

use edgetune_tuner::objective::InferenceObjective;
use edgetune_tuner::sampler::{Sampler, TpeSampler};
use edgetune_tuner::space::{Config, Domain, SearchSpace};
use edgetune_util::rng::SeedStream;

/// The sweep executes on the tuning server's CPUs, which emulate the edge
/// device this much faster than the device would run (§2.1: devices are
/// *simulated in the tuning server*, so sweep wall-time is server-speed
/// while the reported estimates stay edge-scale). This is what keeps the
/// whole sweep inside one training trial (§3.3).
const EMULATION_SPEEDUP: f64 = 32.0;
/// Power drawn by the tuning server's CPUs while emulating.
const EMULATION_HOST_POWER_W: f64 = 45.0;

/// The inference-side search space: batch sizes × cores × frequencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceSpace {
    /// Candidate inference batch sizes (the paper sweeps 1..=100).
    pub batches: Vec<u32>,
    /// Candidate core allocations.
    pub cores: Vec<u32>,
    /// Candidate DVFS frequencies.
    pub freqs: Vec<Hertz>,
}

impl InferenceSpace {
    /// The paper's evaluation space adapted to `device`: batch sizes
    /// 1..=100 (log-spaced), every power-of-two core count the device
    /// has, and three DVFS points.
    #[must_use]
    pub fn for_device(device: &DeviceSpec) -> Self {
        let mut cores = Vec::new();
        let mut c = 1;
        while c <= device.cores {
            cores.push(c);
            c *= 2;
        }
        if *cores.last().expect("at least one core") != device.cores {
            cores.push(device.cores);
        }
        let mid = Hertz::new((device.min_freq.value() + device.max_freq.value()) / 2.0);
        InferenceSpace {
            batches: vec![1, 2, 4, 8, 16, 32, 64, 100],
            cores,
            freqs: vec![device.min_freq, mid, device.max_freq],
        }
    }

    /// Number of configurations in the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.batches.len() * self.cores.len() * self.freqs.len()
    }

    /// True when the space is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// This space as a generic tuner [`SearchSpace`] (every dimension is
    /// an explicit choice), used by the model-based search path.
    #[must_use]
    pub fn as_search_space(&self) -> SearchSpace {
        SearchSpace::new()
            .with(
                "batch",
                Domain::choice(
                    self.batches
                        .iter()
                        .map(|&b| f64::from(b))
                        .collect::<Vec<_>>(),
                ),
            )
            .with(
                "cores",
                Domain::choice(self.cores.iter().map(|&c| f64::from(c)).collect::<Vec<_>>()),
            )
            .with(
                "freq_ghz",
                Domain::choice(self.freqs.iter().map(|f| f.as_ghz()).collect::<Vec<_>>()),
            )
    }

    /// Validates the space against a device.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when empty or out of the device's
    /// ranges.
    pub fn validate(&self, device: &DeviceSpec) -> Result<()> {
        if self.is_empty() {
            return Err(Error::invalid_config("inference space is empty"));
        }
        if self.batches.contains(&0) {
            return Err(Error::invalid_config("batch size 0 in inference space"));
        }
        for &c in &self.cores {
            if !device.supports_cores(c) {
                return Err(Error::invalid_config(format!(
                    "{} cores unsupported on {}",
                    c, device.name
                )));
            }
        }
        for &f in &self.freqs {
            if f < device.min_freq || f > device.max_freq {
                return Err(Error::invalid_config(format!(
                    "frequency {:.2} GHz outside {}'s DVFS range",
                    f.as_ghz(),
                    device.name
                )));
            }
        }
        Ok(())
    }
}

/// The deployment recommendation returned to the user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceRecommendation {
    /// Edge device the recommendation targets.
    pub device: String,
    /// Optimal inference batch size.
    pub batch: u32,
    /// Optimal number of CPU cores.
    pub cores: u32,
    /// Optimal DVFS frequency.
    pub freq: Hertz,
    /// Estimated per-item inference latency at the optimum.
    pub latency_per_item: Seconds,
    /// Estimated per-item inference energy at the optimum.
    pub energy_per_item: JoulesPerItem,
    /// Estimated throughput at the optimum.
    pub throughput: ItemsPerSecond,
}

/// Cost of one inference-tuning run (it executes on the tuning server's
/// CPUs, in parallel with training).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceTuningCost {
    /// Wall-clock duration of the sweep *on the tuning server*.
    pub runtime: Seconds,
    /// Energy consumed by the sweep on the tuning server.
    pub energy: Joules,
    /// Total emulated edge-device time covered by the sweep.
    pub emulated_time: Seconds,
    /// Number of configurations measured.
    pub configs: usize,
}

/// The Inference Tuning Server.
#[derive(Debug, Clone)]
pub struct InferenceTuningServer {
    device: DeviceSpec,
    space: InferenceSpace,
    objective: InferenceObjective,
}

impl InferenceTuningServer {
    /// Creates a server tuning for `device` under `objective`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `space` is invalid for the
    /// device.
    pub fn new(
        device: DeviceSpec,
        space: InferenceSpace,
        objective: InferenceObjective,
    ) -> Result<Self> {
        space.validate(&device)?;
        Ok(InferenceTuningServer {
            device,
            space,
            objective,
        })
    }

    /// The target device.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The search space.
    #[must_use]
    pub fn space(&self) -> &InferenceSpace {
        &self.space
    }

    /// Exhaustively tunes inference parameters for one architecture
    /// (grid search: the paper notes grid is sensible here because the
    /// inference space is small, §3.1).
    ///
    /// Returns the recommendation and the cost of producing it.
    #[must_use]
    pub fn tune(&self, profile: &WorkProfile) -> (InferenceRecommendation, InferenceTuningCost) {
        let mut best: Option<(f64, InferenceRecommendation)> = None;
        let mut emulated = Seconds::ZERO;
        let mut configs = 0usize;
        for &batch in &self.space.batches {
            for &cores in &self.space.cores {
                for &freq in &self.space.freqs {
                    let alloc = CpuAllocation::new(&self.device, cores, freq)
                        .expect("space validated at construction");
                    let exec = simulate_inference(&self.device, &alloc, profile, batch);
                    configs += 1;
                    emulated += exec.latency;
                    let latency_per_item = exec.latency / f64::from(batch);
                    let e_per_item = energy_per_item(exec.energy, f64::from(batch));
                    let score = self.objective.score(latency_per_item, e_per_item);
                    if best.as_ref().is_none_or(|(s, _)| score < *s) {
                        best = Some((
                            score,
                            InferenceRecommendation {
                                device: self.device.name.clone(),
                                batch,
                                cores,
                                freq,
                                latency_per_item,
                                energy_per_item: e_per_item,
                                throughput: throughput(f64::from(batch), exec.latency),
                            },
                        ));
                    }
                }
            }
        }
        let (_, recommendation) = best.expect("space is non-empty by construction");
        let runtime = emulated / EMULATION_SPEEDUP;
        let energy = Watts::new(EMULATION_HOST_POWER_W) * runtime;
        (
            recommendation,
            InferenceTuningCost {
                runtime,
                energy,
                emulated_time: emulated,
                configs,
            },
        )
    }
}

impl InferenceTuningServer {
    /// Model-based alternative to the exhaustive sweep: a TPE sampler
    /// proposes `trials` configurations and only those are measured —
    /// §3.1 notes the inference server may run its own search algorithm
    /// (e.g. BOHB) instead of grid search when the space is larger.
    ///
    /// Measured configurations are deduplicated, so the cost is at most
    /// `trials` distinct measurements. Returns the best configuration
    /// found and the cost of finding it.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    #[must_use]
    pub fn tune_with_model(
        &self,
        profile: &WorkProfile,
        trials: usize,
        seed: SeedStream,
    ) -> (InferenceRecommendation, InferenceTuningCost) {
        assert!(trials >= 1, "need at least one trial");
        let space = self.space.as_search_space();
        let mut sampler = TpeSampler::new(seed.child("inference-tpe"));
        let mut history: Vec<(Config, f64)> = Vec::new();
        let mut measured: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        let mut best: Option<(f64, InferenceRecommendation)> = None;
        let mut emulated = Seconds::ZERO;
        for _ in 0..trials {
            let obs: Vec<(&Config, f64)> = history.iter().map(|(c, s)| (c, *s)).collect();
            let config = sampler.suggest(&space, &obs);
            let key = config.key();
            let score = if let Some(&cached) = measured.get(&key) {
                cached
            } else {
                let batch = config.get("batch").expect("set by sampler") as u32;
                let cores = config.get("cores").expect("set by sampler") as u32;
                let freq = Hertz::from_ghz(config.get("freq_ghz").expect("set by sampler"));
                let alloc = CpuAllocation::new(&self.device, cores, freq)
                    .expect("space validated at construction");
                let exec = simulate_inference(&self.device, &alloc, profile, batch);
                emulated += exec.latency;
                let latency_per_item = exec.latency / f64::from(batch);
                let e_per_item = energy_per_item(exec.energy, f64::from(batch));
                let score = self.objective.score(latency_per_item, e_per_item);
                if best.as_ref().is_none_or(|(s, _)| score < *s) {
                    best = Some((
                        score,
                        InferenceRecommendation {
                            device: self.device.name.clone(),
                            batch,
                            cores,
                            freq,
                            latency_per_item,
                            energy_per_item: e_per_item,
                            throughput: throughput(f64::from(batch), exec.latency),
                        },
                    ));
                }
                measured.insert(key, score);
                score
            };
            history.push((config, score));
        }
        let (_, recommendation) = best.expect("at least one trial measured");
        let runtime = emulated / EMULATION_SPEEDUP;
        let energy = Watts::new(EMULATION_HOST_POWER_W) * runtime;
        (
            recommendation,
            InferenceTuningCost {
                runtime,
                energy,
                emulated_time: emulated,
                configs: measured.len(),
            },
        )
    }
}

/// Tunes inference parameters for one architecture across a *set* of
/// edge devices — the paper's common case where "the tuned model might be
/// deployed across different edge devices and having these configurations
/// suggested can assist users to take the most out of their tuned models"
/// (§1). Each device gets its own sweep over its own space.
///
/// # Errors
///
/// Returns the first device whose default space fails validation (does
/// not happen for catalog devices).
pub fn recommend_across(
    devices: &[DeviceSpec],
    profile: &WorkProfile,
    objective: InferenceObjective,
) -> Result<Vec<(InferenceRecommendation, InferenceTuningCost)>> {
    devices
        .iter()
        .map(|device| {
            let server = InferenceTuningServer::new(
                device.clone(),
                InferenceSpace::for_device(device),
                objective,
            )?;
            Ok(server.tune(profile))
        })
        .collect()
}

/// The conservative device-model default recommendation the degradation
/// ladder falls back to when the inference server cannot answer: batch 1,
/// all cores, maximum frequency — never optimal, always deployable — with
/// latency/energy/throughput estimated from the device model.
#[must_use]
pub fn fallback_recommendation(
    device: &DeviceSpec,
    profile: &WorkProfile,
) -> InferenceRecommendation {
    let alloc = CpuAllocation::full(device);
    let exec = simulate_inference(device, &alloc, profile, 1);
    InferenceRecommendation {
        device: device.name.clone(),
        batch: 1,
        cores: device.cores,
        freq: device.max_freq,
        latency_per_item: exec.latency,
        energy_per_item: energy_per_item(exec.energy, 1.0),
        throughput: throughput(1.0, exec.latency),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune_tuner::Metric;

    fn server(metric: Metric) -> InferenceTuningServer {
        let device = DeviceSpec::raspberry_pi_3b();
        let space = InferenceSpace::for_device(&device);
        InferenceTuningServer::new(device, space, InferenceObjective::new(metric)).unwrap()
    }

    fn resnet18() -> WorkProfile {
        WorkProfile::new(0.56e9, 3.0e6, 44.8e6)
    }

    #[test]
    fn space_for_device_is_valid_and_sized() {
        let device = DeviceSpec::raspberry_pi_3b();
        let space = InferenceSpace::for_device(&device);
        assert!(space.validate(&device).is_ok());
        assert_eq!(space.cores, vec![1, 2, 4]);
        assert_eq!(space.freqs.len(), 3);
        assert_eq!(space.len(), 8 * 3 * 3);
    }

    #[test]
    fn space_validation_catches_errors() {
        let device = DeviceSpec::raspberry_pi_3b();
        let mut space = InferenceSpace::for_device(&device);
        space.cores.push(16);
        assert!(space.validate(&device).is_err());
        let mut space2 = InferenceSpace::for_device(&device);
        space2.batches.push(0);
        assert!(space2.validate(&device).is_err());
        let empty = InferenceSpace {
            batches: vec![],
            cores: vec![1],
            freqs: vec![device.max_freq],
        };
        assert!(empty.validate(&device).is_err());
    }

    #[test]
    fn runtime_objective_prefers_batched_throughput() {
        let (rec, cost) = server(Metric::Runtime).tune(&resnet18());
        assert!(
            rec.batch > 1,
            "batching amortises dispatch: batch={}",
            rec.batch
        );
        assert!(rec.throughput.value() > 0.0);
        assert!(cost.configs == 72);
        assert!(cost.runtime.value() > 0.0);
    }

    #[test]
    fn energy_objective_accepts_lower_throughput_for_lower_energy() {
        let (rec_rt, _) = server(Metric::Runtime).tune(&resnet18());
        let (rec_en, _) = server(Metric::Energy).tune(&resnet18());
        // The footnote-1 effect: the energy optimum uses at most as many
        // cores/frequency as the runtime optimum and never beats its
        // throughput.
        assert!(rec_en.energy_per_item.value() <= rec_rt.energy_per_item.value());
        assert!(rec_en.throughput.value() <= rec_rt.throughput.value() * 1.001);
    }

    #[test]
    fn recommendation_is_the_true_grid_optimum() {
        let s = server(Metric::Runtime);
        let (rec, _) = s.tune(&resnet18());
        // Re-scan manually and compare.
        let mut best = f64::INFINITY;
        for &b in &s.space().batches {
            for &c in &s.space().cores {
                for &f in &s.space().freqs {
                    let alloc = CpuAllocation::new(s.device(), c, f).unwrap();
                    let exec = simulate_inference(s.device(), &alloc, &resnet18(), b);
                    best = best.min(exec.latency.value() / f64::from(b));
                }
            }
        }
        assert!((rec.latency_per_item.value() - best).abs() < 1e-12);
    }

    #[test]
    fn heavier_architectures_get_lower_throughput() {
        let s = server(Metric::Runtime);
        let (light, _) = s.tune(&resnet18());
        let heavy = WorkProfile::new(1.3e9, 9.2e6, 94.0e6);
        let (heavy_rec, _) = s.tune(&heavy);
        assert!(heavy_rec.throughput.value() < light.throughput.value());
    }

    #[test]
    fn model_based_search_measures_fewer_configs_for_similar_quality() {
        let s = server(Metric::Runtime);
        let profile = resnet18();
        let (grid_rec, grid_cost) = s.tune(&profile);
        let (tpe_rec, tpe_cost) =
            s.tune_with_model(&profile, 30, edgetune_util::rng::SeedStream::new(4));
        assert!(
            tpe_cost.configs < grid_cost.configs,
            "model-based search must measure fewer configs: {} vs {}",
            tpe_cost.configs,
            grid_cost.configs
        );
        assert!(tpe_cost.runtime < grid_cost.runtime);
        // Quality within 2x of the true optimum on its own metric.
        assert!(
            tpe_rec.latency_per_item.value() <= grid_rec.latency_per_item.value() * 2.0,
            "model-based optimum should be competitive: {} vs {}",
            tpe_rec.latency_per_item,
            grid_rec.latency_per_item
        );
    }

    #[test]
    fn model_based_search_is_deterministic() {
        let s = server(Metric::Energy);
        let profile = resnet18();
        let seed = edgetune_util::rng::SeedStream::new(9);
        let (a, _) = s.tune_with_model(&profile, 20, seed);
        let (b, _) = s.tune_with_model(&profile, 20, seed);
        assert_eq!(a, b);
    }

    #[test]
    fn as_search_space_mirrors_the_grid() {
        let device = DeviceSpec::raspberry_pi_3b();
        let space = InferenceSpace::for_device(&device);
        let generic = space.as_search_space();
        assert_eq!(generic.len(), 3);
        assert_eq!(generic.grid(100).len(), space.len());
    }

    #[test]
    fn recommend_across_covers_every_device() {
        let devices = [
            DeviceSpec::armv7_board(),
            DeviceSpec::raspberry_pi_3b(),
            DeviceSpec::intel_i7_7567u(),
        ];
        let recs = recommend_across(
            &devices,
            &resnet18(),
            InferenceObjective::new(Metric::Runtime),
        )
        .unwrap();
        assert_eq!(recs.len(), 3);
        for (device, (rec, cost)) in devices.iter().zip(&recs) {
            assert_eq!(rec.device, device.name);
            assert!(cost.configs > 0);
        }
        // The laptop CPU dominates the boards on throughput.
        assert!(recs[2].0.throughput.value() > recs[1].0.throughput.value());
    }

    #[test]
    fn tuning_cost_scales_with_space_size() {
        let device = DeviceSpec::raspberry_pi_3b();
        let small = InferenceSpace {
            batches: vec![1, 8],
            cores: vec![1],
            freqs: vec![device.max_freq],
        };
        let big = InferenceSpace::for_device(&device);
        let obj = InferenceObjective::new(Metric::Runtime);
        let s_small = InferenceTuningServer::new(device.clone(), small, obj).unwrap();
        let s_big = InferenceTuningServer::new(device, big, obj).unwrap();
        let (_, c_small) = s_small.tune(&resnet18());
        let (_, c_big) = s_big.tune(&resnet18());
        assert!(c_big.runtime > c_small.runtime);
        assert!(c_big.configs > c_small.configs);
    }

    #[test]
    fn fallback_recommendation_is_deployable_but_not_optimal() {
        let device = DeviceSpec::raspberry_pi_3b();
        let fallback = fallback_recommendation(&device, &resnet18());
        assert_eq!(fallback.batch, 1);
        assert_eq!(fallback.cores, device.cores);
        assert_eq!(fallback.freq, device.max_freq);
        assert!(fallback.latency_per_item.value() > 0.0);
        assert!(fallback.throughput.value() > 0.0);
        // The tuned optimum never loses to the fallback on the objective.
        let (tuned, _) = server(Metric::Runtime).tune(&resnet18());
        assert!(tuned.latency_per_item <= fallback.latency_per_item);
    }
}
