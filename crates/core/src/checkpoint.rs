//! Study checkpoints: serialize tuning progress after each rung so an
//! interrupted run can resume and finish with the *exact* history an
//! uninterrupted run would have produced.
//!
//! Determinism is the whole point, so the format is built for exact
//! round-trips: trial scores are stored as raw IEEE-754 bits
//! (`f64::to_bits`) because failed trials carry `f64::INFINITY`
//! penalties, which plain JSON would flatten to `null`. Alongside the
//! trial log the checkpoint records the two fault-injection cursors —
//! the training backend's draw counter and the inference server's
//! request sequence — so a resumed run replays the same fate for every
//! *future* trial and request as the uninterrupted run.
//!
//! Sharded studies persist a two-level layout instead: a
//! [`ShardManifest`] at the configured checkpoint path (seed, cursors,
//! cache, timeline, accumulated stall/energy, and the shard file names)
//! plus one [`ShardCheckpoint`] per shard holding that shard's stamped
//! trial slice. The manifest carries every piece of study-global state
//! the trial log alone cannot reproduce — replayed trials never rerun
//! inference sweeps, and cache hit/miss counters are `#[serde(skip)]`
//! inside the cache itself — so a resumed run serialises the exact
//! report bytes of the uninterrupted run. Resuming merges the
//! shard files back into one history with
//! [`HistoryMerge`](edgetune_tuner::merge::HistoryMerge); a manifest
//! that turns out to be a plain [`StudyCheckpoint`] degrades to
//! single-shard resume, and (when the degradation ladder is armed) a
//! torn or missing shard file degrades to a fresh — still
//! deterministic — start rather than a panic.

use std::path::Path;

use edgetune_faults::DegradationStats;
use edgetune_tuner::budget::TrialBudget;
use edgetune_tuner::merge::{HistoryMerge, ShardHistory, StampedTrial};
use edgetune_tuner::pareto::ObjectiveVector;
use edgetune_tuner::space::Config;
use edgetune_tuner::{History, TrialFailure, TrialOutcome, TrialRecord};
use edgetune_util::units::{Joules, Seconds};
use edgetune_util::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, HistoricalCache};
use crate::timeline::Timeline;

/// One trial in checkpoint form. Identical to [`TrialRecord`] except the
/// score travels as raw bits so non-finite penalties survive JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointTrial {
    id: u64,
    config: Config,
    budget: TrialBudget,
    /// `f64::to_bits` of the scheduler score — exact for every value,
    /// including the infinite penalties of failed trials.
    score_bits: u64,
    accuracy: f64,
    runtime: Seconds,
    energy: Joules,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    failure: Option<TrialFailure>,
    /// Pareto objective vector of the trial, when the study ran in
    /// `--pareto` mode. Absent (and skipped) in scalar studies so their
    /// checkpoints are byte-identical to pre-Pareto builds.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    vector: Option<ObjectiveVector>,
}

impl From<&TrialRecord> for CheckpointTrial {
    fn from(record: &TrialRecord) -> Self {
        CheckpointTrial {
            id: record.id,
            config: record.config.clone(),
            budget: record.budget,
            score_bits: record.outcome.score.to_bits(),
            accuracy: record.outcome.accuracy,
            runtime: record.outcome.runtime,
            energy: record.outcome.energy,
            failure: record.outcome.failure,
            vector: record.outcome.vector,
        }
    }
}

impl From<&CheckpointTrial> for TrialRecord {
    fn from(trial: &CheckpointTrial) -> Self {
        TrialRecord {
            id: trial.id,
            config: trial.config.clone(),
            budget: trial.budget,
            outcome: TrialOutcome {
                score: f64::from_bits(trial.score_bits),
                accuracy: trial.accuracy,
                runtime: trial.runtime,
                energy: trial.energy,
                failure: trial.failure,
                vector: trial.vector,
            },
        }
    }
}

/// A resumable snapshot of a tuning study, written after each completed
/// rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyCheckpoint {
    /// The seed the interrupted study ran under. Resuming under a
    /// different seed would silently diverge, so loads verify it.
    pub seed: u64,
    trials: Vec<CheckpointTrial>,
    /// The historical cache at checkpoint time (inference results are
    /// the expensive part of a rung — no reason to recompute them).
    pub cache: HistoricalCache,
    /// Training-backend fault-draw cursor: how many trial fates the
    /// injector has already decided.
    pub fault_cursor: u64,
    /// Inference-server request sequence: how many requests have been
    /// submitted (each one's fate is keyed by its sequence number).
    pub inference_cursor: u64,
    /// The cache's hit/miss counters, carried separately because they
    /// are `#[serde(skip)]` inside [`HistoricalCache`].
    #[serde(default)]
    pub cache_stats: CacheStats,
    /// Every timeline span recorded so far. Replayed trials skip
    /// inference sweeps entirely, so the sweep spans of the completed
    /// prefix can only come from here. Checkpoints written before this
    /// field existed deserialise with an empty timeline; the
    /// orchestrator falls back to approximate replay-recorded spans
    /// for those.
    #[serde(default)]
    pub timeline: Timeline,
    /// Accumulated model-server stall time at checkpoint.
    #[serde(default)]
    pub stall: Seconds,
    /// Accumulated inference-sweep energy at checkpoint.
    #[serde(default)]
    pub inference_energy: Joules,
    /// Degradation-ladder counters at checkpoint (all zero without an
    /// active fault plan).
    #[serde(default)]
    pub degradation: DegradationStats,
    /// Supervisor backoff-jitter draws consumed so far, so retried
    /// operations after a resume never reuse a jitter value the
    /// interrupted run already spent.
    #[serde(default)]
    pub backoff_draws: u64,
    /// Inference requests dropped by injected worker deaths so far.
    /// Replayed trials never resubmit their requests, so the prefix's
    /// injected-fault tallies can only come from here.
    #[serde(default)]
    pub injected_losses: u64,
    /// Inference sweeps delayed by injected device outages so far.
    #[serde(default)]
    pub injected_outages: u64,
}

impl StudyCheckpoint {
    /// Snapshots a study in progress: the trial log plus the
    /// study-global accounting ([`StudyGlobals`]) that replay alone
    /// cannot reconstruct.
    #[must_use]
    pub fn new(seed: u64, history: &History, globals: StudyGlobals) -> Self {
        StudyCheckpoint {
            seed,
            trials: history
                .records()
                .iter()
                .map(CheckpointTrial::from)
                .collect(),
            cache: globals.cache,
            fault_cursor: globals.fault_cursor,
            inference_cursor: globals.inference_cursor,
            cache_stats: globals.cache_stats,
            timeline: globals.timeline,
            stall: globals.stall,
            inference_energy: globals.inference_energy,
            degradation: globals.degradation,
            backoff_draws: globals.backoff_draws,
            injected_losses: globals.injected_losses,
            injected_outages: globals.injected_outages,
        }
    }

    /// Reconstructs the trial history, bit-exact.
    #[must_use]
    pub fn history(&self) -> History {
        let mut history = History::new();
        history.extend(self.trials.iter().map(TrialRecord::from));
        history
    }

    /// Number of checkpointed trials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True when no trials were checkpointed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Writes the checkpoint atomically (`.tmp` sibling + rename), the
    /// same crash-safety discipline as [`HistoricalCache::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] on I/O or serialisation failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| Error::storage(format!("serialising checkpoint: {e}")))?;
        write_atomic(path, &json)
    }

    /// Loads a checkpoint written by [`StudyCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] when the file is missing, unreadable,
    /// or not a valid checkpoint (a checkpoint is exact state — unlike
    /// the historical cache there is no lenient mode here; a corrupt
    /// checkpoint must not silently resume from wrong state).
    pub fn load(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| Error::storage(format!("parsing checkpoint {}: {e}", path.display())))
    }
}

/// Writes `json` atomically (`.tmp` sibling + rename), the same
/// crash-safety discipline as [`HistoricalCache::save`].
fn write_atomic(path: &Path, json: &str) -> Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        Error::storage(format!(
            "checkpoint path {} has no file name",
            path.display()
        ))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// One trial in shard-checkpoint form: the exact-round-trip
/// [`CheckpointTrial`] plus the provenance stamps [`HistoryMerge`] keys
/// on. The start timestamp travels as raw bits for the same reason the
/// score does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StampedCheckpointTrial {
    #[serde(flatten)]
    trial: CheckpointTrial,
    /// `f64::to_bits` of the simulated start timestamp.
    start_bits: u64,
    /// Index of the scheduler bracket that ran the trial.
    bracket: u32,
}

/// One shard's slice of a sharded study checkpoint, stored as its own
/// file next to the [`ShardManifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// The seed the study ran under (must match the manifest's).
    pub seed: u64,
    /// The shard's index in the coordinator's partition.
    pub shard: usize,
    trials: Vec<StampedCheckpointTrial>,
}

impl ShardCheckpoint {
    fn from_shard(seed: u64, shard: &ShardHistory) -> Self {
        ShardCheckpoint {
            seed,
            shard: shard.shard,
            trials: shard
                .trials
                .iter()
                .map(|stamped| StampedCheckpointTrial {
                    trial: CheckpointTrial::from(&stamped.record),
                    start_bits: stamped.start.value().to_bits(),
                    bracket: stamped.bracket,
                })
                .collect(),
        }
    }

    /// Reconstructs the shard's stamped history, bit-exact.
    #[must_use]
    pub fn shard_history(&self) -> ShardHistory {
        ShardHistory {
            shard: self.shard,
            trials: self
                .trials
                .iter()
                .map(|stamped| StampedTrial {
                    record: TrialRecord::from(&stamped.trial),
                    start: Seconds::new(f64::from_bits(stamped.start_bits)),
                    bracket: stamped.bracket,
                })
                .collect(),
        }
    }

    /// Writes the shard file atomically.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] on I/O or serialisation failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| Error::storage(format!("serialising shard checkpoint: {e}")))?;
        write_atomic(path, &json)
    }

    /// Loads a shard file written by [`ShardCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] when the file is missing, unreadable,
    /// or not a valid shard checkpoint.
    pub fn load(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| {
            Error::storage(format!("parsing shard checkpoint {}: {e}", path.display()))
        })
    }
}

/// The root of a sharded study checkpoint: study-global state plus the
/// names of the per-shard trial files, written at the configured
/// checkpoint path. Its field shape is disjoint from
/// [`StudyCheckpoint`]'s, so [`load_resume_state`] can tell the two
/// formats apart structurally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// The seed the interrupted study ran under.
    pub seed: u64,
    /// Number of shards the study was partitioned into.
    pub shards: usize,
    /// Shard file names, siblings of the manifest, indexed by shard.
    pub shard_files: Vec<String>,
    /// The historical cache at checkpoint time — study-global: the
    /// shared cache is the one cross-shard channel, so it lives in the
    /// manifest, not in any shard.
    pub cache: HistoricalCache,
    /// The cache's hit/miss counters, carried separately because they
    /// are `#[serde(skip)]` inside [`HistoricalCache`]; restoring them
    /// keeps a resumed run's final cache statistics identical to the
    /// uninterrupted run's.
    pub cache_stats: CacheStats,
    /// Every timeline span recorded so far. Replayed trials skip
    /// inference sweeps entirely, so the sweep spans of the completed
    /// prefix can only come from here.
    pub timeline: Timeline,
    /// Accumulated model-server stall time at checkpoint.
    pub stall: Seconds,
    /// Accumulated inference-sweep energy at checkpoint.
    pub inference_energy: Joules,
    /// Degradation-ladder counters at checkpoint (all zero without an
    /// active fault plan).
    pub degradation: DegradationStats,
    /// Supervisor backoff-jitter draws consumed so far, so retried
    /// operations after a resume never reuse a jitter value the
    /// interrupted run already spent.
    pub backoff_draws: u64,
    /// Training-backend fault-draw cursor.
    pub fault_cursor: u64,
    /// Inference-server request sequence.
    pub inference_cursor: u64,
    /// Inference requests dropped by injected worker deaths so far.
    /// Replayed trials never resubmit their requests, so the prefix's
    /// injected-fault tallies can only come from here.
    #[serde(default)]
    pub injected_losses: u64,
    /// Inference sweeps delayed by injected device outages so far.
    #[serde(default)]
    pub injected_outages: u64,
}

/// The study-global state a [`ShardManifest`] carries beyond the shard
/// file list: everything the orchestrator must reinstate — on top of
/// replaying the merged trial log — for a resumed run to serialise the
/// same report bytes as the uninterrupted run.
#[derive(Debug, Clone)]
pub struct StudyGlobals {
    /// Shared historical cache (the one cross-shard channel).
    pub cache: HistoricalCache,
    /// The cache's in-memory hit/miss counters, read from
    /// [`AsyncInferenceServer::cache_stats`](crate::async_server::AsyncInferenceServer::cache_stats)
    /// — the same single tally the trace's cache counter events sample,
    /// so checkpoints and traces can never disagree about them.
    pub cache_stats: CacheStats,
    /// All timeline spans recorded so far.
    pub timeline: Timeline,
    /// Accumulated model-server stall time.
    pub stall: Seconds,
    /// Accumulated inference-sweep energy.
    pub inference_energy: Joules,
    /// Degradation-ladder counters.
    pub degradation: DegradationStats,
    /// Supervisor backoff-jitter draws consumed.
    pub backoff_draws: u64,
    /// Training-backend fault-draw cursor.
    pub fault_cursor: u64,
    /// Inference-server request sequence.
    pub inference_cursor: u64,
    /// Inference requests dropped by injected worker deaths.
    pub injected_losses: u64,
    /// Inference sweeps delayed by injected device outages.
    pub injected_outages: u64,
}

impl ShardManifest {
    /// Writes a complete sharded checkpoint: every shard file first,
    /// then the manifest, all atomically — a torn write can strand
    /// fresh shard files behind a stale manifest but never the reverse.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] on I/O or serialisation failure.
    pub fn save_sharded(
        path: &Path,
        seed: u64,
        shard_histories: &[ShardHistory],
        globals: StudyGlobals,
    ) -> Result<()> {
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                Error::storage(format!(
                    "checkpoint path {} has no file name",
                    path.display()
                ))
            })?
            .to_string_lossy()
            .into_owned();
        let mut shard_files = Vec::with_capacity(shard_histories.len());
        for shard in shard_histories {
            let name = format!("{}.shard{}", file_name, shard.shard);
            ShardCheckpoint::from_shard(seed, shard).save(&path.with_file_name(name.as_str()))?;
            shard_files.push(name);
        }
        let manifest = ShardManifest {
            seed,
            shards: shard_histories.len(),
            shard_files,
            cache: globals.cache,
            cache_stats: globals.cache_stats,
            timeline: globals.timeline,
            stall: globals.stall,
            inference_energy: globals.inference_energy,
            degradation: globals.degradation,
            backoff_draws: globals.backoff_draws,
            fault_cursor: globals.fault_cursor,
            inference_cursor: globals.inference_cursor,
            injected_losses: globals.injected_losses,
            injected_outages: globals.injected_outages,
        };
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| Error::storage(format!("serialising shard manifest: {e}")))?;
        write_atomic(path, &json)
    }

    /// Loads every shard file named by the manifest and merges them
    /// back into one history in global execution order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] when a shard file is missing, torn,
    /// inconsistent with the manifest, or the manifest's shard count
    /// does not match its file list.
    pub fn load_shards(&self, manifest_path: &Path) -> Result<History> {
        if self.shards != self.shard_files.len() {
            return Err(Error::storage(format!(
                "shard manifest {} names {} files for {} shards",
                manifest_path.display(),
                self.shard_files.len(),
                self.shards
            )));
        }
        let mut shard_histories = Vec::with_capacity(self.shard_files.len());
        for name in &self.shard_files {
            let shard_path = manifest_path.with_file_name(name.as_str());
            let shard = ShardCheckpoint::load(&shard_path)?;
            if shard.seed != self.seed {
                return Err(Error::storage(format!(
                    "shard file {} was written under seed {}, not {}",
                    shard_path.display(),
                    shard.seed,
                    self.seed
                )));
            }
            shard_histories.push(shard.shard_history());
        }
        Ok(HistoryMerge::merge(shard_histories))
    }
}

/// What a resume found at the checkpoint path.
// One resume value exists per study start, so the size skew between
// `Fresh` and the checkpoint-carrying variants costs nothing in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum StudyResume {
    /// Nothing salvageable: degraded recovery re-runs the study from
    /// scratch — deterministic, so it still reproduces the exact bytes
    /// an uninterrupted run would have produced.
    Fresh,
    /// A plain single-shard checkpoint.
    Plain(StudyCheckpoint),
    /// A sharded checkpoint whose shard files merged cleanly.
    Sharded {
        /// The manifest (study-global seed, cursors, cache).
        manifest: Box<ShardManifest>,
        /// The merged history, in global execution order.
        history: History,
    },
}

/// Resolves whatever checkpoint state lives at `path`.
///
/// Tries the sharded layout first ([`ShardManifest`] + shard files),
/// then the plain [`StudyCheckpoint`] format — so a manifest clobbered
/// by a plain checkpoint degrades to single-shard resume. When
/// `allow_degraded` is set (the degradation ladder is armed), a corrupt
/// manifest, torn shard file, or missing shard file degrades further to
/// [`StudyResume::Fresh`] instead of failing the run.
///
/// # Errors
///
/// Returns [`Error::Storage`] when the path is unreadable, or when the
/// state is corrupt and `allow_degraded` is off.
pub fn load_resume_state(path: &Path, allow_degraded: bool) -> Result<StudyResume> {
    let json = std::fs::read_to_string(path)?;
    if let Ok(manifest) = serde_json::from_str::<ShardManifest>(&json) {
        return match manifest.load_shards(path) {
            Ok(history) => Ok(StudyResume::Sharded {
                manifest: Box::new(manifest),
                history,
            }),
            Err(_) if allow_degraded => Ok(StudyResume::Fresh),
            Err(e) => Err(e),
        };
    }
    match serde_json::from_str::<StudyCheckpoint>(&json) {
        Ok(checkpoint) => Ok(StudyResume::Plain(checkpoint)),
        Err(_) if allow_degraded => Ok(StudyResume::Fresh),
        Err(e) => Err(Error::storage(format!(
            "parsing checkpoint {}: {e}",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheKey;
    use crate::inference::InferenceRecommendation;
    use edgetune_tuner::Metric;
    use edgetune_util::units::{Hertz, ItemsPerSecond, JoulesPerItem};

    fn record(id: u64, score: f64) -> TrialRecord {
        TrialRecord {
            id,
            config: Config::new().with("batch", 8.0).with("lr", 0.01),
            budget: TrialBudget::new(4.0, 1.0),
            outcome: TrialOutcome::new(score, 0.8, Seconds::new(12.0), Joules::new(30.0)),
        }
    }

    fn failed_record(id: u64) -> TrialRecord {
        TrialRecord {
            id,
            config: Config::new().with("batch", 16.0),
            budget: TrialBudget::new(2.0, 1.0),
            outcome: TrialOutcome::failed(TrialFailure::Crash, Seconds::new(3.0), Joules::new(7.0)),
        }
    }

    fn sample_cache() -> HistoricalCache {
        let mut cache = HistoricalCache::new();
        cache.store(
            &CacheKey::new("Raspberry Pi 3B+", "ResNet/layers=18", Metric::Runtime),
            InferenceRecommendation {
                device: "Raspberry Pi 3B+".to_string(),
                batch: 8,
                cores: 4,
                freq: Hertz::from_ghz(1.4),
                latency_per_item: Seconds::new(0.05),
                energy_per_item: JoulesPerItem::new(0.3),
                throughput: ItemsPerSecond::new(20.0),
            },
        );
        cache
    }

    fn globals_with(
        cache: HistoricalCache,
        fault_cursor: u64,
        inference_cursor: u64,
    ) -> StudyGlobals {
        StudyGlobals {
            cache,
            cache_stats: CacheStats::default(),
            timeline: Timeline::new(),
            stall: Seconds::ZERO,
            inference_energy: Joules::ZERO,
            degradation: DegradationStats::default(),
            backoff_draws: 0,
            fault_cursor,
            inference_cursor,
            injected_losses: 0,
            injected_outages: 0,
        }
    }

    #[test]
    fn history_round_trips_through_json_including_infinite_scores() {
        let mut history = History::new();
        history.push(record(0, 1.25));
        history.push(failed_record(1));
        history.push(record(2, 0.75));
        let ckpt = StudyCheckpoint::new(42, &history, globals_with(sample_cache(), 7, 11));
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: StudyCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 42);
        assert_eq!(back.fault_cursor, 7);
        assert_eq!(back.inference_cursor, 11);
        assert_eq!(back.history(), history, "bit-exact history round-trip");
        assert!(back.history().records()[1].outcome.score.is_infinite());
        assert_eq!(back.cache.len(), 1);
    }

    #[test]
    fn legacy_checkpoints_without_study_globals_still_load() {
        // Checkpoints written before the study-global fields existed
        // must deserialise with zeroed accounting, not fail.
        let mut history = History::new();
        history.push(record(0, 1.0));
        let ckpt = StudyCheckpoint::new(3, &history, globals_with(HistoricalCache::new(), 2, 4));
        let mut value = serde_json::to_value(&ckpt).unwrap();
        let obj = value.as_object_mut().unwrap();
        for field in [
            "cache_stats",
            "timeline",
            "stall",
            "inference_energy",
            "degradation",
            "backoff_draws",
            "injected_losses",
            "injected_outages",
        ] {
            obj.remove(field);
        }
        let back: StudyCheckpoint =
            serde_json::from_str(&serde_json::to_string(&value).unwrap()).unwrap();
        assert_eq!(back.history(), history);
        assert_eq!(back.backoff_draws, 0);
        assert_eq!(back.stall, Seconds::ZERO);
        assert!(back.timeline.spans().is_empty());
    }

    #[test]
    fn save_load_round_trip_is_atomic() {
        let mut history = History::new();
        history.push(record(0, 2.0));
        let ckpt = StudyCheckpoint::new(9, &history, globals_with(HistoricalCache::new(), 1, 1));
        let dir = std::env::temp_dir().join("edgetune-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        ckpt.save(&path).unwrap();
        assert!(!dir.join("study.ckpt.json.tmp").exists());
        let loaded = StudyCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_not_salvaged() {
        let dir = std::env::temp_dir().join("edgetune-checkpoint-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        std::fs::write(&path, "{\"seed\": 42, \"trials\": [tor").unwrap();
        assert!(StudyCheckpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    fn stamped(id: u64, start: f64, bracket: u32) -> StampedTrial {
        StampedTrial {
            record: record(id, id as f64),
            start: Seconds::new(start),
            bracket,
        }
    }

    fn sharded_fixture(dir: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        let shards = vec![
            ShardHistory {
                shard: 0,
                trials: vec![stamped(0, 0.0, 0), stamped(1, 10.0, 0)],
            },
            ShardHistory {
                shard: 1,
                trials: vec![stamped(2, 5.0, 0), stamped(3, 15.0, 1)],
            },
        ];
        let globals = StudyGlobals {
            cache: sample_cache(),
            cache_stats: CacheStats { hits: 5, misses: 2 },
            timeline: Timeline::new(),
            stall: Seconds::new(1.5),
            inference_energy: Joules::new(4.0),
            degradation: DegradationStats::default(),
            backoff_draws: 0,
            fault_cursor: 3,
            inference_cursor: 9,
            injected_losses: 0,
            injected_outages: 0,
        };
        ShardManifest::save_sharded(&path, 42, &shards, globals).unwrap();
        path
    }

    #[test]
    fn sharded_save_load_round_trips_and_merges_in_execution_order() {
        let path = sharded_fixture("edgetune-shard-roundtrip-test");
        match load_resume_state(&path, false).unwrap() {
            StudyResume::Sharded { manifest, history } => {
                assert_eq!(manifest.seed, 42);
                assert_eq!(manifest.shards, 2);
                assert_eq!(manifest.fault_cursor, 3);
                assert_eq!(manifest.inference_cursor, 9);
                assert_eq!(manifest.cache.len(), 1);
                assert_eq!(
                    manifest.cache_stats,
                    CacheStats { hits: 5, misses: 2 },
                    "serde-skipped counters must survive through the manifest"
                );
                assert_eq!(manifest.stall, Seconds::new(1.5));
                assert_eq!(manifest.inference_energy, Joules::new(4.0));
                let ids: Vec<u64> = history.records().iter().map(|r| r.id).collect();
                assert_eq!(ids, vec![0, 2, 1, 3], "merged by (start, bracket, id)");
            }
            other => panic!("expected a sharded resume, got {other:?}"),
        }
    }

    #[test]
    fn a_plain_checkpoint_at_the_manifest_path_degrades_to_single_shard_resume() {
        let dir = std::env::temp_dir().join("edgetune-shard-plain-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        let mut history = History::new();
        history.push(record(0, 1.5));
        StudyCheckpoint::new(7, &history, globals_with(HistoricalCache::new(), 1, 2))
            .save(&path)
            .unwrap();
        match load_resume_state(&path, false).unwrap() {
            StudyResume::Plain(checkpoint) => {
                assert_eq!(checkpoint.seed, 7);
                assert_eq!(checkpoint.len(), 1);
            }
            other => panic!("expected a plain resume, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_state_degrades_to_fresh_only_when_the_ladder_is_armed() {
        let dir = std::env::temp_dir().join("edgetune-shard-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        std::fs::write(&path, "{\"seed\": 42, \"shard_files\": [tor").unwrap();
        assert!(matches!(
            load_resume_state(&path, true).unwrap(),
            StudyResume::Fresh
        ));
        assert!(load_resume_state(&path, false).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_missing_shard_file_degrades_to_fresh_not_a_panic() {
        let path = sharded_fixture("edgetune-shard-missing-test");
        std::fs::remove_file(path.with_file_name("study.ckpt.json.shard1")).unwrap();
        assert!(matches!(
            load_resume_state(&path, true).unwrap(),
            StudyResume::Fresh
        ));
        assert!(load_resume_state(&path, false).is_err());
    }
}
