//! Study checkpoints: serialize tuning progress after each rung so an
//! interrupted run can resume and finish with the *exact* history an
//! uninterrupted run would have produced.
//!
//! Determinism is the whole point, so the format is built for exact
//! round-trips: trial scores are stored as raw IEEE-754 bits
//! (`f64::to_bits`) because failed trials carry `f64::INFINITY`
//! penalties, which plain JSON would flatten to `null`. Alongside the
//! trial log the checkpoint records the two fault-injection cursors —
//! the training backend's draw counter and the inference server's
//! request sequence — so a resumed run replays the same fate for every
//! *future* trial and request as the uninterrupted run.

use std::path::Path;

use edgetune_tuner::budget::TrialBudget;
use edgetune_tuner::space::Config;
use edgetune_tuner::{History, TrialFailure, TrialOutcome, TrialRecord};
use edgetune_util::units::{Joules, Seconds};
use edgetune_util::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::cache::HistoricalCache;

/// One trial in checkpoint form. Identical to [`TrialRecord`] except the
/// score travels as raw bits so non-finite penalties survive JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointTrial {
    id: u64,
    config: Config,
    budget: TrialBudget,
    /// `f64::to_bits` of the scheduler score — exact for every value,
    /// including the infinite penalties of failed trials.
    score_bits: u64,
    accuracy: f64,
    runtime: Seconds,
    energy: Joules,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    failure: Option<TrialFailure>,
}

impl From<&TrialRecord> for CheckpointTrial {
    fn from(record: &TrialRecord) -> Self {
        CheckpointTrial {
            id: record.id,
            config: record.config.clone(),
            budget: record.budget,
            score_bits: record.outcome.score.to_bits(),
            accuracy: record.outcome.accuracy,
            runtime: record.outcome.runtime,
            energy: record.outcome.energy,
            failure: record.outcome.failure,
        }
    }
}

impl From<&CheckpointTrial> for TrialRecord {
    fn from(trial: &CheckpointTrial) -> Self {
        TrialRecord {
            id: trial.id,
            config: trial.config.clone(),
            budget: trial.budget,
            outcome: TrialOutcome {
                score: f64::from_bits(trial.score_bits),
                accuracy: trial.accuracy,
                runtime: trial.runtime,
                energy: trial.energy,
                failure: trial.failure,
            },
        }
    }
}

/// A resumable snapshot of a tuning study, written after each completed
/// rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyCheckpoint {
    /// The seed the interrupted study ran under. Resuming under a
    /// different seed would silently diverge, so loads verify it.
    pub seed: u64,
    trials: Vec<CheckpointTrial>,
    /// The historical cache at checkpoint time (inference results are
    /// the expensive part of a rung — no reason to recompute them).
    pub cache: HistoricalCache,
    /// Training-backend fault-draw cursor: how many trial fates the
    /// injector has already decided.
    pub fault_cursor: u64,
    /// Inference-server request sequence: how many requests have been
    /// submitted (each one's fate is keyed by its sequence number).
    pub inference_cursor: u64,
}

impl StudyCheckpoint {
    /// Snapshots a study in progress.
    #[must_use]
    pub fn new(
        seed: u64,
        history: &History,
        cache: HistoricalCache,
        fault_cursor: u64,
        inference_cursor: u64,
    ) -> Self {
        StudyCheckpoint {
            seed,
            trials: history
                .records()
                .iter()
                .map(CheckpointTrial::from)
                .collect(),
            cache,
            fault_cursor,
            inference_cursor,
        }
    }

    /// Reconstructs the trial history, bit-exact.
    #[must_use]
    pub fn history(&self) -> History {
        let mut history = History::new();
        history.extend(self.trials.iter().map(TrialRecord::from));
        history
    }

    /// Number of checkpointed trials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True when no trials were checkpointed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Writes the checkpoint atomically (`.tmp` sibling + rename), the
    /// same crash-safety discipline as [`HistoricalCache::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] on I/O or serialisation failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| Error::storage(format!("serialising checkpoint: {e}")))?;
        let file_name = path.file_name().ok_or_else(|| {
            Error::storage(format!(
                "checkpoint path {} has no file name",
                path.display()
            ))
        })?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a checkpoint written by [`StudyCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] when the file is missing, unreadable,
    /// or not a valid checkpoint (a checkpoint is exact state — unlike
    /// the historical cache there is no lenient mode here; a corrupt
    /// checkpoint must not silently resume from wrong state).
    pub fn load(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| Error::storage(format!("parsing checkpoint {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheKey;
    use crate::inference::InferenceRecommendation;
    use edgetune_tuner::Metric;
    use edgetune_util::units::{Hertz, ItemsPerSecond, JoulesPerItem};

    fn record(id: u64, score: f64) -> TrialRecord {
        TrialRecord {
            id,
            config: Config::new().with("batch", 8.0).with("lr", 0.01),
            budget: TrialBudget::new(4.0, 1.0),
            outcome: TrialOutcome::new(score, 0.8, Seconds::new(12.0), Joules::new(30.0)),
        }
    }

    fn failed_record(id: u64) -> TrialRecord {
        TrialRecord {
            id,
            config: Config::new().with("batch", 16.0),
            budget: TrialBudget::new(2.0, 1.0),
            outcome: TrialOutcome::failed(TrialFailure::Crash, Seconds::new(3.0), Joules::new(7.0)),
        }
    }

    fn sample_cache() -> HistoricalCache {
        let mut cache = HistoricalCache::new();
        cache.store(
            &CacheKey::new("Raspberry Pi 3B+", "ResNet/layers=18", Metric::Runtime),
            InferenceRecommendation {
                device: "Raspberry Pi 3B+".to_string(),
                batch: 8,
                cores: 4,
                freq: Hertz::from_ghz(1.4),
                latency_per_item: Seconds::new(0.05),
                energy_per_item: JoulesPerItem::new(0.3),
                throughput: ItemsPerSecond::new(20.0),
            },
        );
        cache
    }

    #[test]
    fn history_round_trips_through_json_including_infinite_scores() {
        let mut history = History::new();
        history.push(record(0, 1.25));
        history.push(failed_record(1));
        history.push(record(2, 0.75));
        let ckpt = StudyCheckpoint::new(42, &history, sample_cache(), 7, 11);
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: StudyCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 42);
        assert_eq!(back.fault_cursor, 7);
        assert_eq!(back.inference_cursor, 11);
        assert_eq!(back.history(), history, "bit-exact history round-trip");
        assert!(back.history().records()[1].outcome.score.is_infinite());
        assert_eq!(back.cache.len(), 1);
    }

    #[test]
    fn save_load_round_trip_is_atomic() {
        let mut history = History::new();
        history.push(record(0, 2.0));
        let ckpt = StudyCheckpoint::new(9, &history, HistoricalCache::new(), 1, 1);
        let dir = std::env::temp_dir().join("edgetune-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        ckpt.save(&path).unwrap();
        assert!(!dir.join("study.ckpt.json.tmp").exists());
        let loaded = StudyCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_not_salvaged() {
        let dir = std::env::temp_dir().join("edgetune-checkpoint-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        std::fs::write(&path, "{\"seed\": 42, \"trials\": [tor").unwrap();
        assert!(StudyCheckpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
