//! Glue between the scenario tuner and the serving runtime.
//!
//! `edgetune-serving` is deliberately ignorant of the tuner: its runtime
//! asks an [`OnlineTuner`] for a fresh configuration when traffic drifts.
//! This module provides that implementation — [`ScenarioRetuner`]
//! re-invokes [`tune_for_scenario`] against the estimated arrival rate and
//! converts the [`ScenarioRecommendation`] into a deployable
//! [`ServingConfig`] — plus the conversion helper the CLI and examples use
//! to deploy an offline recommendation.

use edgetune_device::latency::{simulate_inference, CpuAllocation};
use edgetune_device::profile::WorkProfile;
use edgetune_device::spec::DeviceSpec;
use edgetune_serving::{ConfigSelector, FrontierEntry, OnlineTuner, ServingConfig};
use edgetune_util::rng::SeedStream;
use edgetune_util::units::JoulesPerItem;
use edgetune_util::Result;

use crate::batching::MultiStreamScenario;
use crate::inference::InferenceSpace;
use crate::scenario::{tune_for_scenario, Scenario, ScenarioRecommendation};

/// Arrivals simulated per online re-tune: enough to average the queueing
/// behaviour without stalling the serving loop.
const RETUNE_ARRIVALS: usize = 400;

/// Converts an offline scenario recommendation into a deployable serving
/// configuration, recording the arrival rate it was tuned for (0 disables
/// drift detection) and the tuner's predicted mean response.
#[must_use]
pub fn config_from_recommendation(rec: &ScenarioRecommendation, tuned_rate: f64) -> ServingConfig {
    ServingConfig::new(rec.batch, rec.cores, rec.freq)
        .with_tuned_rate(tuned_rate)
        .with_prediction(rec.mean_response)
}

/// The arrival rate implied by a scenario: the Poisson rate of the
/// multi-stream pattern, or samples-per-query over the period for the
/// server pattern.
#[must_use]
pub fn scenario_rate(scenario: &Scenario) -> f64 {
    match scenario {
        Scenario::Server(s) => f64::from(s.samples_per_query) / s.period.value(),
        Scenario::MultiStream(s) => s.rate,
    }
}

/// Re-tunes serving configurations by sweeping the inference space with
/// the core scenario tuner.
#[derive(Debug, Clone)]
pub struct ScenarioRetuner {
    device: DeviceSpec,
    space: InferenceSpace,
    profile: WorkProfile,
    arrivals: usize,
}

impl ScenarioRetuner {
    /// Creates a re-tuner sweeping `space` for `profile` on `device`.
    #[must_use]
    pub fn new(device: DeviceSpec, space: InferenceSpace, profile: WorkProfile) -> Self {
        ScenarioRetuner {
            device,
            space,
            profile,
            arrivals: RETUNE_ARRIVALS,
        }
    }

    /// Overrides the number of arrivals simulated per re-tune.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is zero.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: usize) -> Self {
        assert!(arrivals >= 1, "need at least one simulated arrival");
        self.arrivals = arrivals;
        self
    }

    /// Tunes a deployable configuration for an explicit scenario (the
    /// offline path: produce the initial configuration before serving).
    ///
    /// # Errors
    ///
    /// Propagates [`tune_for_scenario`] errors (invalid space, or no
    /// stable configuration for a server scenario).
    pub fn recommend(&self, scenario: &Scenario, seed: SeedStream) -> Result<ServingConfig> {
        let rec = tune_for_scenario(&self.device, &self.space, &self.profile, scenario, seed)?;
        Ok(config_from_recommendation(&rec, scenario_rate(scenario)))
    }

    /// Pre-tunes one configuration per rate in `rates` and packs them
    /// into a [`ConfigSelector`]: the frontier the serving runtime
    /// consults *before* paying for a live re-tune. Each rung gets its
    /// own derived seed, a capacity equal to the rate it was tuned for,
    /// and a per-item energy read off the device model at its batch
    /// size; untunable rates (sweep finds nothing stable) are skipped.
    #[must_use]
    pub fn precompute_frontier(&self, rates: &[f64], seed: SeedStream) -> ConfigSelector {
        let mut entries = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            if !(rate > 0.0 && rate.is_finite()) {
                continue;
            }
            let scenario = Scenario::MultiStream(MultiStreamScenario::new(rate, self.arrivals));
            let Ok(config) = self.recommend(&scenario, seed.child_indexed("frontier", i as u64))
            else {
                continue;
            };
            let Ok(alloc) = CpuAllocation::new(&self.device, config.cores, config.freq) else {
                continue;
            };
            let exec = simulate_inference(&self.device, &alloc, &self.profile, config.batch_cap);
            entries.push(FrontierEntry {
                config,
                capacity: rate,
                energy_per_item: JoulesPerItem::new(
                    exec.energy.value() / f64::from(config.batch_cap),
                ),
            });
        }
        ConfigSelector::new(entries)
    }
}

/// A geometric ladder of arrival rates around `base_rate` for frontier
/// pre-computation: `n` points spanning `base_rate / 2` to
/// `base_rate * 8`, wide enough to cover the multi-x upward drifts the
/// drift experiments inject while keeping a cheap point for lulls.
#[must_use]
pub fn frontier_rates(base_rate: f64, n: usize) -> Vec<f64> {
    assert!(base_rate > 0.0, "rate ladder needs a positive base");
    if n <= 1 {
        return vec![base_rate];
    }
    let lo = base_rate * 0.5;
    let hi = base_rate * 8.0;
    (0..n)
        .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
        .collect()
}

impl OnlineTuner for ScenarioRetuner {
    /// Re-tunes for Poisson traffic at the drift-estimated rate; `None`
    /// when the estimate is unusable or the sweep finds no configuration.
    fn retune(&self, estimated_rate: f64, seed: SeedStream) -> Option<ServingConfig> {
        if !(estimated_rate > 0.0 && estimated_rate.is_finite()) {
            return None;
        }
        let scenario =
            Scenario::MultiStream(MultiStreamScenario::new(estimated_rate, self.arrivals));
        self.recommend(&scenario, seed).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune_util::units::Seconds;
    use edgetune_workloads::catalog::Workload;
    use edgetune_workloads::WorkloadId;

    fn retuner() -> ScenarioRetuner {
        let device = DeviceSpec::raspberry_pi_3b();
        let space = InferenceSpace::for_device(&device);
        let profile = Workload::by_id(WorkloadId::Ic).profile(18.0);
        ScenarioRetuner::new(device, space, profile)
    }

    #[test]
    fn retune_produces_a_deployable_config() {
        let config = retuner().retune(10.0, SeedStream::new(1)).expect("tunable");
        assert!(config.batch_cap >= 1);
        assert!(config.tuned_rate > 0.0);
        assert!(config.predicted_mean_response.is_some());
    }

    #[test]
    fn retune_tracks_the_load() {
        let r = retuner();
        let light = r.retune(0.2, SeedStream::new(2)).unwrap();
        let heavy = r.retune(30.0, SeedStream::new(2)).unwrap();
        assert!(
            heavy.batch_cap > light.batch_cap,
            "30/s needs aggregation: light={} heavy={}",
            light.batch_cap,
            heavy.batch_cap
        );
    }

    #[test]
    fn degenerate_estimates_are_rejected() {
        let r = retuner();
        assert!(r.retune(0.0, SeedStream::new(3)).is_none());
        assert!(r.retune(-5.0, SeedStream::new(3)).is_none());
        assert!(r.retune(f64::NAN, SeedStream::new(3)).is_none());
        assert!(r.retune(f64::INFINITY, SeedStream::new(3)).is_none());
    }

    #[test]
    fn retune_is_deterministic() {
        let r = retuner();
        assert_eq!(
            r.retune(12.0, SeedStream::new(4)),
            r.retune(12.0, SeedStream::new(4))
        );
    }

    #[test]
    fn precomputed_frontier_covers_its_rate_ladder() {
        let r = retuner().with_arrivals(100);
        let rates = frontier_rates(5.0, 4);
        let selector = r.precompute_frontier(&rates, SeedStream::new(6));
        assert_eq!(selector.len(), 4, "every rung in the ladder is tunable");
        for &rate in &rates {
            let entry = selector
                .select(rate, Seconds::new(f64::INFINITY), None)
                .expect("a point tuned for this rate exists");
            assert!(entry.capacity >= rate);
            assert!(entry.energy_per_item.value() > 0.0);
        }
        // Determinism: same seed, same frontier.
        let again = r.precompute_frontier(&rates, SeedStream::new(6));
        assert_eq!(selector, again);
    }

    #[test]
    fn frontier_rates_span_the_drift_envelope() {
        let rates = frontier_rates(5.0, 6);
        assert_eq!(rates.len(), 6);
        assert!((rates[0] - 2.5).abs() < 1e-9);
        assert!((rates[5] - 40.0).abs() < 1e-9);
        assert!(rates.windows(2).all(|w| w[0] < w[1]), "ladder ascends");
        assert_eq!(frontier_rates(5.0, 1), vec![5.0]);
    }

    #[test]
    fn scenario_rate_covers_both_patterns() {
        use crate::batching::ServerScenario;
        let server = Scenario::Server(ServerScenario::new(16, Seconds::new(4.0)));
        assert!((scenario_rate(&server) - 4.0).abs() < 1e-12);
        let multi = Scenario::MultiStream(MultiStreamScenario::new(7.5, 100));
        assert!((scenario_rate(&multi) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn recommendation_conversion_preserves_the_operating_point() {
        let r = retuner();
        let scenario = Scenario::MultiStream(MultiStreamScenario::new(10.0, 300));
        let seed = SeedStream::new(5);
        let rec = tune_for_scenario(&r.device, &r.space, &r.profile, &scenario, seed).unwrap();
        let config = r.recommend(&scenario, seed).unwrap();
        assert_eq!(config.batch_cap, rec.batch);
        assert_eq!(config.cores, rec.cores);
        assert_eq!(config.freq, rec.freq);
        assert_eq!(config.predicted_mean_response, Some(rec.mean_response));
        assert!((config.tuned_rate - 10.0).abs() < 1e-12);
    }
}
