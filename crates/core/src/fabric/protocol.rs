//! The fabric's wire vocabulary: what travels inside pipe frames.
//!
//! Every message is JSON inside one [frame](edgetune_runtime::frame):
//! a [`ShardTask`] goes down to the worker, [`ShardHeartbeat`]s and one
//! [`ShardResultMsg`] come back. JSON keeps the protocol debuggable
//! (`f64` round-trips exactly through serde's shortest-roundtrip
//! formatting, which is what makes worker measurements bit-identical to
//! in-process ones); the frame layer supplies integrity.

use edgetune_tuner::budget::TrialBudget;
use edgetune_tuner::space::Config;
use edgetune_util::units::Seconds;
use serde::{Deserialize, Serialize};

use crate::backend::{BackendSpec, TrialMeasurement};
use crate::engine::coordinator::ShardPlan;

/// A chaos instruction the supervisor can plant inside a task to test
/// its own crash containment. The worker executes it right after
/// measuring (and heartbeating) its first trial — mid-rung, so the
/// retry path is exercised with real partial progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ChaosAction {
    /// SIGKILL the worker process (no cleanup, no exit code ceremony).
    Kill,
    /// Panic on the worker's main thread.
    Panic,
    /// Stop heartbeating and sleep forever, forcing the heartbeat
    /// deadline to fire.
    Hang,
}

/// Identity of one rung execution on one shard — the idempotency key
/// of the remote fabric. A coordinator that reconnects after a lost
/// session resends the task under the same key; a host that already
/// executed it replays the cached [`ShardResultMsg`] instead of
/// measuring again, so reconnect-and-resend can never double-execute
/// a rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RungKey {
    /// The study's root seed.
    pub study: u64,
    /// HyperBand bracket index within the study.
    pub bracket: u32,
    /// Study-global rung counter (unique across brackets).
    pub rung: u32,
    /// Shard index within the rung.
    pub shard: usize,
}

/// The rung-level part of a [`RungKey`], carried by the supervisor into
/// `measure_rung`; each shard fills in its own index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RungScope {
    /// The study's root seed.
    pub study: u64,
    /// HyperBand bracket index within the study.
    pub bracket: u32,
    /// Study-global rung counter (unique across brackets).
    pub rung: u32,
}

impl RungScope {
    /// The full idempotency key for `shard`.
    #[must_use]
    pub fn key_for(self, shard: usize) -> RungKey {
        RungKey {
            study: self.study,
            bracket: self.bracket,
            rung: self.rung,
            shard,
        }
    }
}

/// One trial of a shard's slice, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTrial {
    /// The trial's study-global id.
    pub id: u64,
    /// Configuration to measure.
    pub config: Config,
    /// Budget the trial runs under.
    pub budget: TrialBudget,
}

/// Orchestrator → worker: everything a shard worker needs to measure
/// its slice of a rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardTask {
    /// Supervision attempt (1-based) this task is part of — diagnostic
    /// only, the measurements do not depend on it.
    pub attempt: u32,
    /// The shard's slice assignment.
    pub plan: ShardPlan,
    /// Recipe for rebuilding the backend in the worker process.
    pub spec: BackendSpec,
    /// Simulated study time the shard clock forks from.
    pub now: Seconds,
    /// The slice's trials, in order.
    pub trials: Vec<TaskTrial>,
    /// Planted fault, if the supervisor is chaos-testing itself.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chaos: Option<ChaosAction>,
    /// Idempotency key for remote dispatch. Pipe workers ignore it (a
    /// worker process lives exactly as long as its supervisor's
    /// attempt, so resends cannot reach a stale execution); shard hosts
    /// use it to replay cached results on reconnect-and-resend.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub key: Option<RungKey>,
}

/// Worker → orchestrator: liveness plus progress, sent after every
/// measured trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHeartbeat {
    /// The worker's shard index.
    pub shard: usize,
    /// Trials measured so far.
    pub completed: usize,
}

/// Worker → orchestrator: the finished slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResultMsg {
    /// The worker's shard index.
    pub shard: usize,
    /// Measurements in slice order, bit-identical to what the
    /// orchestrator's own backend would have produced.
    pub measurements: Vec<TrialMeasurement>,
}

/// Worker → orchestrator: a structured failure the worker could still
/// report before exiting (e.g. an undecodable task).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerFailure {
    /// What went wrong, for the supervisor's crash event.
    pub message: String,
}

/// Serialises a message for a frame payload.
pub(crate) fn encode<T: Serialize>(message: &T) -> Vec<u8> {
    serde_json::to_string(message)
        .expect("fabric messages are plain data and always serialise")
        .into_bytes()
}

/// Deserialises a frame payload.
pub(crate) fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("payload does not decode: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SimTrainingBackend, TrainingBackend};
    use edgetune_util::rng::SeedStream;
    use edgetune_workloads::catalog::{Workload, WorkloadId};

    fn sample_task() -> ShardTask {
        let backend = SimTrainingBackend::new(Workload::by_id(WorkloadId::Ic), SeedStream::new(5));
        let space = backend.search_space();
        let spec = backend.process_spec().expect("fault-free backend");
        let trials = (0..3)
            .map(|id| TaskTrial {
                id,
                config: space.sample(&mut SeedStream::new(6).rng(&format!("trial-{id}"))),
                budget: TrialBudget::new(2.0, 1.0),
            })
            .collect();
        ShardTask {
            attempt: 1,
            plan: ShardPlan {
                shard: 0,
                start: 0,
                len: 3,
            },
            spec,
            now: Seconds::new(40.0),
            trials,
            chaos: None,
            key: None,
        }
    }

    #[test]
    fn task_round_trips_through_json() {
        let task = sample_task();
        let decoded: ShardTask = decode(&encode(&task)).unwrap();
        assert_eq!(decoded, task);
    }

    #[test]
    fn chaos_round_trips_and_absence_is_omitted() {
        let mut task = sample_task();
        let bytes = encode(&task);
        assert!(!String::from_utf8(bytes).unwrap().contains("chaos"));
        task.chaos = Some(ChaosAction::Kill);
        let decoded: ShardTask = decode(&encode(&task)).unwrap();
        assert_eq!(decoded.chaos, Some(ChaosAction::Kill));
    }

    #[test]
    fn rung_key_round_trips_and_absence_is_omitted() {
        let mut task = sample_task();
        let bytes = encode(&task);
        assert!(!String::from_utf8(bytes).unwrap().contains("key"));
        task.key = Some(
            RungScope {
                study: 11,
                bracket: 2,
                rung: 5,
            }
            .key_for(3),
        );
        let decoded: ShardTask = decode(&encode(&task)).unwrap();
        assert_eq!(
            decoded.key,
            Some(RungKey {
                study: 11,
                bracket: 2,
                rung: 5,
                shard: 3
            })
        );
    }

    #[test]
    fn result_with_exact_floats_round_trips() {
        use edgetune_util::units::Joules;
        let msg = ShardResultMsg {
            shard: 2,
            measurements: vec![crate::backend::TrialMeasurement {
                accuracy: 0.123_456_789_012_345_67,
                runtime: Seconds::new(1.0 / 3.0),
                energy: Joules::new(std::f64::consts::PI),
                injected: None,
            }],
        };
        let decoded: ShardResultMsg = decode(&encode(&msg)).unwrap();
        assert_eq!(decoded, msg);
        assert!(decoded.measurements[0].runtime.value().to_bits() == (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn garbage_payload_is_a_clean_error() {
        assert!(decode::<ShardTask>(b"not json").is_err());
        assert!(decode::<ShardTask>(&[0xFF, 0xFE]).is_err());
    }
}
