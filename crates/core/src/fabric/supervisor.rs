//! The fabric supervisor: spawn, watch, retry, degrade.
//!
//! [`ShardFabric::measure_rung`] is the process-mode counterpart of
//! [`StudyCoordinator::measure_rung`](crate::engine::StudyCoordinator::measure_rung):
//! it partitions a rung into [`ShardPlan`]s and supervises one worker
//! process per plan on a scoped thread. Supervision speaks the `faults`
//! crate's vocabulary — a [`Supervisor`] combining the heartbeat
//! [`Deadline`] with a capped-jittered-backoff [`RetryPolicy`], and a
//! [`DegradationLadder`] whose terminal [`Fallback::InProcess`] rung
//! runs the plan sequentially on the supervising thread itself once the
//! retry budget is spent. Whatever a worker does — SIGKILL, panic,
//! hang, garbage on the pipe — `measure_rung` always returns the exact
//! measurements the in-process path would have produced.
//!
//! Telemetry (spawn/heartbeat/crash/retry/fallback/straggler instants,
//! stamped with wall-clock offsets from the fabric's epoch) accumulates
//! on the fabric's **own** tracer, never the study tracer: study trace
//! bytes must stay identical across `--shard-exec thread|process`.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use edgetune_faults::{Deadline, DegradationLadder, Fallback, RetryPolicy, Supervisor};
use edgetune_net::{client_hello, FramedTcp, Hello};
use edgetune_runtime::frame::{read_frame, write_frame, Frame, FrameKind};
use edgetune_runtime::{parallel_map_ordered, SharedClock, SimClock};
use edgetune_trace::Tracer;
use edgetune_tuner::budget::TrialBudget;
use edgetune_tuner::space::Config;
use edgetune_util::rng::SeedStream;
use edgetune_util::units::Seconds;
use serde::{Deserialize, Serialize};

use crate::backend::{BackendSpec, TrialMeasurement};
use crate::engine::coordinator::{EngineShard, ShardPlan};
use crate::fabric::protocol::{
    decode, encode, ChaosAction, RungScope, ShardHeartbeat, ShardResultMsg, ShardTask, TaskTrial,
    WorkerFailure,
};
use crate::fabric::worker::WORKER_SUBCOMMAND;
use crate::trace::{CAT_FABRIC, PROCESS_FABRIC};

/// A planted fault for chaos-testing the fabric's own containment: the
/// targeted shard executes `action` mid-rung on its **first** attempt,
/// so the run exercises crash → retry → clean completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricChaos {
    /// Shard index the fault is planted in.
    pub shard: usize,
    /// What the worker does to itself.
    pub action: ChaosAction,
}

/// Where shard attempts execute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FabricTransport {
    /// Spawn a local `__shard-worker` child process per attempt and
    /// speak frames over its stdin/stdout pipes.
    #[default]
    Process,
    /// Dial a standing `edgetune shard-host` daemon per attempt and
    /// speak the same frames over TCP. Shard `i` uses
    /// `hosts[i % hosts.len()]`.
    Remote {
        /// `host:port` addresses of the shard hosts.
        hosts: Vec<String>,
    },
}

/// How the fabric supervises its workers.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricPolicy {
    /// Retry budget (capped jittered backoff) plus the per-frame
    /// heartbeat deadline — a worker silent for longer is treated as
    /// hung, killed, and retried.
    pub supervisor: Supervisor,
    /// Fallback order; the fabric walks `Retry` under the supervisor's
    /// budget and ends at [`Fallback::InProcess`].
    pub ladder: DegradationLadder,
    /// A shard slower than `straggler_grace ×` the median sibling wall
    /// time is flagged (telemetry only — its result is still used).
    pub straggler_grace: f64,
    /// Worker executable override. `None` self-execs
    /// `std::env::current_exe()` — correct for the `edgetune` binary;
    /// tests point it at the real CLI binary or at impostors.
    pub worker_exe: Option<PathBuf>,
    /// Planted chaos, if the run is testing containment.
    pub chaos: Option<FabricChaos>,
    /// Where attempts execute: local worker processes (the default) or
    /// remote shard hosts over TCP.
    pub transport: FabricTransport,
}

impl Default for FabricPolicy {
    fn default() -> Self {
        FabricPolicy {
            supervisor: Supervisor::new(RetryPolicy {
                max_attempts: 3,
                base_delay: Seconds::new(0.05),
                multiplier: 2.0,
                max_delay: Seconds::new(0.5),
                jitter: 0.5,
            })
            .with_deadline(Deadline::new(Seconds::new(30.0))),
            ladder: DegradationLadder::new(vec![Fallback::Retry, Fallback::InProcess]),
            straggler_grace: 4.0,
            worker_exe: None,
            chaos: None,
            transport: FabricTransport::Process,
        }
    }
}

/// What the fabric did, over the whole study. All zeros when every
/// worker behaved on its first attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FabricStats {
    /// Worker processes spawned (every attempt counts).
    pub spawns: u64,
    /// Heartbeat frames received.
    pub heartbeats: u64,
    /// Worker failures observed (crash, dead pipe, error frame).
    pub crashes: u64,
    /// Heartbeat deadlines that fired (a subset of `crashes`).
    pub timeouts: u64,
    /// Respawns performed under the retry budget.
    pub retries: u64,
    /// Shards that exhausted the budget and ran in-process.
    pub fallbacks: u64,
    /// Shards flagged as stragglers.
    pub stragglers: u64,
}

/// One telemetry event, recorded off-thread and emitted onto the fabric
/// tracer in deterministic shard order afterwards. Instants mark what
/// happened; spans (`until` set) additionally cover how long an RPC leg
/// took.
struct FabricEvent {
    name: String,
    offset: Seconds,
    until: Option<Seconds>,
    args: Vec<(String, String)>,
}

impl FabricEvent {
    fn instant(name: &str, offset: Seconds, args: Vec<(String, String)>) -> Self {
        FabricEvent {
            name: name.to_string(),
            offset,
            until: None,
            args,
        }
    }

    fn span(name: &str, offset: Seconds, until: Seconds, args: Vec<(String, String)>) -> Self {
        FabricEvent {
            name: name.to_string(),
            offset,
            until: Some(until),
            args,
        }
    }
}

/// One supervised shard's outcome.
struct ShardRun {
    measurements: Vec<TrialMeasurement>,
    events: Vec<FabricEvent>,
    stats: FabricStats,
    wall: f64,
}

/// Everything a worker attempt can end as.
enum AttemptEnd {
    Done(Vec<TrialMeasurement>),
    Failed { reason: String, timed_out: bool },
}

/// The process-mode shard executor. One instance supervises every rung
/// of a study, accumulating stats and telemetry across rungs.
pub struct ShardFabric {
    policy: FabricPolicy,
    seed: SeedStream,
    tracer: Tracer,
    epoch: Instant,
    stats: FabricStats,
}

impl std::fmt::Debug for ShardFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardFabric")
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ShardFabric {
    /// Creates a fabric with `policy`; `seed` derives the deterministic
    /// backoff jitter streams.
    #[must_use]
    pub fn new(policy: FabricPolicy, seed: SeedStream) -> Self {
        ShardFabric {
            policy,
            seed,
            tracer: Tracer::new(),
            epoch: Instant::now(),
            stats: FabricStats::default(),
        }
    }

    /// Cumulative supervision counters.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// The fabric's own telemetry trace (spawn/heartbeat/crash/retry
    /// instants on wall-clock offsets) — separate from the study trace
    /// by design.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Measures one rung across worker processes, one supervised worker
    /// per [`ShardPlan`]. Infallible by construction: any shard whose
    /// workers exhaust the retry budget is measured in-process on the
    /// supervising thread, so the returned measurements are always the
    /// full rung, in input order, bit-identical to sequential
    /// execution.
    #[must_use]
    pub fn measure_rung(
        &mut self,
        scope: RungScope,
        spec: &BackendSpec,
        now: Seconds,
        trials: &[(u64, Config, TrialBudget)],
        shards: usize,
    ) -> Vec<TrialMeasurement> {
        type ShardWork<'a> = (ShardPlan, &'a [(u64, Config, TrialBudget)]);
        let plans = ShardPlan::partition(trials.len(), shards);
        let work: Vec<ShardWork> = plans
            .iter()
            .map(|plan| (*plan, plan.slice(trials)))
            .collect();
        let lanes: Vec<()> = vec![(); work.len()];
        let runs = parallel_map_ordered(&work, lanes, |(), _index, (plan, slice)| {
            self.supervise_shard(scope, *plan, spec, now, slice)
        });

        // Post-hoc straggler detection against the median sibling.
        let mut walls: Vec<f64> = runs.iter().map(|run| run.wall).collect();
        walls.sort_by(f64::total_cmp);
        let median = walls[walls.len() / 2];
        let grace = self.policy.straggler_grace.max(1.0);

        let mut measurements = Vec::with_capacity(trials.len());
        for (shard, mut run) in runs.into_iter().enumerate() {
            if run.wall > median * grace && run.wall - median > 0.05 {
                run.stats.stragglers += 1;
                run.events.push(FabricEvent::instant(
                    "straggler",
                    Seconds::new(self.epoch.elapsed().as_secs_f64()),
                    vec![
                        ("wall_s".to_string(), format!("{:.3}", run.wall)),
                        ("median_s".to_string(), format!("{median:.3}")),
                    ],
                ));
            }
            let track = self.tracer.track(PROCESS_FABRIC, &format!("shard-{shard}"));
            for event in run.events {
                match event.until {
                    Some(until) => self.tracer.span_with_args(
                        track,
                        event.name,
                        CAT_FABRIC,
                        event.offset,
                        until,
                        event.args,
                    ),
                    None => self.tracer.instant_with_args(
                        track,
                        event.name,
                        CAT_FABRIC,
                        event.offset,
                        event.args,
                    ),
                }
            }
            self.stats.spawns += run.stats.spawns;
            self.stats.heartbeats += run.stats.heartbeats;
            self.stats.crashes += run.stats.crashes;
            self.stats.timeouts += run.stats.timeouts;
            self.stats.retries += run.stats.retries;
            self.stats.fallbacks += run.stats.fallbacks;
            self.stats.stragglers += run.stats.stragglers;
            measurements.extend(run.measurements);
        }
        measurements
    }

    /// Wall-clock offset since the fabric was created, the timestamp
    /// domain of its telemetry.
    fn offset(&self) -> Seconds {
        Seconds::new(self.epoch.elapsed().as_secs_f64())
    }

    /// Supervises one shard to completion: spawn → watch → retry under
    /// the budget → in-process fallback. Runs on a pool thread; must
    /// not touch `self.tracer` or `self.stats` (events and counters are
    /// returned and merged on the calling thread).
    fn supervise_shard(
        &self,
        scope: RungScope,
        plan: ShardPlan,
        spec: &BackendSpec,
        now: Seconds,
        slice: &[(u64, Config, TrialBudget)],
    ) -> ShardRun {
        let started = Instant::now();
        let mut events = Vec::new();
        let mut stats = FabricStats::default();
        // The backoff jitter stream is supervisor-local by construction:
        // it derives from the fabric's own seed child, never from the
        // study's trial streams, so however many reconnects happen the
        // study bytes cannot move.
        let shard_seed = self.seed.child_indexed("shard", plan.shard as u64);
        let exe = self
            .policy
            .worker_exe
            .clone()
            .or_else(|| std::env::current_exe().ok());

        let mut attempt: u32 = 1;
        let mut draw: u64 = 0;
        loop {
            let chaos = self
                .policy
                .chaos
                .filter(|c| c.shard == plan.shard && attempt == 1)
                .map(|c| c.action);
            let end = match (&self.policy.transport, &exe) {
                (FabricTransport::Remote { hosts }, _) => self.run_remote_attempt(
                    hosts,
                    scope,
                    plan,
                    spec,
                    now,
                    slice,
                    attempt,
                    chaos,
                    &mut events,
                    &mut stats,
                ),
                (FabricTransport::Process, Some(exe)) => self.run_attempt(
                    exe,
                    plan,
                    spec,
                    now,
                    slice,
                    attempt,
                    chaos,
                    &mut events,
                    &mut stats,
                ),
                (FabricTransport::Process, None) => AttemptEnd::Failed {
                    reason: "no worker executable available".to_string(),
                    timed_out: false,
                },
            };
            match end {
                AttemptEnd::Done(measurements) => {
                    events.push(FabricEvent::instant(
                        "result",
                        self.offset(),
                        vec![("attempt".to_string(), attempt.to_string())],
                    ));
                    return ShardRun {
                        measurements,
                        events,
                        stats,
                        wall: started.elapsed().as_secs_f64(),
                    };
                }
                AttemptEnd::Failed { reason, timed_out } => {
                    stats.crashes += 1;
                    if timed_out {
                        stats.timeouts += 1;
                    }
                    events.push(FabricEvent::instant(
                        "crash",
                        self.offset(),
                        vec![
                            ("attempt".to_string(), attempt.to_string()),
                            ("reason".to_string(), reason),
                        ],
                    ));
                    if self.policy.supervisor.give_up(attempt) {
                        stats.fallbacks += 1;
                        events.push(FabricEvent::instant(
                            Fallback::InProcess.trace_label(),
                            self.offset(),
                            vec![("after_attempts".to_string(), attempt.to_string())],
                        ));
                        let mut shard = EngineShard::new(
                            plan,
                            spec.instantiate(),
                            SharedClock::from_clock(SimClock::at(now)),
                        );
                        return ShardRun {
                            measurements: shard.measure(slice),
                            events,
                            stats,
                            wall: started.elapsed().as_secs_f64(),
                        };
                    }
                    stats.retries += 1;
                    let delay = self.policy.supervisor.backoff(attempt, shard_seed, draw);
                    draw += 1;
                    events.push(FabricEvent::instant(
                        "retry",
                        self.offset(),
                        vec![
                            ("attempt".to_string(), attempt.to_string()),
                            ("backoff_s".to_string(), format!("{:.3}", delay.value())),
                        ],
                    ));
                    std::thread::sleep(Duration::from_secs_f64(delay.value().max(0.0)));
                    attempt += 1;
                }
            }
        }
    }

    /// One worker attempt: spawn the child, ship the task, watch the
    /// pipe under the heartbeat deadline.
    #[allow(clippy::too_many_arguments)]
    fn run_attempt(
        &self,
        exe: &PathBuf,
        plan: ShardPlan,
        spec: &BackendSpec,
        now: Seconds,
        slice: &[(u64, Config, TrialBudget)],
        attempt: u32,
        chaos: Option<ChaosAction>,
        events: &mut Vec<FabricEvent>,
        stats: &mut FabricStats,
    ) -> AttemptEnd {
        let mut child = match Command::new(exe)
            .arg(WORKER_SUBCOMMAND)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
        {
            Ok(child) => child,
            Err(e) => {
                return AttemptEnd::Failed {
                    reason: format!("spawn failed: {e}"),
                    timed_out: false,
                }
            }
        };
        stats.spawns += 1;
        events.push(FabricEvent::instant(
            "spawn",
            self.offset(),
            vec![("attempt".to_string(), attempt.to_string())],
        ));
        let mut stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");

        let task = Self::task_for(plan, spec, now, slice, attempt, chaos, None);
        if let Err(e) = write_frame(&mut stdin, FrameKind::Task, &encode(&task)) {
            return Self::fail_attempt(&mut child, format!("writing task: {e}"), false);
        }

        // Reader thread: pump frames into a channel so the supervisor
        // can wait with a timeout. The sender dropping (EOF, torn frame,
        // killed worker) surfaces as a disconnect.
        let (tx, rx) = mpsc::channel::<Frame>();
        let reader = std::thread::spawn(move || {
            let mut stdout = stdout;
            while let Ok(Some(frame)) = read_frame(&mut stdout) {
                if tx.send(frame).is_err() {
                    break;
                }
            }
        });

        let end = self.watch(&rx, slice.len(), events, stats);

        // Cleanup — identical for success and failure: close the
        // worker's stdin (its loop exits on EOF), make sure it is dead,
        // and reap it so nothing zombifies.
        drop(stdin);
        if matches!(end, AttemptEnd::Failed { .. }) {
            let _ = child.kill();
        }
        let _ = child.wait();
        let _ = reader.join();
        end
    }

    /// One remote attempt: dial the shard's host, handshake, ship the
    /// keyed task, watch the socket under the same heartbeat deadline as
    /// a pipe worker. Each RPC leg (connect+handshake, task send, result
    /// wait) is recorded as a span on the fabric tracer.
    #[allow(clippy::too_many_arguments)]
    fn run_remote_attempt(
        &self,
        hosts: &[String],
        scope: RungScope,
        plan: ShardPlan,
        spec: &BackendSpec,
        now: Seconds,
        slice: &[(u64, Config, TrialBudget)],
        attempt: u32,
        chaos: Option<ChaosAction>,
        events: &mut Vec<FabricEvent>,
        stats: &mut FabricStats,
    ) -> AttemptEnd {
        let host = &hosts[plan.shard % hosts.len()];
        let connect_timeout = self
            .policy
            .supervisor
            .deadline
            .map_or(Duration::from_secs(5), |d| {
                Duration::from_secs_f64(d.limit.value().clamp(0.1, 30.0))
            });

        let connect_from = self.offset();
        let mut conn = match FramedTcp::connect(host, connect_timeout) {
            Ok(conn) => conn,
            Err(e) => {
                return AttemptEnd::Failed {
                    reason: format!("connecting to {host}: {e}"),
                    timed_out: false,
                }
            }
        };
        let spec_json =
            serde_json::to_string(spec).expect("backend specs are plain data and always serialise");
        if let Err(e) = client_hello(&mut conn, &Hello::new(scope.study, spec_json)) {
            return AttemptEnd::Failed {
                reason: format!("handshake with {host}: {e}"),
                timed_out: false,
            };
        }
        // A session is the remote fabric's unit of spawning: each
        // accepted handshake counts like one worker process.
        stats.spawns += 1;
        events.push(FabricEvent::span(
            "rpc-connect",
            connect_from,
            self.offset(),
            vec![
                ("host".to_string(), host.clone()),
                ("attempt".to_string(), attempt.to_string()),
            ],
        ));

        let send_from = self.offset();
        let task = Self::task_for(
            plan,
            spec,
            now,
            slice,
            attempt,
            chaos,
            Some(scope.key_for(plan.shard)),
        );
        if let Err(e) = conn.send(FrameKind::Task, &encode(&task)) {
            return AttemptEnd::Failed {
                reason: format!("sending task to {host}: {e}"),
                timed_out: false,
            };
        }
        events.push(FabricEvent::span(
            "rpc-send",
            send_from,
            self.offset(),
            vec![("trials".to_string(), slice.len().to_string())],
        ));

        // Same reader-thread-plus-channel shape as the pipe transport,
        // so the watch loop (and therefore every deadline and failure
        // classification) is literally shared code.
        let receiver = match conn.split_recv() {
            Ok(receiver) => receiver,
            Err(e) => {
                return AttemptEnd::Failed {
                    reason: format!("splitting socket to {host}: {e}"),
                    timed_out: false,
                }
            }
        };
        let (tx, rx) = mpsc::channel::<Frame>();
        let reader = std::thread::spawn(move || {
            let mut receiver = receiver;
            while let Ok(Some(frame)) = receiver.recv() {
                if tx.send(frame).is_err() {
                    break;
                }
            }
        });

        let recv_from = self.offset();
        let end = self.watch(&rx, slice.len(), events, stats);
        events.push(FabricEvent::span(
            "rpc-recv",
            recv_from,
            self.offset(),
            vec![("attempt".to_string(), attempt.to_string())],
        ));

        // Shutdown unblocks the reader (both halves clone one socket),
        // then the thread can be joined without waiting on the peer.
        conn.shutdown();
        drop(conn);
        let _ = reader.join();
        end
    }

    /// Builds the wire task for one attempt.
    fn task_for(
        plan: ShardPlan,
        spec: &BackendSpec,
        now: Seconds,
        slice: &[(u64, Config, TrialBudget)],
        attempt: u32,
        chaos: Option<ChaosAction>,
        key: Option<crate::fabric::protocol::RungKey>,
    ) -> ShardTask {
        ShardTask {
            attempt,
            plan,
            spec: spec.clone(),
            now,
            trials: slice
                .iter()
                .map(|(id, config, budget)| TaskTrial {
                    id: *id,
                    config: config.clone(),
                    budget: *budget,
                })
                .collect(),
            chaos,
            key,
        }
    }

    /// Watches one attempt's frame stream under the heartbeat deadline.
    /// Transport-agnostic: the pipe and socket paths both pump frames
    /// into a channel and wait here, so a hung host and a hung worker
    /// are classified identically.
    fn watch(
        &self,
        rx: &mpsc::Receiver<Frame>,
        expected: usize,
        events: &mut Vec<FabricEvent>,
        stats: &mut FabricStats,
    ) -> AttemptEnd {
        let timeout = self
            .policy
            .supervisor
            .deadline
            .map(|d| Duration::from_secs_f64(d.limit.value().max(0.0)));
        loop {
            let received = match timeout {
                Some(timeout) => rx.recv_timeout(timeout),
                None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
            };
            match received {
                Ok(frame) => match frame.kind {
                    FrameKind::Heartbeat => {
                        if let Ok(heartbeat) = decode::<ShardHeartbeat>(&frame.payload) {
                            stats.heartbeats += 1;
                            events.push(FabricEvent::instant(
                                "heartbeat",
                                self.offset(),
                                vec![("completed".to_string(), heartbeat.completed.to_string())],
                            ));
                        }
                    }
                    FrameKind::Result => match decode::<ShardResultMsg>(&frame.payload) {
                        Ok(result) if result.measurements.len() == expected => {
                            return AttemptEnd::Done(result.measurements);
                        }
                        Ok(result) => {
                            return AttemptEnd::Failed {
                                reason: format!(
                                    "short result: {} of {} measurements",
                                    result.measurements.len(),
                                    expected
                                ),
                                timed_out: false,
                            };
                        }
                        Err(e) => {
                            return AttemptEnd::Failed {
                                reason: format!("undecodable result: {e}"),
                                timed_out: false,
                            };
                        }
                    },
                    FrameKind::Error => {
                        let reason = decode::<WorkerFailure>(&frame.payload).map_or_else(
                            |e| format!("undecodable error frame: {e}"),
                            |f| f.message,
                        );
                        return AttemptEnd::Failed {
                            reason,
                            timed_out: false,
                        };
                    }
                    FrameKind::Task | FrameKind::Hello | FrameKind::HelloAck => {
                        return AttemptEnd::Failed {
                            reason: format!("worker sent an unexpected {:?} frame", frame.kind),
                            timed_out: false,
                        };
                    }
                },
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return AttemptEnd::Failed {
                        reason: "heartbeat deadline exceeded".to_string(),
                        timed_out: true,
                    };
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return AttemptEnd::Failed {
                        reason: "worker pipe closed before result".to_string(),
                        timed_out: false,
                    };
                }
            }
        }
    }

    /// Kills and reaps a child after a pre-watch failure.
    fn fail_attempt(child: &mut Child, reason: String, timed_out: bool) -> AttemptEnd {
        let _ = child.kill();
        let _ = child.wait();
        AttemptEnd::Failed { reason, timed_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SimTrainingBackend, TrainingBackend};
    use edgetune_workloads::catalog::{Workload, WorkloadId};

    fn backend() -> SimTrainingBackend {
        SimTrainingBackend::new(Workload::by_id(WorkloadId::Ic), SeedStream::new(5))
    }

    fn sample_trials(n: u64) -> Vec<(u64, Config, TrialBudget)> {
        let space = backend().search_space();
        (0..n)
            .map(|id| {
                (
                    id,
                    space.sample(&mut SeedStream::new(6).rng(&format!("trial-{id}"))),
                    TrialBudget::new(2.0, 1.0),
                )
            })
            .collect()
    }

    fn fast_policy() -> FabricPolicy {
        FabricPolicy {
            supervisor: Supervisor::new(RetryPolicy {
                max_attempts: 2,
                base_delay: Seconds::new(0.005),
                multiplier: 1.0,
                max_delay: Seconds::new(0.01),
                jitter: 0.0,
            })
            .with_deadline(Deadline::new(Seconds::new(5.0))),
            ..FabricPolicy::default()
        }
    }

    fn expected_measurements(
        trials: &[(u64, Config, TrialBudget)],
        now: Seconds,
        shards: usize,
    ) -> Vec<TrialMeasurement> {
        let mut out = Vec::new();
        for plan in ShardPlan::partition(trials.len(), shards) {
            let mut shard = EngineShard::new(
                plan,
                backend().parallel_snapshot().unwrap(),
                SharedClock::from_clock(SimClock::at(now)),
            );
            out.extend(shard.measure(plan.slice(trials)));
        }
        out
    }

    #[test]
    fn missing_worker_exe_degrades_to_in_process_execution() {
        let trials = sample_trials(5);
        let now = Seconds::new(7.0);
        let mut policy = fast_policy();
        policy.worker_exe = Some(PathBuf::from("/nonexistent/edgetune-worker"));
        let mut fabric = ShardFabric::new(policy, SeedStream::new(9));

        let measured = fabric.measure_rung(
            RungScope::default(),
            &backend().process_spec().unwrap(),
            now,
            &trials,
            2,
        );
        assert_eq!(measured, expected_measurements(&trials, now, 2));

        let stats = fabric.stats();
        assert_eq!(stats.fallbacks, 2, "every shard fell back");
        assert_eq!(stats.crashes, 4, "two attempts per shard failed");
        assert_eq!(stats.retries, 2, "one retry per shard before giving up");
        assert_eq!(stats.spawns, 0, "spawn never succeeded");
    }

    #[test]
    fn crashing_worker_exe_degrades_to_in_process_execution() {
        // `/bin/false` exits immediately without speaking the protocol:
        // the pipe closes before a result, every attempt fails, and the
        // ladder's in-process rung still delivers exact measurements.
        if !std::path::Path::new("/bin/false").exists() {
            return;
        }
        let trials = sample_trials(4);
        let now = Seconds::ZERO;
        let mut policy = fast_policy();
        policy.worker_exe = Some(PathBuf::from("/bin/false"));
        let mut fabric = ShardFabric::new(policy, SeedStream::new(9));

        let measured = fabric.measure_rung(
            RungScope::default(),
            &backend().process_spec().unwrap(),
            now,
            &trials,
            2,
        );
        assert_eq!(measured, expected_measurements(&trials, now, 2));
        let stats = fabric.stats();
        assert_eq!(stats.fallbacks, 2);
        assert_eq!(stats.spawns, 4, "two spawn attempts per shard");
        assert!(stats.crashes >= 4);
    }

    #[test]
    fn fabric_records_telemetry_for_failed_shards() {
        let trials = sample_trials(3);
        let mut policy = fast_policy();
        policy.worker_exe = Some(PathBuf::from("/nonexistent/edgetune-worker"));
        let mut fabric = ShardFabric::new(policy, SeedStream::new(9));
        let _ = fabric.measure_rung(
            RungScope::default(),
            &backend().process_spec().unwrap(),
            Seconds::ZERO,
            &trials,
            1,
        );
        let names: Vec<String> = fabric
            .tracer()
            .snapshot()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.iter().any(|n| n == "crash"));
        assert!(names.iter().any(|n| n == "retry"));
        assert!(names.iter().any(|n| n == "in_process"));
    }

    #[test]
    fn default_policy_is_bounded_and_armed() {
        let policy = FabricPolicy::default();
        assert!(policy.supervisor.retry.max_attempts >= 2);
        assert!(policy.supervisor.deadline.is_some());
        assert_eq!(
            policy.ladder.steps(),
            &[Fallback::Retry, Fallback::InProcess]
        );
    }
}
