//! The shard host: a standing daemon that executes rungs over TCP.
//!
//! `edgetune shard-host --listen ADDR` runs a [`ShardHost`]: an accept
//! loop that gives every coordinator connection its own session. A
//! session opens with the [`edgetune_net`] handshake (protocol magic,
//! version, study seed, and the serialised [`BackendSpec`] as metadata,
//! validated up front so a bad spec is rejected with a reason before
//! any task flows), then speaks exactly the pipe worker's frame
//! vocabulary: [`ShardTask`] in, [`ShardHeartbeat`]s and one
//! [`ShardResultMsg`] per task out.
//!
//! Two disciplines distinguish a host from a pipe worker:
//!
//! - **Bounded queues.** Tasks park in a per-session [`BoundedQueue`]
//!   between the socket reader and the executor; overflow is rejected
//!   with a structured error, never buffered without bound.
//! - **Idempotent rungs.** Results are cached under their [`RungKey`]
//!   in a host-global LRU-ish cache *before* they are sent. A
//!   coordinator that lost the session mid-result reconnects and
//!   resends the same key; the host replays the cached measurements
//!   instead of executing the rung twice.
//!
//! Chaos travels in the task exactly as it does to a pipe worker:
//! `Kill` takes the whole host process down (the SIGKILL-the-daemon
//! scenario the coordinator's fallback ladder must absorb), `Panic` is
//! caught per task and surfaced as a structured error frame, `Hang`
//! sleeps the session's executor until the coordinator's heartbeat
//! deadline gives up on it.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use edgetune_net::{accept_hello, BoundedQueue, FramedTcp, NetError, QueuePushError};
use edgetune_runtime::frame::FrameKind;

use crate::backend::BackendSpec;
use crate::fabric::protocol::{decode, encode, RungKey, ShardResultMsg, ShardTask, WorkerFailure};
use crate::fabric::worker::execute_task;

/// The CLI subcommand that turns the binary into a shard host.
pub const HOST_SUBCOMMAND: &str = "shard-host";

/// Per-session work queue bound: how many tasks one coordinator session
/// may park on the host before pushes are rejected.
const SESSION_QUEUE_CAP: usize = 16;

/// Host-global result cache bound (entries). FIFO eviction — reconnect
/// resends arrive promptly, so only recent rungs need to be replayable.
const RESULT_CACHE_CAP: usize = 64;

/// Supervision counters a host accumulates across every session. All
/// loads/stores are relaxed — the counters are diagnostics, not
/// synchronisation.
#[derive(Debug, Default)]
struct HostCounters {
    sessions: AtomicU64,
    rejects: AtomicU64,
    tasks_executed: AtomicU64,
    cache_hits: AtomicU64,
    queue_rejections: AtomicU64,
}

/// A point-in-time snapshot of a host's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostStats {
    /// Sessions whose handshake was accepted.
    pub sessions: u64,
    /// Connections turned away at the handshake (wrong magic/version,
    /// undecodable hello or backend spec).
    pub rejects: u64,
    /// Tasks actually measured (cache hits excluded).
    pub tasks_executed: u64,
    /// Tasks answered from the idempotency cache.
    pub cache_hits: u64,
    /// Task pushes refused because a session queue was full.
    pub queue_rejections: u64,
}

/// The keyed result cache making reconnect-and-resend idempotent.
struct ResultCache {
    entries: HashMap<RungKey, ShardResultMsg>,
    order: VecDeque<RungKey>,
}

impl ResultCache {
    fn new() -> Self {
        ResultCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &RungKey) -> Option<ShardResultMsg> {
        self.entries.get(key).cloned()
    }

    fn insert(&mut self, key: RungKey, result: ShardResultMsg) {
        if self.entries.insert(key, result).is_none() {
            self.order.push_back(key);
            if self.order.len() > RESULT_CACHE_CAP {
                if let Some(evicted) = self.order.pop_front() {
                    self.entries.remove(&evicted);
                }
            }
        }
    }
}

/// State shared between the accept loop, every session, and the
/// owner's [`HostHandle`].
struct HostShared {
    counters: HostCounters,
    cache: Mutex<ResultCache>,
    stop: AtomicBool,
}

impl HostShared {
    fn stats(&self) -> HostStats {
        HostStats {
            sessions: self.counters.sessions.load(Ordering::Relaxed),
            rejects: self.counters.rejects.load(Ordering::Relaxed),
            tasks_executed: self.counters.tasks_executed.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            queue_rejections: self.counters.queue_rejections.load(Ordering::Relaxed),
        }
    }
}

/// A bound-but-not-yet-serving shard host.
pub struct ShardHost {
    listener: TcpListener,
    shared: Arc<HostShared>,
}

impl ShardHost {
    /// Binds the listener. `--listen 127.0.0.1:0` style addresses work:
    /// the kernel-chosen port is readable via
    /// [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(ShardHost {
            listener: TcpListener::bind(addr)?,
            shared: Arc::new(HostShared {
                counters: HostCounters::default(),
                cache: Mutex::new(ResultCache::new()),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    ///
    /// # Errors
    ///
    /// The socket's address lookup failure, verbatim.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread — the CLI entry point.
    ///
    /// # Errors
    ///
    /// Only a failure to read the bound address; individual connection
    /// errors are logged to stderr and survived.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        // The one stdout line, and a parseable one: test harnesses and
        // scripts read the kernel-assigned port from it.
        println!("shard-host listening on {addr}");
        self.accept_loop();
        Ok(())
    }

    /// Serves on a background thread and returns a handle exposing the
    /// address, live counters, and shutdown.
    ///
    /// In-process hosts are for tests and benchmarks of the *happy*
    /// path only: a task carrying `ChaosAction::Kill` takes down the
    /// whole process, which in-process means the test itself. Kill
    /// scenarios must run the host as a child process via the
    /// `shard-host` subcommand.
    ///
    /// # Errors
    ///
    /// Only a failure to read the bound address.
    pub fn spawn(self) -> io::Result<HostHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.accept_loop());
        Ok(HostHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }

    fn accept_loop(self) {
        for accepted in self.listener.incoming() {
            if self.shared.stop.load(Ordering::Relaxed) {
                return;
            }
            match accepted {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || serve_session(stream, &shared));
                }
                Err(e) => eprintln!("shard-host: accept failed: {e}"),
            }
        }
    }
}

/// A running background host (see [`ShardHost::spawn`]).
pub struct HostHandle {
    addr: SocketAddr,
    shared: Arc<HostShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HostHandle {
    /// The address coordinators should dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    #[must_use]
    pub fn stats(&self) -> HostStats {
        self.shared.stats()
    }

    /// Stops the accept loop and joins it. Sessions already in flight
    /// drain on their own threads.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // The loop only observes the flag on its next accept; a throwaway
        // connection wakes it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for HostHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one coordinator session to completion: handshake, validate
/// the spec, then pump tasks reader → queue → executor until the socket
/// closes.
fn serve_session(stream: TcpStream, shared: &Arc<HostShared>) {
    let conn = match FramedTcp::from_stream(stream) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("shard-host: session setup failed: {e}");
            return;
        }
    };
    let mut conn = conn;
    let hello = match accept_hello(&mut conn) {
        Ok(hello) => hello,
        Err(NetError::Rejected(reason)) => {
            shared.counters.rejects.fetch_add(1, Ordering::Relaxed);
            eprintln!("shard-host: rejected a peer: {reason}");
            return;
        }
        Err(e) => {
            eprintln!("shard-host: handshake failed: {e}");
            return;
        }
    };
    // The hello's metadata must be a decodable backend spec: a
    // coordinator shipping a vocabulary this host cannot rebuild is
    // turned away with a reason now, not a decode failure mid-rung.
    if let Err(e) = serde_json::from_str::<BackendSpec>(&hello.meta) {
        shared.counters.rejects.fetch_add(1, Ordering::Relaxed);
        let failure = WorkerFailure {
            message: format!("undecodable backend spec in hello: {e}"),
        };
        let _ = conn.send(FrameKind::Error, &encode(&failure));
        conn.shutdown();
        return;
    }
    shared.counters.sessions.fetch_add(1, Ordering::Relaxed);
    eprintln!(
        "shard-host: session open (study seed {}, peer {})",
        hello.study_seed,
        conn.peer_addr()
            .map_or_else(|_| "unknown".to_string(), |a| a.to_string())
    );

    let queue = Arc::new(BoundedQueue::<ShardTask>::new(SESSION_QUEUE_CAP));
    // The executor writes heartbeats and results; the reader writes
    // overflow errors. Framed writes must not tear, hence the mutex
    // around the send half.
    let writer = Arc::new(Mutex::new(conn));
    let executor = {
        let queue = Arc::clone(&queue);
        let writer = Arc::clone(&writer);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || execute_session_tasks(&queue, &writer, &shared))
    };

    let mut receiver = match writer.lock().expect("writer mutex poisoned").split_recv() {
        Ok(receiver) => receiver,
        Err(e) => {
            eprintln!("shard-host: splitting session socket failed: {e}");
            queue.close();
            let _ = executor.join();
            return;
        }
    };
    loop {
        match receiver.recv() {
            Ok(Some(frame)) if frame.kind == FrameKind::Task => {
                let task: ShardTask = match decode(&frame.payload) {
                    Ok(task) => task,
                    Err(e) => {
                        send_error(&writer, format!("undecodable task: {e}"));
                        break;
                    }
                };
                match queue.push(task) {
                    Ok(()) => {}
                    Err(QueuePushError::Full) => {
                        shared
                            .counters
                            .queue_rejections
                            .fetch_add(1, Ordering::Relaxed);
                        send_error(
                            &writer,
                            format!("work queue full ({SESSION_QUEUE_CAP} tasks queued)"),
                        );
                        break;
                    }
                    Err(QueuePushError::Closed) => break,
                }
            }
            Ok(Some(frame)) => {
                send_error(&writer, format!("unexpected {:?} frame", frame.kind));
                break;
            }
            // Clean close, torn frame, reset — all end the session; the
            // executor drains what was queued and exits.
            Ok(None) | Err(_) => break,
        }
    }
    queue.close();
    let _ = executor.join();
    writer.lock().expect("writer mutex poisoned").shutdown();
}

/// The session executor: pops tasks, answers cached keys, measures the
/// rest, caches keyed results before sending them.
fn execute_session_tasks(
    queue: &BoundedQueue<ShardTask>,
    writer: &Arc<Mutex<FramedTcp>>,
    shared: &Arc<HostShared>,
) {
    while let Some(task) = queue.pop() {
        if let Some(key) = task.key {
            let cached = shared.cache.lock().expect("cache mutex poisoned").get(&key);
            if let Some(result) = cached {
                shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "shard-host: replaying cached rung (study {}, bracket {}, rung {}, shard {})",
                    key.study, key.bracket, key.rung, key.shard
                );
                if send_frame(writer, FrameKind::Result, &encode(&result)).is_err() {
                    return;
                }
                continue;
            }
        }
        // A panicking task (chaos or a genuine bug) must not take the
        // session down silently: catch it, report it as a structured
        // error, and end the session so the coordinator retries
        // immediately instead of waiting out its deadline.
        let measured = catch_unwind(AssertUnwindSafe(|| {
            execute_task(&task, |heartbeat| {
                send_frame(writer, FrameKind::Heartbeat, &encode(&heartbeat))
            })
        }));
        let result = match measured {
            Ok(Ok(result)) => result,
            Ok(Err(_dead_socket)) => return,
            Err(panic) => {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".to_string());
                send_error(writer, format!("task execution panicked: {what}"));
                return;
            }
        };
        shared
            .counters
            .tasks_executed
            .fetch_add(1, Ordering::Relaxed);
        // Cache first, send second: if the send dies the rung is still
        // replayable for the reconnect that follows.
        if let Some(key) = task.key {
            shared
                .cache
                .lock()
                .expect("cache mutex poisoned")
                .insert(key, result.clone());
        }
        if send_frame(writer, FrameKind::Result, &encode(&result)).is_err() {
            return;
        }
    }
}

fn send_frame(
    writer: &Arc<Mutex<FramedTcp>>,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), String> {
    writer
        .lock()
        .expect("writer mutex poisoned")
        .send(kind, payload)
        .map_err(|e| format!("sending {kind:?} frame: {e}"))
}

fn send_error(writer: &Arc<Mutex<FramedTcp>>, message: String) {
    let failure = WorkerFailure { message };
    let _ = send_frame(writer, FrameKind::Error, &encode(&failure));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SimTrainingBackend, TrainingBackend};
    use crate::engine::coordinator::ShardPlan;
    use crate::fabric::protocol::{RungScope, TaskTrial};
    use edgetune_net::{client_hello, Hello};
    use edgetune_tuner::budget::TrialBudget;
    use edgetune_tuner::space::Config;
    use edgetune_util::rng::SeedStream;
    use edgetune_util::units::Seconds;
    use edgetune_workloads::catalog::{Workload, WorkloadId};

    fn backend() -> SimTrainingBackend {
        SimTrainingBackend::new(Workload::by_id(WorkloadId::Ic), SeedStream::new(5))
    }

    fn sample_trials(n: u64) -> Vec<(u64, Config, TrialBudget)> {
        let space = backend().search_space();
        (0..n)
            .map(|id| {
                (
                    id,
                    space.sample(&mut SeedStream::new(6).rng(&format!("trial-{id}"))),
                    TrialBudget::new(2.0, 1.0),
                )
            })
            .collect()
    }

    fn task_with_key(trials: &[(u64, Config, TrialBudget)], key: Option<RungKey>) -> ShardTask {
        ShardTask {
            attempt: 1,
            plan: ShardPlan {
                shard: 0,
                start: 0,
                len: trials.len(),
            },
            spec: backend().process_spec().unwrap(),
            now: Seconds::ZERO,
            trials: trials
                .iter()
                .map(|(id, config, budget)| TaskTrial {
                    id: *id,
                    config: config.clone(),
                    budget: *budget,
                })
                .collect(),
            chaos: None,
            key,
        }
    }

    fn connect(handle: &HostHandle) -> FramedTcp {
        let mut conn =
            FramedTcp::connect(&handle.addr().to_string(), Duration::from_secs(5)).unwrap();
        let spec = serde_json::to_string(&backend().process_spec().unwrap()).unwrap();
        client_hello(&mut conn, &Hello::new(11, spec)).unwrap();
        conn
    }

    fn recv_result(conn: &mut FramedTcp) -> ShardResultMsg {
        loop {
            let frame = conn.recv().unwrap().expect("session stays open");
            match frame.kind {
                FrameKind::Heartbeat => continue,
                FrameKind::Result => return decode(&frame.payload).unwrap(),
                other => panic!("unexpected {other:?} frame"),
            }
        }
    }

    #[test]
    fn host_executes_a_task_and_streams_heartbeats() {
        let mut handle = ShardHost::bind("127.0.0.1:0").unwrap().spawn().unwrap();
        let trials = sample_trials(3);
        let mut conn = connect(&handle);
        conn.send(FrameKind::Task, &encode(&task_with_key(&trials, None)))
            .unwrap();
        let result = recv_result(&mut conn);
        assert_eq!(result.measurements.len(), 3);
        conn.shutdown();
        handle.shutdown();
        let stats = handle.stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.tasks_executed, 1);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn resending_a_keyed_task_replays_the_cached_result() {
        let mut handle = ShardHost::bind("127.0.0.1:0").unwrap().spawn().unwrap();
        let trials = sample_trials(2);
        let key = RungScope {
            study: 11,
            bracket: 0,
            rung: 1,
        }
        .key_for(0);
        let task = task_with_key(&trials, Some(key));

        let mut first = connect(&handle);
        first.send(FrameKind::Task, &encode(&task)).unwrap();
        let first_result = recv_result(&mut first);
        // Simulate a lost session: drop without a clean goodbye, then
        // reconnect and resend the same keyed task.
        first.shutdown();
        drop(first);

        let mut second = connect(&handle);
        second.send(FrameKind::Task, &encode(&task)).unwrap();
        let second_result = recv_result(&mut second);
        assert_eq!(first_result, second_result);

        second.shutdown();
        handle.shutdown();
        let stats = handle.stats();
        assert_eq!(stats.tasks_executed, 1, "the rung must execute once");
        assert_eq!(stats.cache_hits, 1, "the resend must be a replay");
    }

    #[test]
    fn wrong_version_peer_is_rejected_and_counted() {
        let mut handle = ShardHost::bind("127.0.0.1:0").unwrap().spawn().unwrap();
        let mut conn =
            FramedTcp::connect(&handle.addr().to_string(), Duration::from_secs(5)).unwrap();
        let mut hello = Hello::new(11, "{}");
        hello.version += 1;
        let err = client_hello(&mut conn, &hello).unwrap_err();
        assert!(matches!(err, NetError::Rejected(r) if r.contains("version")));
        handle.shutdown();
        assert_eq!(handle.stats().rejects, 1);
        assert_eq!(handle.stats().sessions, 0);
    }

    #[test]
    fn undecodable_spec_in_hello_is_rejected_with_a_reason() {
        let mut handle = ShardHost::bind("127.0.0.1:0").unwrap().spawn().unwrap();
        let mut conn =
            FramedTcp::connect(&handle.addr().to_string(), Duration::from_secs(5)).unwrap();
        client_hello(&mut conn, &Hello::new(11, "not a backend spec")).unwrap();
        let frame = conn.recv().unwrap().expect("an error frame");
        assert_eq!(frame.kind, FrameKind::Error);
        let failure: WorkerFailure = decode(&frame.payload).unwrap();
        assert!(failure.message.contains("backend spec"));
        handle.shutdown();
        assert_eq!(handle.stats().rejects, 1);
    }

    #[test]
    fn result_cache_evicts_oldest_beyond_capacity() {
        let mut cache = ResultCache::new();
        let scope = RungScope {
            study: 1,
            bracket: 0,
            rung: 0,
        };
        for shard in 0..=RESULT_CACHE_CAP {
            cache.insert(
                scope.key_for(shard),
                ShardResultMsg {
                    shard,
                    measurements: Vec::new(),
                },
            );
        }
        assert!(cache.get(&scope.key_for(0)).is_none(), "oldest evicted");
        assert!(cache.get(&scope.key_for(RESULT_CACHE_CAP)).is_some());
        assert_eq!(cache.entries.len(), RESULT_CACHE_CAP);
    }
}
