//! The shard fabric: [`EngineShard`](crate::engine::EngineShard)
//! execution in supervised child OS processes or on remote shard hosts
//! over TCP.
//!
//! Steps one and two of the ROADMAP's remote study fabric. Where the thread-based
//! [`StudyCoordinator`](crate::engine::StudyCoordinator) runs each
//! [`ShardPlan`](crate::engine::ShardPlan) on a scoped thread of the
//! orchestrator process, the fabric spawns a **shard worker** — the
//! `edgetune` binary re-executing itself with the hidden
//! `__shard-worker` subcommand — per plan, ships the plan plus a
//! [`BackendSpec`](crate::backend::BackendSpec) backend snapshot over
//! the child's stdin as length-prefixed, CRC-checksummed
//! [frames](edgetune_runtime::frame), and streams heartbeats and the
//! measured [`TrialMeasurement`](crate::backend::TrialMeasurement)s back
//! over its stdout.
//!
//! The payoff is crash containment: a worker that is SIGKILL'd, panics,
//! or hangs can no longer take the orchestrator or a sibling shard with
//! it. The [`ShardFabric`] supervisor wraps every worker in the `faults`
//! crate's vocabulary — a heartbeat [`Deadline`](edgetune_faults::Deadline),
//! a capped-jittered-backoff [`RetryPolicy`](edgetune_faults::RetryPolicy)
//! on crash or timeout, post-hoc straggler detection, and a
//! [`DegradationLadder`](edgetune_faults::DegradationLadder) whose
//! terminal `in_process` rung runs the plan sequentially on the
//! supervisor's own thread once the retry budget is spent. A study
//! therefore *cannot* fail because process isolation failed.
//!
//! The invariant the whole module is built around: a worker rebuilt from
//! a `BackendSpec` measures bit-identically to the orchestrator's own
//! backend (JSON `f64` round-trips exactly via shortest-roundtrip
//! formatting), and measurements are replayed through the same
//! sequential phase-B accounting path as every other execution mode —
//! so report and trace bytes are identical across
//! `--shard-exec thread|process`, across shard counts, and across a
//! mid-rung kill followed by a successful retry. Fabric telemetry
//! (spawn/heartbeat/crash/retry instants) goes to a **separate** tracer
//! for exactly that reason.
//!
//! The socket transport generalises the same frames to standing
//! [`ShardHost`] daemons (`edgetune shard-host --listen ADDR`): the
//! coordinator dials one host per shard, opens a versioned session with
//! an [`edgetune_net`] handshake, and ships the identical task
//! vocabulary — plus a [`RungKey`] idempotency key so a host replays a
//! cached result instead of double-executing when a reconnect resends a
//! rung it already finished. The same invariant holds across
//! `--shard-exec thread|process|remote`, including a SIGKILLed shard
//! host mid-rung (retry budget spends, the ladder degrades to
//! in-process execution, bytes stay identical).

pub mod host;
pub mod protocol;
pub mod supervisor;
pub mod worker;

pub use host::{HostHandle, HostStats, ShardHost, HOST_SUBCOMMAND};
pub use protocol::{
    ChaosAction, RungKey, RungScope, ShardHeartbeat, ShardResultMsg, ShardTask, TaskTrial,
};
pub use supervisor::{FabricChaos, FabricPolicy, FabricStats, FabricTransport, ShardFabric};
pub use worker::{serve, worker_main, WORKER_SUBCOMMAND};
