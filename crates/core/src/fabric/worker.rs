//! The shard worker: what runs inside `edgetune __shard-worker`.
//!
//! A worker is a tiny frame-driven loop: read a [`ShardTask`] from
//! stdin, rebuild the backend from its [`BackendSpec`], measure the
//! slice trial by trial on an [`EngineShard`] (heartbeating after every
//! trial), send the [`ShardResultMsg`], and wait for the next task or a
//! clean EOF. The loop is generic over its streams so the protocol is
//! unit-testable in-process without spawning anything.

use std::io::{Read, Write};

use edgetune_runtime::frame::{read_frame, write_frame, FrameKind};
use edgetune_runtime::{SharedClock, SimClock};

use crate::engine::coordinator::EngineShard;
use crate::fabric::protocol::{
    decode, encode, ChaosAction, ShardHeartbeat, ShardResultMsg, ShardTask, WorkerFailure,
};

/// The hidden CLI subcommand that turns the binary into a shard worker.
pub const WORKER_SUBCOMMAND: &str = "__shard-worker";

/// Executes a planted chaos instruction. Never returns for `Kill` and
/// `Panic`; `Hang` sleeps far past any reasonable heartbeat deadline.
fn execute_chaos(action: ChaosAction) {
    match action {
        ChaosAction::Kill => {
            // A genuine SIGKILL — no unwinding, no atexit, exactly the
            // failure mode the supervisor must contain. `abort` is the
            // fallback if no `kill` utility exists.
            let _ = std::process::Command::new("kill")
                .arg("-9")
                .arg(std::process::id().to_string())
                .status();
            std::thread::sleep(std::time::Duration::from_millis(200));
            std::process::abort();
        }
        ChaosAction::Panic => panic!("fabric chaos: injected worker panic"),
        ChaosAction::Hang => std::thread::sleep(std::time::Duration::from_secs(3600)),
    }
}

/// Measures one task's slice trial by trial, calling `heartbeat` after
/// every trial and firing any planted chaos mid-slice. This is the one
/// measurement discipline of every fabric transport — the pipe worker
/// and the shard-host executor both run it, so a rung measures
/// identically whether the task arrived over stdin or a socket.
///
/// # Errors
///
/// Propagates the first heartbeat-delivery failure (a dead pipe or
/// socket), so a detached supervisor stops the slice early.
pub(crate) fn execute_task(
    task: &ShardTask,
    mut heartbeat: impl FnMut(ShardHeartbeat) -> Result<(), String>,
) -> Result<ShardResultMsg, String> {
    let mut shard = EngineShard::new(
        task.plan,
        task.spec.instantiate(),
        SharedClock::from_clock(SimClock::at(task.now)),
    );
    let mut measurements = Vec::with_capacity(task.trials.len());
    for (index, trial) in task.trials.iter().enumerate() {
        measurements.extend(shard.measure(&[(trial.id, trial.config.clone(), trial.budget)]));
        heartbeat(ShardHeartbeat {
            shard: task.plan.shard,
            completed: index + 1,
        })?;
        if index == 0 {
            if let Some(action) = task.chaos {
                execute_chaos(action);
            }
        }
    }
    if task.trials.is_empty() {
        // Chaos still fires on an empty slice, so kill tests do not
        // silently depend on the partition shape.
        if let Some(action) = task.chaos {
            execute_chaos(action);
        }
    }
    Ok(ShardResultMsg {
        shard: task.plan.shard,
        measurements,
    })
}

/// Runs the worker loop over arbitrary streams until EOF.
///
/// # Errors
///
/// Returns a description of the first protocol or I/O failure. Before
/// failing on an undecodable task the worker attempts to send a
/// structured [`WorkerFailure`] frame so the supervisor sees a reason,
/// not just a dead pipe.
pub fn serve<R: Read, W: Write>(mut reader: R, mut writer: W) -> Result<(), String> {
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()),
            Err(e) => return Err(format!("reading task frame: {e}")),
        };
        if frame.kind != FrameKind::Task {
            return Err(format!("expected a task frame, got {:?}", frame.kind));
        }
        let task: ShardTask = match decode(&frame.payload) {
            Ok(task) => task,
            Err(e) => {
                let failure = WorkerFailure {
                    message: format!("undecodable task: {e}"),
                };
                let _ = write_frame(&mut writer, FrameKind::Error, &encode(&failure));
                return Err(format!("undecodable task: {e}"));
            }
        };
        let result = execute_task(&task, |heartbeat| {
            write_frame(&mut writer, FrameKind::Heartbeat, &encode(&heartbeat))
                .map_err(|e| format!("sending heartbeat: {e}"))
        })?;
        write_frame(&mut writer, FrameKind::Result, &encode(&result))
            .map_err(|e| format!("sending result: {e}"))?;
    }
}

/// Entry point for the hidden `__shard-worker` subcommand: serve
/// stdin/stdout until EOF, then exit. Exit code 0 is a clean shutdown,
/// 1 a protocol failure (the supervisor treats both the code and a dead
/// pipe as a crash when no result arrived).
pub fn worker_main() -> ! {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve(stdin.lock(), stdout.lock()) {
        Ok(()) => std::process::exit(0),
        Err(message) => {
            eprintln!("shard worker: {message}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SimTrainingBackend, TrainingBackend};
    use crate::engine::coordinator::ShardPlan;
    use crate::fabric::protocol::TaskTrial;
    use edgetune_runtime::frame::encode_frame;
    use edgetune_tuner::budget::TrialBudget;
    use edgetune_tuner::space::Config;
    use edgetune_util::rng::SeedStream;
    use edgetune_util::units::Seconds;
    use edgetune_workloads::catalog::{Workload, WorkloadId};
    use std::io::Cursor;

    fn backend() -> SimTrainingBackend {
        SimTrainingBackend::new(Workload::by_id(WorkloadId::Ic), SeedStream::new(5))
    }

    fn sample_trials(n: u64) -> Vec<(u64, Config, TrialBudget)> {
        let space = backend().search_space();
        (0..n)
            .map(|id| {
                (
                    id,
                    space.sample(&mut SeedStream::new(6).rng(&format!("trial-{id}"))),
                    TrialBudget::new(2.0, 1.0),
                )
            })
            .collect()
    }

    fn task_for(trials: &[(u64, Config, TrialBudget)], now: Seconds) -> ShardTask {
        ShardTask {
            attempt: 1,
            plan: ShardPlan {
                shard: 0,
                start: 0,
                len: trials.len(),
            },
            spec: backend().process_spec().unwrap(),
            now,
            trials: trials
                .iter()
                .map(|(id, config, budget)| TaskTrial {
                    id: *id,
                    config: config.clone(),
                    budget: *budget,
                })
                .collect(),
            chaos: None,
            key: None,
        }
    }

    fn run_worker(input: Vec<u8>) -> (Result<(), String>, Vec<u8>) {
        let mut output = Vec::new();
        let result = serve(Cursor::new(input), &mut output);
        (result, output)
    }

    #[test]
    fn worker_measures_exactly_what_the_primary_backend_would() {
        let trials = sample_trials(4);
        let now = Seconds::new(123.0);
        let task = task_for(&trials, now);
        let input = encode_frame(FrameKind::Task, &encode(&task));

        let (result, output) = run_worker(input);
        result.unwrap();

        let mut frames = Vec::new();
        let mut cursor = Cursor::new(&output);
        while let Some(frame) = read_frame(&mut cursor).unwrap() {
            frames.push(frame);
        }
        // One heartbeat per trial, then the result.
        assert_eq!(frames.len(), trials.len() + 1);
        for (i, frame) in frames[..trials.len()].iter().enumerate() {
            assert_eq!(frame.kind, FrameKind::Heartbeat);
            let hb: ShardHeartbeat = decode(&frame.payload).unwrap();
            assert_eq!(hb.completed, i + 1);
        }
        assert_eq!(frames[trials.len()].kind, FrameKind::Result);
        let result: ShardResultMsg = decode(&frames[trials.len()].payload).unwrap();

        let mut shard = EngineShard::new(
            task.plan,
            backend().parallel_snapshot().unwrap(),
            SharedClock::from_clock(SimClock::at(now)),
        );
        let expected = shard.measure(&trials);
        assert_eq!(result.measurements, expected);
    }

    #[test]
    fn worker_serves_multiple_tasks_until_eof() {
        let trials = sample_trials(2);
        let mut input = Vec::new();
        for _ in 0..3 {
            input.extend(encode_frame(
                FrameKind::Task,
                &encode(&task_for(&trials, Seconds::ZERO)),
            ));
        }
        let (result, output) = run_worker(input);
        result.unwrap();
        let mut cursor = Cursor::new(&output);
        let mut results = 0;
        while let Some(frame) = read_frame(&mut cursor).unwrap() {
            if frame.kind == FrameKind::Result {
                results += 1;
            }
        }
        assert_eq!(results, 3);
    }

    #[test]
    fn undecodable_task_reports_a_structured_failure() {
        let input = encode_frame(FrameKind::Task, b"{\"not\": \"a task\"}");
        let (result, output) = run_worker(input);
        assert!(result.is_err());
        let frame = read_frame(&mut Cursor::new(&output)).unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Error);
        let failure: WorkerFailure = decode(&frame.payload).unwrap();
        assert!(failure.message.contains("undecodable task"));
    }

    #[test]
    fn unexpected_frame_kind_is_an_error() {
        let input = encode_frame(FrameKind::Heartbeat, b"{}");
        let (result, _) = run_worker(input);
        assert!(result.unwrap_err().contains("expected a task frame"));
    }

    #[test]
    fn empty_input_is_a_clean_shutdown() {
        let (result, output) = run_worker(Vec::new());
        result.unwrap();
        assert!(output.is_empty());
    }
}
