//! Configuration of an EdgeTune run.
//!
//! [`EdgeTuneConfig`] is the single builder-style knob surface of the
//! whole middleware: workload and edge device, objectives, budget and
//! scheduler shape, sampler choice, the ablation switches (cache,
//! pipelining), parallelism (real worker threads vs. simulated trial
//! slots), fault-injection and fault-tolerance policies, and
//! checkpoint/resume. The [`Engine`](crate::engine::Engine) consumes a
//! finished configuration; nothing here executes anything.

use std::path::PathBuf;
use std::time::Duration;

use edgetune_device::spec::DeviceSpec;
use edgetune_faults::{DegradationLadder, FaultPlan, Supervisor};
use edgetune_tuner::budget::BudgetPolicy;
use edgetune_tuner::pareto::ParetoTpeSampler;
use edgetune_tuner::sampler::{GridSampler, RandomSampler, Sampler, TpeSampler, WarmStartSampler};
use edgetune_tuner::scheduler::SchedulerConfig;
use edgetune_tuner::space::Config;
use edgetune_tuner::Metric;
use edgetune_util::rng::SeedStream;
use edgetune_workloads::catalog::WorkloadId;

use crate::fabric::FabricPolicy;

/// Where engine shards run when `study_shards > 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardExec {
    /// Scoped threads of the orchestrator process — the fastest path,
    /// no isolation.
    #[default]
    Thread,
    /// Supervised child worker processes
    /// ([`ShardFabric`](crate::fabric::ShardFabric)): a crashing
    /// backend kills one worker, never the study. Report and trace
    /// bytes are identical to thread mode.
    Process,
    /// Standing `edgetune shard-host` daemons dialed over TCP
    /// (requires [`shard_hosts`](EdgeTuneConfig::shard_hosts)). Same
    /// supervision, same bytes; a dead host degrades through retries to
    /// in-process execution.
    Remote,
}

impl ShardExec {
    /// Parses the CLI spelling (`thread` | `process` | `remote`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "thread" | "threads" => Ok(ShardExec::Thread),
            "process" | "processes" => Ok(ShardExec::Process),
            "remote" => Ok(ShardExec::Remote),
            other => Err(format!(
                "unknown shard executor '{other}' (expected 'thread', 'process' or 'remote')"
            )),
        }
    }
}

/// Which search strategy the Model Tuning Server uses (§4.2; the user
/// can pick per server, the default being BOHB = TPE + HyperBand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Exhaustive grid with the given per-dimension resolution.
    Grid(usize),
    /// Uniform random search.
    Random,
    /// Model-based TPE (BOHB's sampler).
    Tpe,
}

/// Complete configuration of an EdgeTune run.
#[derive(Debug, Clone)]
pub struct EdgeTuneConfig {
    /// The workload to tune (used by the default simulated backend).
    pub workload: WorkloadId,
    /// The edge device inference is tuned for.
    pub edge_device: DeviceSpec,
    /// Metric of the Model Tuning Server's ratio objective.
    pub train_metric: Metric,
    /// Metric of the Inference Tuning Server's objective.
    pub inference_metric: Metric,
    /// Budget policy for training trials.
    pub budget: BudgetPolicy,
    /// Scheduler shape (cohort size, η, rungs).
    pub scheduler: SchedulerConfig,
    /// Search strategy of the model server.
    pub sampler: SamplerKind,
    /// Use HyperBand brackets (BOHB-style) instead of one
    /// successive-halving bracket.
    pub hyperband: bool,
    /// Trials below this accuracy are infeasible, if set.
    pub accuracy_floor: Option<f64>,
    /// Load/save the historical inference cache at this path, if set.
    pub cache_path: Option<PathBuf>,
    /// Consult the historical cache (§3.4); disabling it is an ablation
    /// that re-tunes every architecture from scratch.
    pub historical_cache: bool,
    /// Pipeline inference tuning with training (Algorithm 1); disabling
    /// it is an ablation that runs every sweep on the critical path.
    pub pipelining: bool,
    /// Concurrent sweep workers inside the inference server.
    pub inference_workers: usize,
    /// Real worker threads measuring a rung's trials concurrently. This
    /// is pure wall-clock engineering: results are merged back in input
    /// order and every simulated number (makespan, energy, history,
    /// report JSON) is byte-identical whatever the thread count. Backends
    /// opt in via
    /// [`TrainingBackend::parallel_snapshot`](crate::backend::TrainingBackend::parallel_snapshot);
    /// rungs fall back to sequential execution otherwise.
    pub trial_workers: usize,
    /// Concurrent *simulated* training-trial slots on the model server
    /// (§3.1: "the model server can parallelize its tuning process").
    /// Trials of one scheduler rung are independent; with `n` slots the
    /// simulated makespan of a rung is its list-scheduled parallel
    /// length. Unlike [`trial_workers`](EdgeTuneConfig::trial_workers),
    /// this knob *changes* the reported makespan — it models a bigger
    /// tuning cluster, not a faster simulation.
    pub trial_slots: usize,
    /// Engine shards the study's rungs are partitioned across. Each
    /// shard measures its contiguous slice of every rung on its own
    /// backend snapshot and forked clock
    /// ([`StudyCoordinator`](crate::engine::StudyCoordinator)), and the
    /// per-shard histories are merged back deterministically — like
    /// [`trial_workers`](EdgeTuneConfig::trial_workers) this is pure
    /// wall-clock engineering and never changes a reported byte. With
    /// checkpointing enabled, each shard also persists its own
    /// checkpoint shard file under a shard manifest.
    pub study_shards: usize,
    /// How engine shards execute: on scoped threads of this process
    /// (the default) or in supervised child worker processes
    /// ([`ShardFabric`](crate::fabric::ShardFabric)). Process mode buys
    /// crash containment — a dying backend kills one worker, not the
    /// study — and never changes a reported byte. Ignored unless
    /// `study_shards > 1`; backends without a
    /// [`process_spec`](crate::backend::TrainingBackend::process_spec)
    /// quietly fall back to thread execution.
    pub shard_exec: ShardExec,
    /// Supervision policy of the process shard fabric: retry budget,
    /// heartbeat deadline, straggler grace, worker-executable override,
    /// and planted chaos. Only consulted in
    /// [`ShardExec::Process`] and [`ShardExec::Remote`] modes.
    pub fabric: FabricPolicy,
    /// `host:port` addresses of standing shard hosts, for
    /// [`ShardExec::Remote`]. Shard `i` dials
    /// `shard_hosts[i % shard_hosts.len()]`.
    pub shard_hosts: Vec<String>,
    /// Write the fabric's supervision telemetry (spawn/heartbeat/crash/
    /// retry instants, wall-clock offsets) as Chrome trace-event JSON
    /// here after the run, if set. Kept separate from
    /// [`trace_path`](EdgeTuneConfig::trace_path) because the study
    /// trace must stay byte-identical across execution modes.
    pub fabric_trace_path: Option<PathBuf>,
    /// Root randomness seed.
    pub seed: u64,
    /// Fault-injection plan for chaos runs. [`FaultPlan::none`] (the
    /// default) injects nothing and leaves every code path and report
    /// byte-identical to a fault-free build.
    pub fault_plan: FaultPlan,
    /// Retry/backoff/deadline policy the fault-tolerance layer applies to
    /// crashed trials and lost inference replies.
    pub supervisor: Supervisor,
    /// Ordered fallbacks when an inference reply is lost.
    pub degradation: DegradationLadder,
    /// Real-time cap on waiting for one inference reply before the
    /// degradation ladder engages.
    pub reply_timeout: Duration,
    /// Write a resumable study checkpoint here after every completed
    /// rung, if set.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from `checkpoint_path` when it exists: completed trials are
    /// replayed from the checkpoint instead of re-executed, and the
    /// fault-injection cursors are restored so the continuation makes the
    /// same random decisions the uninterrupted run would have made.
    pub resume: bool,
    /// Stop tuning after this many completed rungs, if set — the
    /// controlled "interruption" used to exercise checkpoint/resume.
    pub halt_after_rungs: Option<u32>,
    /// Write the study's Chrome trace-event JSON here after the run, if
    /// set. The trace is a reported artifact: byte-identical for a
    /// fixed seed whatever the `trial_workers` / `study_shards` counts,
    /// and recording it never changes a report byte.
    pub trace_path: Option<PathBuf>,
    /// Configurations replayed by the sampler before its own strategy
    /// engages — the cross-study transfer half of a warm start. Empty
    /// (the default) leaves the sampler stream byte-identical to a
    /// build without this knob.
    pub warm_start: Vec<Config>,
    /// Pareto mode: when set, every trial carries an objective vector
    /// (accuracy, train cost, inference cost), rung promotion runs on
    /// dominance-front membership, TPE upgrades to the multi-objective
    /// hypervolume acquisition, and the report gains a `frontier`
    /// section with up to this many non-dominated configurations.
    /// `None` (the default) is scalar mode, byte-identical to a build
    /// without this knob.
    pub pareto: Option<usize>,
}

impl EdgeTuneConfig {
    /// The paper's default setup for a workload: BOHB (TPE + HyperBand),
    /// multi-budget, runtime objectives, Raspberry Pi 3B+ as the edge
    /// target.
    #[must_use]
    pub fn for_workload(workload: WorkloadId) -> Self {
        EdgeTuneConfig {
            workload,
            edge_device: DeviceSpec::raspberry_pi_3b(),
            train_metric: Metric::Runtime,
            inference_metric: Metric::Runtime,
            budget: BudgetPolicy::multi_default(),
            scheduler: SchedulerConfig::new(8, 2.0, 8),
            sampler: SamplerKind::Tpe,
            hyperband: true,
            accuracy_floor: None,
            cache_path: None,
            historical_cache: true,
            pipelining: true,
            inference_workers: 1,
            trial_workers: 1,
            trial_slots: 1,
            study_shards: 1,
            shard_exec: ShardExec::Thread,
            fabric: FabricPolicy::default(),
            shard_hosts: Vec::new(),
            fabric_trace_path: None,
            seed: SeedStream::default().seed(),
            fault_plan: FaultPlan::none(),
            supervisor: Supervisor::default(),
            degradation: DegradationLadder::default(),
            reply_timeout: Duration::from_secs(30),
            checkpoint_path: None,
            resume: false,
            halt_after_rungs: None,
            trace_path: None,
            warm_start: Vec::new(),
            pareto: None,
        }
    }

    /// Sets the edge device.
    #[must_use]
    pub fn with_edge_device(mut self, device: DeviceSpec) -> Self {
        self.edge_device = device;
        self
    }

    /// Sets both objectives' metric (runtime- vs energy-oriented run,
    /// the §5.4 comparison).
    #[must_use]
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.train_metric = metric;
        self.inference_metric = metric;
        self
    }

    /// Sets the budget policy.
    #[must_use]
    pub fn with_budget(mut self, budget: BudgetPolicy) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the scheduler shape.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the sampler.
    #[must_use]
    pub fn with_sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// Single successive-halving bracket instead of HyperBand.
    #[must_use]
    pub fn without_hyperband(mut self) -> Self {
        self.hyperband = false;
        self
    }

    /// Requires trials to reach at least this accuracy.
    #[must_use]
    pub fn with_accuracy_floor(mut self, floor: f64) -> Self {
        self.accuracy_floor = Some(floor);
        self
    }

    /// Persists the historical cache at `path`.
    #[must_use]
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Disables the historical cache (ablation: every architecture is
    /// re-tuned on every trial).
    #[must_use]
    pub fn without_historical_cache(mut self) -> Self {
        self.historical_cache = false;
        self
    }

    /// Disables pipelining (ablation: inference sweeps run synchronously
    /// on the model server's critical path).
    #[must_use]
    pub fn without_pipelining(mut self) -> Self {
        self.pipelining = false;
        self
    }

    /// Sets the number of concurrent inference-sweep workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_inference_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.inference_workers = workers;
        self
    }

    /// Sets the number of real trial-measuring worker threads (and gives
    /// the inference server a matching worker pool). Affects wall-clock
    /// tuning speed only — reports are byte-identical for any count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_trial_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.trial_workers = workers;
        self.inference_workers = self.inference_workers.max(workers);
        self
    }

    /// Sets the number of simulated concurrent trial slots: the modeled
    /// tuning cluster's width, which shrinks the *simulated* makespan of
    /// every rung to its list-scheduled parallel length.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn with_trial_slots(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "need at least one trial slot");
        self.trial_slots = slots;
        self
    }

    /// Sets the number of engine shards the study is partitioned
    /// across. Shard-level and work-stealing measurement
    /// ([`with_trial_workers`](EdgeTuneConfig::with_trial_workers)) are
    /// mutually exclusive real-parallelism strategies: the engine
    /// rejects a configuration that enables both. Like `trial_workers`,
    /// sharding never changes a reported byte; unlike
    /// [`with_trial_slots`](EdgeTuneConfig::with_trial_slots) it does
    /// not model a wider cluster.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_study_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one study shard");
        self.study_shards = shards;
        self
    }

    /// Selects how engine shards execute (threads vs supervised worker
    /// processes). A no-op unless
    /// [`with_study_shards`](EdgeTuneConfig::with_study_shards) asks
    /// for more than one shard.
    #[must_use]
    pub fn with_shard_exec(mut self, exec: ShardExec) -> Self {
        self.shard_exec = exec;
        self
    }

    /// Sets the shard-host addresses for [`ShardExec::Remote`] mode.
    #[must_use]
    pub fn with_shard_hosts(mut self, hosts: Vec<String>) -> Self {
        self.shard_hosts = hosts;
        self
    }

    /// Sets the process shard fabric's supervision policy.
    #[must_use]
    pub fn with_fabric_policy(mut self, policy: FabricPolicy) -> Self {
        self.fabric = policy;
        self
    }

    /// Writes the fabric's supervision telemetry trace to `path` after
    /// the run (process mode only).
    #[must_use]
    pub fn with_fabric_trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.fabric_trace_path = Some(path.into());
        self
    }

    /// Sets the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables fault injection under `plan` (a chaos run).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the retry/deadline policy of the fault-tolerance layer.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Sets the degradation ladder for lost inference replies.
    #[must_use]
    pub fn with_degradation(mut self, ladder: DegradationLadder) -> Self {
        self.degradation = ladder;
        self
    }

    /// Sets the real-time cap on waiting for one inference reply.
    #[must_use]
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Checkpoints the study at `path` after every completed rung.
    #[must_use]
    pub fn with_checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resumes from the configured checkpoint path when it exists.
    #[must_use]
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Halts tuning after `rungs` completed rungs (a controlled
    /// interruption for checkpoint/resume testing).
    #[must_use]
    pub fn with_halt_after_rungs(mut self, rungs: u32) -> Self {
        self.halt_after_rungs = Some(rungs);
        self
    }

    /// Writes the study's Chrome trace-event JSON to `path` after the
    /// run (open it in `chrome://tracing` or Perfetto).
    #[must_use]
    pub fn with_trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Seeds the sampler with transferred configurations, replayed
    /// before its own strategy engages (cross-study warm start).
    #[must_use]
    pub fn with_warm_start(mut self, configs: Vec<Config>) -> Self {
        self.warm_start = configs;
        self
    }

    /// Enables Pareto mode: multi-objective search whose report carries a
    /// frontier of up to `k` non-dominated configurations.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn with_pareto(mut self, k: usize) -> Self {
        assert!(k >= 1, "frontier capacity must be >= 1");
        self.pareto = Some(k);
        self
    }

    pub(crate) fn build_sampler(&self) -> Box<dyn Sampler> {
        let seed = SeedStream::new(self.seed).child("sampler");
        let inner: Box<dyn Sampler> = match self.sampler {
            SamplerKind::Grid(resolution) => Box::new(GridSampler::new(resolution)),
            SamplerKind::Random => Box::new(RandomSampler::new(seed)),
            // In Pareto mode the TPE model upgrades to the multi-objective
            // hypervolume acquisition; grid/random enumerate the same way
            // in either mode (the frontier is still assembled from their
            // vectored history).
            SamplerKind::Tpe if self.pareto.is_some() => Box::new(ParetoTpeSampler::new(seed)),
            SamplerKind::Tpe => Box::new(TpeSampler::new(seed)),
        };
        if self.warm_start.is_empty() {
            inner
        } else {
            Box::new(WarmStartSampler::new(self.warm_start.clone(), inner))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_setup() {
        let config = EdgeTuneConfig::for_workload(WorkloadId::Ic);
        assert_eq!(config.sampler, SamplerKind::Tpe);
        assert!(config.hyperband);
        assert!(config.pipelining);
        assert!(config.historical_cache);
        assert_eq!(config.trial_workers, 1);
        assert_eq!(config.trial_slots, 1);
        assert_eq!(config.study_shards, 1);
        assert_eq!(config.inference_workers, 1);
    }

    #[test]
    fn study_shards_are_a_third_independent_knob() {
        let config = EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_study_shards(4)
            .with_trial_slots(2);
        assert_eq!(config.study_shards, 4);
        assert_eq!(config.trial_slots, 2);
        // Sharding is measurement-side engineering; it leaves the
        // inference pool alone.
        assert_eq!(config.inference_workers, 1);
    }

    #[test]
    #[should_panic(expected = "at least one study shard")]
    fn zero_study_shards_are_rejected() {
        let _ = EdgeTuneConfig::for_workload(WorkloadId::Ic).with_study_shards(0);
    }

    #[test]
    fn trial_workers_and_slots_are_independent_knobs() {
        let config = EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_trial_workers(4)
            .with_trial_slots(2);
        assert_eq!(config.trial_workers, 4);
        assert_eq!(config.trial_slots, 2);
        // Real threads pull the inference pool up with them; simulated
        // slots do not.
        assert_eq!(config.inference_workers, 4);
    }

    #[test]
    #[should_panic(expected = "at least one trial slot")]
    fn zero_trial_slots_are_rejected() {
        let _ = EdgeTuneConfig::for_workload(WorkloadId::Ic).with_trial_slots(0);
    }
}
