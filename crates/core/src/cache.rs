//! The persistent historical database of inference-tuning results
//! (§3.4).
//!
//! Before searching, the Inference Tuning Server "verifies whether the
//! optimal configurations are already known for the given model structure
//! based on historical data"; hits avoid re-tuning an architecture at the
//! cost of a small storage overhead. The cache key is the *architecture
//! signature* — training-only hyperparameters never enter it, which is
//! what lets results be reused across trials (§3.1 "Objective").

use std::collections::HashMap;
use std::path::Path;

use edgetune_tuner::Metric;
use edgetune_util::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::inference::InferenceRecommendation;

/// A cache key: device × architecture signature × inference metric.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// Target device name.
    pub device: String,
    /// Architecture signature (see
    /// `edgetune_workloads::Workload::arch_signature`).
    pub arch: String,
    /// Which metric the stored recommendation optimises.
    pub metric: Metric,
}

impl CacheKey {
    /// Creates a key.
    #[must_use]
    pub fn new(device: impl Into<String>, arch: impl Into<String>, metric: Metric) -> Self {
        CacheKey {
            device: device.into(),
            arch: arch.into(),
            metric,
        }
    }
}

/// Hit/miss statistics of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters as stable (name, value) pairs — the shape trace
    /// counter events consume.
    #[must_use]
    pub fn as_counters(&self) -> Vec<(String, f64)> {
        vec![
            ("hits".to_string(), self.hits as f64),
            ("misses".to_string(), self.misses as f64),
        ]
    }
}

/// The historical results store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistoricalCache {
    entries: HashMap<String, InferenceRecommendation>,
    /// Hit/miss counters are per-process observability, not durable
    /// state: a freshly-loaded cache starts counting from zero.
    #[serde(skip)]
    stats: CacheStats,
    /// Entries (or whole files) skipped by a corruption-tolerant load;
    /// per-process observability like `stats`.
    #[serde(skip)]
    corrupt_entries: u64,
}

impl HistoricalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        HistoricalCache::default()
    }

    fn key_string(key: &CacheKey) -> String {
        format!("{}|{}|{}", key.device, key.arch, key.metric)
    }

    /// Looks up a recommendation, recording hit/miss.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<InferenceRecommendation> {
        match self.entries.get(&Self::key_string(key)) {
            Some(rec) => {
                self.stats.hits += 1;
                Some(rec.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records a miss without a lookup — used when caching is disabled
    /// so the statistics still reflect how many sweeps were computed.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Peeks without touching statistics.
    #[must_use]
    pub fn peek(&self, key: &CacheKey) -> Option<&InferenceRecommendation> {
        self.entries.get(&Self::key_string(key))
    }

    /// Stores a recommendation, returning any previous entry.
    pub fn store(
        &mut self,
        key: &CacheKey,
        recommendation: InferenceRecommendation,
    ) -> Option<InferenceRecommendation> {
        self.entries.insert(Self::key_string(key), recommendation)
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reinstates hit/miss counters saved out-of-band. The counters are
    /// `#[serde(skip)]` — per-process observability — so a resumed study
    /// that wants its final statistics to match the uninterrupted run's
    /// must carry them separately (the shard manifest does) and put them
    /// back before handing the cache to the inference server.
    pub fn restore_stats(&mut self, stats: CacheStats) {
        self.stats = stats;
    }

    /// Entries skipped as unparseable by the last [`HistoricalCache::load`]
    /// (a whole-file tear counts as one).
    #[must_use]
    pub fn corrupt_entries(&self) -> u64 {
        self.corrupt_entries
    }

    /// Serialises the cache to a JSON file, atomically: the bytes go to a
    /// `.tmp` sibling first and are renamed into place, so a crash
    /// mid-save can never leave a half-written cache behind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] on I/O or serialisation failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| Error::storage(format!("serialising cache: {e}")))?;
        let file_name = path.file_name().ok_or_else(|| {
            Error::storage(format!("cache path {} has no file name", path.display()))
        })?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a cache previously written by [`HistoricalCache::save`].
    ///
    /// Tolerates corruption: a file torn by a non-atomic writer (or
    /// hand-edited into invalid shape) does not fail the run. Entries
    /// that still parse are salvaged; the rest are skipped and counted in
    /// [`HistoricalCache::corrupt_entries`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] only when the file cannot be *read*
    /// (missing file, permissions) — never for unparseable content.
    pub fn load(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        match serde_json::from_str(&json) {
            Ok(cache) => Ok(cache),
            Err(_) => Ok(Self::load_lenient(&json)),
        }
    }

    /// Salvages whatever entries still parse from a corrupt cache file.
    fn load_lenient(json: &str) -> Self {
        let mut cache = HistoricalCache::new();
        let Ok(value) = serde_json::from_str::<serde_json::Value>(json) else {
            // Torn mid-write: the document itself is not JSON.
            cache.corrupt_entries = 1;
            return cache;
        };
        match value.get("entries").and_then(serde_json::Value::as_object) {
            Some(entries) => {
                for (key, entry) in entries {
                    match serde_json::from_value::<InferenceRecommendation>(entry.clone()) {
                        Ok(rec) => {
                            cache.entries.insert(key.clone(), rec);
                        }
                        Err(_) => cache.corrupt_entries += 1,
                    }
                }
            }
            None => cache.corrupt_entries = 1,
        }
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune_util::units::{Hertz, ItemsPerSecond, JoulesPerItem, Seconds};

    fn rec(batch: u32) -> InferenceRecommendation {
        InferenceRecommendation {
            device: "Raspberry Pi 3B+".to_string(),
            batch,
            cores: 2,
            freq: Hertz::from_ghz(1.4),
            latency_per_item: Seconds::new(0.05),
            energy_per_item: JoulesPerItem::new(0.3),
            throughput: ItemsPerSecond::new(20.0),
        }
    }

    fn key(arch: &str) -> CacheKey {
        CacheKey::new("Raspberry Pi 3B+", arch, Metric::Runtime)
    }

    #[test]
    fn store_then_lookup_hits() {
        let mut cache = HistoricalCache::new();
        assert!(cache.lookup(&key("ResNet/layers=18")).is_none());
        cache.store(&key("ResNet/layers=18"), rec(8));
        let hit = cache.lookup(&key("ResNet/layers=18")).unwrap();
        assert_eq!(hit.batch, 8);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert!((cache.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_metric_is_a_different_entry() {
        let mut cache = HistoricalCache::new();
        cache.store(&key("a"), rec(8));
        let energy_key = CacheKey::new("Raspberry Pi 3B+", "a", Metric::Energy);
        assert!(cache.lookup(&energy_key).is_none());
    }

    #[test]
    fn different_device_is_a_different_entry() {
        let mut cache = HistoricalCache::new();
        cache.store(&key("a"), rec(8));
        let other = CacheKey::new("ARMv7 rev 4 board", "a", Metric::Runtime);
        assert!(cache.peek(&other).is_none());
        assert!(cache.peek(&key("a")).is_some());
    }

    #[test]
    fn store_returns_previous_entry() {
        let mut cache = HistoricalCache::new();
        assert!(cache.store(&key("a"), rec(8)).is_none());
        let prev = cache.store(&key("a"), rec(16)).unwrap();
        assert_eq!(prev.batch, 8);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn peek_does_not_touch_stats() {
        let mut cache = HistoricalCache::new();
        cache.store(&key("a"), rec(8));
        let _ = cache.peek(&key("a"));
        let _ = cache.peek(&key("b"));
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn save_load_round_trip() {
        let mut cache = HistoricalCache::new();
        cache.store(&key("ResNet/layers=18"), rec(8));
        cache.store(&key("ResNet/layers=50"), rec(4));
        let dir = std::env::temp_dir().join("edgetune-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        let mut loaded = HistoricalCache::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.lookup(&key("ResNet/layers=50")).unwrap().batch, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = HistoricalCache::load(Path::new("/nonexistent/cache.json")).unwrap_err();
        assert!(matches!(err, Error::Storage(_)));
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let mut cache = HistoricalCache::new();
        cache.store(&key("a"), rec(8));
        let dir = std::env::temp_dir().join("edgetune-cache-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        assert!(path.exists());
        assert!(
            !dir.join("cache.json.tmp").exists(),
            "the temp sibling must be renamed away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_salvages_good_entries_and_counts_corrupt_ones() {
        let mut cache = HistoricalCache::new();
        cache.store(&key("good"), rec(8));
        let mut json: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&cache).expect("cache serialises"))
                .unwrap();
        json["entries"]["Raspberry Pi 3B+|bad|runtime"] = serde_json::json!({"batch": "oops"});
        let dir = std::env::temp_dir().join("edgetune-cache-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, serde_json::to_string(&json).unwrap()).unwrap();
        let loaded = HistoricalCache::load(&path).unwrap();
        assert_eq!(loaded.len(), 1, "the good entry survives");
        assert_eq!(loaded.corrupt_entries(), 1, "the bad entry is counted");
        assert!(loaded.peek(&key("good")).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_tolerates_a_fully_torn_file() {
        let dir = std::env::temp_dir().join("edgetune-cache-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, "{\"entries\": {\"a|b|runtime\": {\"dev").unwrap();
        let loaded = HistoricalCache::load(&path).unwrap();
        assert!(loaded.is_empty(), "nothing salvageable from a torn prefix");
        assert!(loaded.corrupt_entries() >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interleaved_studies_share_one_cache_file_without_losing_entries() {
        // Two studies park and resume against the same cache file, the
        // way the study service interleaves tenants: A stores and saves
        // mid-study, B picks the file up, adds its own results and
        // saves, then A resumes from the file again. Nobody's entries
        // are lost and late writers see earlier writers' work.
        let dir = std::env::temp_dir().join("edgetune-cache-interleaved-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        let mut study_a = HistoricalCache::new();
        study_a.store(&key("ResNet/layers=18"), rec(8));
        study_a.save(&path).unwrap();

        let mut study_b = HistoricalCache::load(&path).unwrap();
        assert_eq!(
            study_b.lookup(&key("ResNet/layers=18")).unwrap().batch,
            8,
            "B warm-hits A's mid-study save"
        );
        study_b.store(&key("M5/width=64"), rec(4));
        study_b.save(&path).unwrap();

        let mut resumed_a = HistoricalCache::load(&path).unwrap();
        assert_eq!(resumed_a.len(), 2);
        assert_eq!(resumed_a.lookup(&key("ResNet/layers=18")).unwrap().batch, 8);
        assert_eq!(resumed_a.lookup(&key("M5/width=64")).unwrap().batch, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_study_round_trip_preserves_the_stats_tally_via_restore() {
        // Hit/miss counters are #[serde(skip)] by design; a parked
        // study carries them out-of-band (the shard manifest does) and
        // reinstates them on resume so the final report's tally equals
        // the uninterrupted run's.
        let dir = std::env::temp_dir().join("edgetune-cache-stats-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        let mut cache = HistoricalCache::new();
        let _ = cache.lookup(&key("a")); // miss
        cache.store(&key("a"), rec(8));
        let _ = cache.lookup(&key("a")); // hit
        let parked_stats = cache.stats();
        cache.save(&path).unwrap();

        let mut resumed = HistoricalCache::load(&path).unwrap();
        assert_eq!(
            resumed.stats(),
            CacheStats::default(),
            "a freshly-loaded cache counts from zero"
        );
        resumed.restore_stats(parked_stats);
        let _ = resumed.lookup(&key("a")); // hit
        assert_eq!(resumed.stats(), CacheStats { hits: 2, misses: 1 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_cache_ratio_is_zero() {
        let cache = HistoricalCache::new();
        assert_eq!(cache.stats().hit_ratio(), 0.0);
        assert!(cache.is_empty());
    }
}
