//! The coordinator/shard split of a sharded study.
//!
//! [`StudyCoordinator`] converts the engine's last single-instance
//! assumption into an explicit plan/execute/merge pipeline. Every rung
//! of every bracket is partitioned into contiguous [`ShardPlan`]s; each
//! plan is executed by an [`EngineShard`] — a narrowed engine instance
//! owning its own backend snapshot and a clock forked from the study
//! clock — on its own scoped thread
//! ([`parallel_map_ordered`](edgetune_runtime::parallel_map_ordered)).
//! The measurements flow back in plan order and are replayed through
//! the *same* sequential accounting path an unsharded run uses, so the
//! report is byte-identical for any shard count; the per-shard
//! histories are stitched back together with
//! [`HistoryMerge`](edgetune_tuner::merge::HistoryMerge)'s
//! `(simulated start, bracket, trial id)` key.
//!
//! The shared `HistoricalCache` inside the
//! [`AsyncInferenceServer`](crate::async_server::AsyncInferenceServer)
//! is deliberately *not* sharded: it is the one cross-shard channel, so
//! an architecture tuned by any shard is never re-tuned by another —
//! Algorithm 1's memoisation survives sharding untouched.
//!
//! Shard execution (phase A) is deliberately *untraced*: shards only
//! precompute raw measurements on wall-clock threads, and every trace
//! event is emitted from the sequential phase-B accounting path that
//! replays them. Tracing here would key tracks to real threads and
//! break the trace's byte-identity across shard counts — the same law
//! `tests/golden_trace.rs` pins for the report.

use edgetune_runtime::{parallel_map_ordered, SharedClock, SimClock};
use edgetune_tuner::budget::TrialBudget;
use edgetune_tuner::merge::{ShardHistory, StampedTrial};
use edgetune_tuner::space::Config;
use edgetune_tuner::History;
use edgetune_util::units::Seconds;

use crate::backend::{TrainingBackend, TrialMeasurement};

/// The provenance a sharded study records for every trial: where (in
/// simulated time) and under which bracket it ran. Together with the
/// trial id this is the merge key that restores global order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStamp {
    /// Simulated timestamp at which the trial started.
    pub start: Seconds,
    /// Index (execution order) of the bracket that ran it.
    pub bracket: u32,
}

/// One shard's contiguous slice of a rung (or of a whole history).
/// Serialisable because the process fabric ships plans to shard worker
/// processes over a pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardPlan {
    /// The shard's index in the partition.
    pub shard: usize,
    /// First item of the slice.
    pub start: usize,
    /// Number of items in the slice.
    pub len: usize,
}

impl ShardPlan {
    /// Partitions `len` items into at most `shards` contiguous,
    /// maximally balanced plans (slice lengths differ by at most one).
    /// Always yields at least one plan, and never an empty plan unless
    /// `len` itself is zero — extra shards simply go unused.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn partition(len: usize, shards: usize) -> Vec<ShardPlan> {
        assert!(shards >= 1, "need at least one shard");
        let effective = shards.min(len).max(1);
        let base = len / effective;
        let extra = len % effective;
        let mut plans = Vec::with_capacity(effective);
        let mut start = 0;
        for shard in 0..effective {
            let slice_len = base + usize::from(shard < extra);
            plans.push(ShardPlan {
                shard,
                start,
                len: slice_len,
            });
            start += slice_len;
        }
        plans
    }

    /// The plan's slice of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is shorter than the partitioned length.
    #[must_use]
    pub fn slice<'t, T>(&self, items: &'t [T]) -> &'t [T] {
        &items[self.start..self.start + self.len]
    }
}

/// A narrowed engine instance: measures an assigned slice of a rung on
/// its own backend snapshot, advancing a clock forked from the study
/// clock so the shard keeps a local simulated timeline.
pub struct EngineShard {
    plan: ShardPlan,
    backend: Box<dyn TrainingBackend + Send>,
    clock: SharedClock,
}

impl std::fmt::Debug for EngineShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineShard")
            .field("plan", &self.plan)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl EngineShard {
    /// Creates a shard from its plan, a backend snapshot, and a clock
    /// forked from the study clock.
    #[must_use]
    pub fn new(
        plan: ShardPlan,
        backend: Box<dyn TrainingBackend + Send>,
        clock: SharedClock,
    ) -> Self {
        EngineShard {
            plan,
            backend,
            clock,
        }
    }

    /// The shard's assignment.
    #[must_use]
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Measures a slice of trials in order on the shard's snapshot,
    /// advancing the shard-local clock past each measurement. By the
    /// snapshot contract
    /// ([`TrainingBackend::parallel_snapshot`]) every measurement is
    /// exactly what the primary backend would have produced.
    pub fn measure(&mut self, trials: &[(u64, Config, TrialBudget)]) -> Vec<TrialMeasurement> {
        trials
            .iter()
            .map(|(_, config, budget)| {
                let measurement = self.backend.run_trial(config, *budget);
                self.clock.advance(measurement.runtime);
                measurement
            })
            .collect()
    }

    /// Simulated time the shard's local clock has reached.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        self.clock.now()
    }
}

/// Partitions a study across engine shards and stitches the results
/// back together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyCoordinator {
    shards: usize,
}

impl StudyCoordinator {
    /// Creates a coordinator for `shards` engine shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        StudyCoordinator { shards }
    }

    /// The configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Measures one rung across the shards: partitions the trials into
    /// [`ShardPlan`]s, builds one [`EngineShard`] per plan (snapshot +
    /// forked clock at `now`), and runs them on scoped threads.
    /// Measurements return in input order, ready to be replayed through
    /// the canonical sequential accounting path.
    ///
    /// Returns `None` when the backend cannot snapshot itself (e.g.
    /// under fault injection, where the injector's draw cursor must
    /// stay strictly sequential) — the caller falls back to sequential
    /// measurement, keeping chaos runs shard-count-invariant.
    #[must_use]
    pub fn measure_rung(
        &self,
        backend: &dyn TrainingBackend,
        now: Seconds,
        trials: &[(u64, Config, TrialBudget)],
    ) -> Option<Vec<TrialMeasurement>> {
        let plans = ShardPlan::partition(trials.len(), self.shards);
        let mut shards = Vec::with_capacity(plans.len());
        for plan in &plans {
            shards.push(EngineShard::new(
                *plan,
                backend.parallel_snapshot()?,
                SharedClock::from_clock(SimClock::at(now)),
            ));
        }
        let slices: Vec<&[(u64, Config, TrialBudget)]> =
            plans.iter().map(|plan| plan.slice(trials)).collect();
        let measured =
            parallel_map_ordered(&slices, shards, |shard, _index, slice| shard.measure(slice));
        Some(measured.into_iter().flatten().collect())
    }

    /// Splits a stamped history into per-shard histories along the same
    /// contiguous partition the shards execute — the inverse of
    /// [`HistoryMerge::merge`](edgetune_tuner::merge::HistoryMerge::merge),
    /// used to assemble the merged report and to write per-shard
    /// checkpoint files.
    ///
    /// # Panics
    ///
    /// Panics if the stamp ledger does not cover the history.
    #[must_use]
    pub fn shard_histories(&self, history: &History, stamps: &[TrialStamp]) -> Vec<ShardHistory> {
        let records = history.records();
        assert_eq!(
            records.len(),
            stamps.len(),
            "every recorded trial needs a provenance stamp"
        );
        ShardPlan::partition(records.len(), self.shards)
            .iter()
            .map(|plan| ShardHistory {
                shard: plan.shard,
                trials: plan
                    .slice(records)
                    .iter()
                    .zip(plan.slice(stamps))
                    .map(|(record, stamp)| StampedTrial {
                        record: record.clone(),
                        start: stamp.start,
                        bracket: stamp.bracket,
                    })
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimTrainingBackend;
    use edgetune_tuner::merge::HistoryMerge;
    use edgetune_tuner::trial::{TrialOutcome, TrialRecord};
    use edgetune_util::rng::SeedStream;
    use edgetune_util::units::Joules;
    use edgetune_workloads::catalog::{Workload, WorkloadId};

    #[test]
    fn partition_is_contiguous_balanced_and_complete() {
        for (len, shards) in [(10, 4), (8, 2), (3, 5), (7, 1), (1, 3)] {
            let plans = ShardPlan::partition(len, shards);
            assert!(plans.len() <= shards);
            let mut covered = 0;
            for (i, plan) in plans.iter().enumerate() {
                assert_eq!(plan.shard, i);
                assert_eq!(plan.start, covered, "plans are contiguous");
                assert!(plan.len >= 1, "no empty plan for non-empty input");
                covered += plan.len;
            }
            assert_eq!(covered, len, "partition covers every item");
            let min = plans.iter().map(|p| p.len).min().unwrap();
            let max = plans.iter().map(|p| p.len).max().unwrap();
            assert!(max - min <= 1, "maximally balanced");
        }
    }

    #[test]
    fn partition_of_nothing_is_one_empty_plan() {
        let plans = ShardPlan::partition(0, 4);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].len, 0);
    }

    #[test]
    fn sharded_measurement_matches_the_sequential_backend() {
        let backend =
            || SimTrainingBackend::new(Workload::by_id(WorkloadId::Ic), SeedStream::new(5));
        let space = backend().search_space();
        let sampler_seed = SeedStream::new(6);
        let trials: Vec<(u64, Config, TrialBudget)> = (0..7)
            .map(|id| {
                (
                    id,
                    space.sample(&mut sampler_seed.rng(&format!("trial-{id}"))),
                    TrialBudget::new(2.0, 1.0),
                )
            })
            .collect();

        let mut sequential = backend();
        let expected: Vec<TrialMeasurement> = trials
            .iter()
            .map(|(_, config, budget)| sequential.run_trial(config, *budget))
            .collect();

        for shards in [1, 2, 3, 7] {
            let primary = backend();
            let measured = StudyCoordinator::new(shards)
                .measure_rung(&primary, Seconds::ZERO, &trials)
                .expect("fault-free sim backend snapshots");
            assert_eq!(measured, expected, "shards={shards} changed a measurement");
        }
    }

    #[test]
    fn shard_clocks_fork_from_the_study_clock() {
        let plan = ShardPlan {
            shard: 0,
            start: 0,
            len: 1,
        };
        let backend = SimTrainingBackend::new(Workload::by_id(WorkloadId::Ic), SeedStream::new(5));
        let snapshot = backend.parallel_snapshot().unwrap();
        let shard = EngineShard::new(
            plan,
            snapshot,
            SharedClock::from_clock(SimClock::at(Seconds::new(100.0))),
        );
        assert_eq!(shard.plan(), plan);
        assert_eq!(shard.elapsed(), Seconds::new(100.0));
    }

    #[test]
    fn shard_histories_round_trip_through_the_merge() {
        let mut history = History::new();
        let mut stamps = Vec::new();
        for id in 0..9 {
            history.push(TrialRecord {
                id,
                config: Config::new().with("x", id as f64),
                budget: TrialBudget::new(1.0, 1.0),
                outcome: TrialOutcome::new(id as f64, 0.5, Seconds::new(20.0), Joules::new(1.0)),
            });
            stamps.push(TrialStamp {
                start: Seconds::new(id as f64 * 20.0),
                bracket: u32::try_from(id / 4).unwrap(),
            });
        }
        for shards in [1, 2, 4] {
            let split = StudyCoordinator::new(shards).shard_histories(&history, &stamps);
            assert_eq!(split.len(), shards.min(9));
            let merged = HistoryMerge::merge(split);
            assert_eq!(merged, history, "shards={shards} perturbed the history");
        }
    }
}
