//! The [`Engine`]: study construction, execution, and report assembly.
//!
//! The engine owns everything between a finished
//! [`EdgeTuneConfig`](crate::config::EdgeTuneConfig) and a
//! [`TuningReport`]: checkpoint restore, cache loading, inference-server
//! startup, sampler/scheduler wiring, the evaluator's lifetime, and the
//! final harvest of history, winner, recommendation, and fault counters.
//! The public [`EdgeTune`](crate::server::EdgeTune) job is a thin façade
//! over this type.

use std::collections::VecDeque;

use edgetune_faults::{DegradationStats, FaultInjector};
use edgetune_runtime::SimClock;
use edgetune_trace::{ChromeTrace, Tracer};
use edgetune_tuner::merge::HistoryMerge;
use edgetune_tuner::objective::{InferenceObjective, TrainObjective};
use edgetune_tuner::scheduler::{HyperBand, PromotionRule, SuccessiveHalving};
use edgetune_tuner::trial::TrialRecord;
use edgetune_util::rng::SeedStream;
use edgetune_util::units::{Joules, Seconds};
use edgetune_util::{Error, Result};
use edgetune_workloads::catalog::Workload;

use crate::async_server::AsyncInferenceServer;
use crate::backend::{SimTrainingBackend, TrainingBackend};
use crate::cache::{CacheKey, HistoricalCache};
use crate::checkpoint::{load_resume_state, StudyResume};
use crate::config::{EdgeTuneConfig, ShardExec};
use crate::engine::coordinator::StudyCoordinator;
use crate::engine::evaluator::OnefoldEvaluator;
use crate::engine::report::{FaultReport, TuningReport};
use crate::fabric::{FabricTransport, ShardFabric};
use crate::inference::{InferenceSpace, InferenceTuningServer};
use crate::timeline::Timeline;
use crate::trace::{seed_tracer_from_timeline, timeline_from_trace};

/// The tuning engine: runs one study described by a borrowed
/// configuration and assembles its [`TuningReport`].
#[derive(Debug)]
pub struct Engine<'a> {
    config: &'a EdgeTuneConfig,
}

impl<'a> Engine<'a> {
    /// Creates an engine over a configuration.
    #[must_use]
    pub fn new(config: &'a EdgeTuneConfig) -> Self {
        Engine { config }
    }

    /// The default simulated backend for the configured workload.
    fn default_backend(&self) -> SimTrainingBackend {
        let workload = Workload::by_id(self.config.workload);
        let mut backend =
            SimTrainingBackend::new(workload, SeedStream::new(self.config.seed).child("trials"));
        if !self.config.fault_plan.is_none() {
            backend = backend.with_fault_injector(FaultInjector::new(
                self.config.fault_plan,
                SeedStream::new(self.config.seed).child("trial-faults"),
            ));
        }
        backend
    }

    /// Runs the study with the default simulated backend for the
    /// configured workload.
    ///
    /// # Errors
    ///
    /// Propagates configuration and storage errors; see
    /// [`Engine::run_with_backend`].
    pub fn run(&self) -> Result<TuningReport> {
        let mut backend = self.default_backend();
        self.run_with_backend(&mut backend)
    }

    /// Runs the study against any training backend (e.g. the real
    /// `edgetune-nn` one).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for inconsistent configurations,
    /// [`Error::Storage`] if the historical cache cannot be written, and
    /// [`Error::Channel`] if the inference server fails irrecoverably.
    pub fn run_with_backend(&self, backend: &mut dyn TrainingBackend) -> Result<TuningReport> {
        let tracer = Tracer::new();
        let report = self.run_inner(backend, &tracer)?;
        if let Some(path) = &self.config.trace_path {
            ChromeTrace::from_tracer(&tracer).write(path)?;
        }
        Ok(report)
    }

    /// Runs the study with the default backend and returns the report
    /// together with the Chrome trace of everything that happened on
    /// the simulated clock.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run`].
    pub fn run_traced(&self) -> Result<(TuningReport, ChromeTrace)> {
        let mut backend = self.default_backend();
        self.run_traced_with_backend(&mut backend)
    }

    /// Runs the study against any training backend, returning the
    /// report and the Chrome trace.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run_with_backend`].
    pub fn run_traced_with_backend(
        &self,
        backend: &mut dyn TrainingBackend,
    ) -> Result<(TuningReport, ChromeTrace)> {
        let tracer = Tracer::new();
        let report = self.run_inner(backend, &tracer)?;
        let trace = ChromeTrace::from_tracer(&tracer);
        if let Some(path) = &self.config.trace_path {
            trace.write(path)?;
        }
        Ok((report, trace))
    }

    /// The study proper: everything between a validated configuration
    /// and an assembled report, emitting every piece of time accounting
    /// into `tracer` along the way.
    fn run_inner(
        &self,
        backend: &mut dyn TrainingBackend,
        tracer: &Tracer,
    ) -> Result<TuningReport> {
        let space = backend.search_space();
        if space.is_empty() {
            return Err(Error::invalid_config("backend search space is empty"));
        }
        if self.config.study_shards > 1 && self.config.trial_workers > 1 {
            return Err(Error::invalid_config(format!(
                "study_shards ({}) and trial_workers ({}) are both real thread pools: \
                 enable at most one of them",
                self.config.study_shards, self.config.trial_workers
            )));
        }
        if self.config.shard_exec == ShardExec::Remote && self.config.shard_hosts.is_empty() {
            return Err(Error::invalid_config(
                "--shard-exec remote needs at least one --shard-hosts address",
            ));
        }
        let faults_enabled = !self.config.fault_plan.is_none();

        // Resume: restore the trial log, cache, and fault cursors from the
        // checkpoint so the continuation replays the interrupted study.
        // Sharded runs leave a manifest plus per-shard files; a corrupted
        // or partial checkpoint degrades (manifest → plain → fresh) when
        // the degradation ladder has rungs to stand on.
        let mut replay: VecDeque<TrialRecord> = VecDeque::new();
        let mut first_seq: u64 = 0;
        let mut resumed_cache: Option<HistoricalCache> = None;
        // Study-global accounting restored from the checkpoint: the
        // exact timeline spans, accumulated stall/energy, degradation
        // counters, backoff draws, and cache statistics of the
        // completed prefix — the state replaying the trial log alone
        // cannot reproduce. Both layouts carry these fields now; plain
        // checkpoints written before they existed deserialise with an
        // empty timeline and fall back to approximate replay-recorded
        // spans.
        let mut resumed_timeline = Timeline::new();
        let mut resumed_stall = Seconds::ZERO;
        let mut resumed_inference_energy = Joules::ZERO;
        let mut resumed_degradation = DegradationStats::default();
        let mut resumed_backoff_draws: u64 = 0;
        let mut resumed_injected_losses: u64 = 0;
        let mut resumed_injected_outages: u64 = 0;
        let mut replay_records_timeline = true;
        if self.config.resume {
            if let Some(path) = &self.config.checkpoint_path {
                if path.exists() {
                    let allow_degraded = !self.config.degradation.steps().is_empty();
                    let seed_guard = |found: u64| {
                        if found != self.config.seed {
                            Err(Error::invalid_config(format!(
                                "checkpoint was written under seed {}, not {}: resuming would \
                                 silently diverge",
                                found, self.config.seed
                            )))
                        } else {
                            Ok(())
                        }
                    };
                    match load_resume_state(path, allow_degraded)? {
                        StudyResume::Fresh => {}
                        StudyResume::Plain(checkpoint) => {
                            seed_guard(checkpoint.seed)?;
                            backend.set_fault_cursor(checkpoint.fault_cursor);
                            first_seq = checkpoint.inference_cursor;
                            replay = checkpoint.history().records().to_vec().into();
                            let mut cache = checkpoint.cache;
                            cache.restore_stats(checkpoint.cache_stats);
                            resumed_cache = Some(cache);
                            resumed_stall = checkpoint.stall;
                            resumed_inference_energy = checkpoint.inference_energy;
                            resumed_degradation = checkpoint.degradation;
                            resumed_backoff_draws = checkpoint.backoff_draws;
                            resumed_injected_losses = checkpoint.injected_losses;
                            resumed_injected_outages = checkpoint.injected_outages;
                            // A legacy checkpoint (no recorded spans
                            // despite completed trials) keeps the
                            // approximate replay-recorded timeline.
                            if !checkpoint.timeline.spans().is_empty() || replay.is_empty() {
                                resumed_timeline = checkpoint.timeline;
                                replay_records_timeline = false;
                            }
                        }
                        StudyResume::Sharded { manifest, history } => {
                            seed_guard(manifest.seed)?;
                            backend.set_fault_cursor(manifest.fault_cursor);
                            first_seq = manifest.inference_cursor;
                            replay = history.records().to_vec().into();
                            let mut cache = manifest.cache;
                            cache.restore_stats(manifest.cache_stats);
                            resumed_cache = Some(cache);
                            resumed_timeline = manifest.timeline;
                            resumed_stall = manifest.stall;
                            resumed_inference_energy = manifest.inference_energy;
                            resumed_degradation = manifest.degradation;
                            resumed_backoff_draws = manifest.backoff_draws;
                            resumed_injected_losses = manifest.injected_losses;
                            resumed_injected_outages = manifest.injected_outages;
                            replay_records_timeline = false;
                        }
                    }
                }
            }
        }

        // Historical cache: the checkpoint's snapshot wins on resume, then
        // the persistent file, else start fresh.
        let cache = match resumed_cache {
            Some(cache) => cache,
            None => match &self.config.cache_path {
                Some(path) if path.exists() => HistoricalCache::load(path)?,
                _ => HistoricalCache::new(),
            },
        };

        let inference_server = InferenceTuningServer::new(
            self.config.edge_device.clone(),
            InferenceSpace::for_device(&self.config.edge_device),
            InferenceObjective::new(self.config.inference_metric),
        )?;
        let inference_faults = if faults_enabled {
            Some(FaultInjector::new(
                self.config.fault_plan,
                SeedStream::new(self.config.seed).child("inference-faults"),
            ))
        } else {
            None
        };
        let async_server = AsyncInferenceServer::start_supervised(
            inference_server,
            cache,
            self.config.inference_workers,
            self.config.historical_cache,
            inference_faults,
            first_seq,
        );

        let mut objective = TrainObjective::inference_aware(self.config.train_metric);
        if let Some(floor) = self.config.accuracy_floor {
            objective = objective.with_accuracy_floor(floor);
        }

        // A shard manifest restores the exact recorded spans; seed them
        // into the tracer *before* any live trial so the derived
        // timeline reproduces the uninterrupted run's span sequence.
        seed_tracer_from_timeline(tracer, &resumed_timeline);
        let mut sampler = self.config.build_sampler();
        let device_name = self.config.edge_device.name.clone();

        // Under `--shard-exec process|remote` the evaluator hands each
        // rung's shard slices to the fabric, which runs them in
        // supervised child processes or on standing shard hosts. The
        // fabric keeps its own tracer: supervision telemetry (spawns,
        // heartbeats, crashes, retries, RPC legs) is
        // wall-clock-dependent and must never leak into the study trace,
        // whose bytes are an exec-mode-independent contract.
        let mut fabric = (matches!(
            self.config.shard_exec,
            ShardExec::Process | ShardExec::Remote
        ) && self.config.study_shards > 1)
            .then(|| {
                let mut policy = self.config.fabric.clone();
                if self.config.shard_exec == ShardExec::Remote {
                    policy.transport = FabricTransport::Remote {
                        hosts: self.config.shard_hosts.clone(),
                    };
                }
                ShardFabric::new(policy, SeedStream::new(self.config.seed).child("fabric"))
            });

        let (history, stamps, makespan, stall, inference_energy, degradation, rungs_completed) = {
            let mut evaluator = OnefoldEvaluator {
                backend,
                inference: &async_server,
                device: &self.config.edge_device,
                inference_metric: self.config.inference_metric,
                objective,
                tracer,
                pipelining: self.config.pipelining,
                pareto: self.config.pareto.is_some(),
                trial_workers: self.config.trial_workers,
                trial_slots: self.config.trial_slots,
                study_shards: self.config.study_shards,
                fabric: fabric.as_mut(),
                clock: SimClock::new(),
                stall: resumed_stall,
                inference_energy: resumed_inference_energy,
                faults_enabled,
                supervisor: self.config.supervisor,
                ladder: &self.config.degradation,
                reply_timeout: self.config.reply_timeout,
                supervisor_seed: SeedStream::new(self.config.seed).child("supervisor"),
                backoff_draws: resumed_backoff_draws,
                stats: resumed_degradation,
                resumed_injected_losses,
                resumed_injected_outages,
                checkpoint_path: self.config.checkpoint_path.as_ref(),
                root_seed: self.config.seed,
                halt_after_rungs: self.config.halt_after_rungs,
                rungs_completed: 0,
                replay,
                replay_records_timeline,
                current_bracket: 0,
                stamps: Vec::new(),
                rungs_traced: 0,
                bracket_open: None,
                scratch: Default::default(),
            };
            // Pareto mode promotes on front membership (dominance
            // layers) instead of raw scalar rank; scalar mode keeps the
            // default rule, so its reports are untouched.
            let promotion = if self.config.pareto.is_some() {
                PromotionRule::FrontMembership
            } else {
                PromotionRule::ScalarRank
            };
            let history = if self.config.hyperband {
                HyperBand::new(self.config.scheduler)
                    .with_promotion(promotion)
                    .run(
                        sampler.as_mut(),
                        &space,
                        &self.config.budget,
                        &mut evaluator,
                    )
            } else {
                SuccessiveHalving::new(self.config.scheduler)
                    .with_promotion(promotion)
                    .run(
                        sampler.as_mut(),
                        &space,
                        &self.config.budget,
                        &mut evaluator,
                    )
            };
            evaluator.finish_trace();
            let stamps = std::mem::take(&mut evaluator.stamps);
            (
                history,
                stamps,
                evaluator.clock.now(),
                evaluator.stall,
                evaluator.inference_energy,
                evaluator.stats,
                evaluator.rungs_completed,
            )
        };
        // Export the fabric's process telemetry to its own trace file —
        // deliberately separate from the study trace so the latter stays
        // byte-identical across `--shard-exec` modes.
        let fabric_stats = fabric.as_ref().map(ShardFabric::stats);
        if let (Some(fabric), Some(path)) = (&fabric, &self.config.fabric_trace_path) {
            ChromeTrace::from_tracer(fabric.tracer()).write(path)?;
        }

        // The report's timeline is a view over the trace — derived, not
        // separately recorded, so the two can never disagree.
        let timeline = timeline_from_trace(tracer);

        // Sharded studies hand the report a *merged* history: split the
        // stamped trial log by the coordinator's plan and interleave it
        // back by (simulated start, bracket, trial id). The merge is the
        // identity for a correct implementation — running it on every
        // sharded study keeps that invariant permanently under test.
        let history = if self.config.study_shards > 1 && stamps.len() == history.len() {
            let coordinator = StudyCoordinator::new(self.config.study_shards);
            HistoryMerge::merge(coordinator.shard_histories(&history, &stamps))
        } else {
            history
        };

        // Harvest the inference server's fault counters before shutdown.
        // The live counters only cover post-resume requests — replayed
        // trials never resubmit — so the checkpointed prefix's tallies
        // are added back in.
        let worker_panics = async_server.worker_panics();
        let injected_losses = resumed_injected_losses + async_server.injected_losses();
        let injected_outages = resumed_injected_outages + async_server.injected_outages();

        // The tuning job's output is the final-rung winner: raw ratio
        // scores are only comparable within one budget level.
        let best = history
            .winner()
            .ok_or_else(|| Error::invalid_config("no trials were executed"))?
            .clone();

        // The winner's recommendation is in the cache by construction.
        let (best_arch, best_profile) = backend.architecture(&best.config);
        let key = CacheKey::new(&device_name, best_arch, self.config.inference_metric);
        let mut final_cache = async_server.shutdown();
        let recommendation = match final_cache.peek(&key) {
            Some(rec) => rec.clone(),
            None => {
                // Only reachable if the worker died mid-run; recompute
                // synchronously.
                let server = InferenceTuningServer::new(
                    self.config.edge_device.clone(),
                    InferenceSpace::for_device(&self.config.edge_device),
                    InferenceObjective::new(self.config.inference_metric),
                )?;
                let (rec, _) = server.tune(&best_profile);
                final_cache.store(&key, rec.clone());
                rec
            }
        };

        if let Some(path) = &self.config.cache_path {
            final_cache.save(path)?;
        }

        let faults = if faults_enabled {
            Some(FaultReport {
                plan: self.config.fault_plan,
                degradation,
                worker_panics,
                injected_losses,
                injected_outages,
                failed_trials: history
                    .records()
                    .iter()
                    .filter(|r| r.outcome.is_failed())
                    .count() as u64,
            })
        } else {
            None
        };

        // The frontier is assembled from the *merged* history, so its
        // contents (like every other reported byte) are invariant to the
        // worker/shard split.
        let frontier = match self.config.pareto {
            Some(k) => crate::engine::report::build_frontier(&history, k),
            None => Vec::new(),
        };

        Ok(TuningReport {
            history,
            best,
            frontier,
            recommendation,
            timeline,
            cache_stats: final_cache.stats(),
            makespan,
            stall_time: stall,
            inference_energy,
            faults,
            fabric: fabric_stats,
            halted: self
                .config
                .halt_after_rungs
                .is_some_and(|rungs| rungs_completed >= rungs),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{PARAM_GPUS, PARAM_MODEL_HP};
    use crate::config::SamplerKind;
    use crate::server::EdgeTune;
    use edgetune_tuner::scheduler::SchedulerConfig;
    use edgetune_tuner::Metric;
    use edgetune_workloads::catalog::WorkloadId;

    fn quick_config() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn end_to_end_run_produces_report() {
        let report = EdgeTune::new(quick_config()).run().unwrap();
        assert!(!report.history().is_empty());
        assert!(report.best_accuracy() > 0.0);
        assert!(report.tuning_runtime().value() > 0.0);
        assert!(report.tuning_energy().value() > 0.0);
        assert!(report.recommendation().batch >= 1);
        assert!(report.recommendation().throughput.value() > 0.0);
        assert!(report.best_config().get(PARAM_MODEL_HP).is_some());
        assert!(report.best_config().get(PARAM_GPUS).is_some());
    }

    #[test]
    fn engine_and_facade_agree() {
        let config = quick_config();
        let from_engine = Engine::new(&config).run().unwrap();
        let from_facade = EdgeTune::new(config).run().unwrap();
        assert_eq!(
            from_engine.to_json().unwrap(),
            from_facade.to_json().unwrap(),
            "the façade must add nothing to the engine"
        );
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let a = EdgeTune::new(quick_config()).run().unwrap();
        let b = EdgeTune::new(quick_config()).run().unwrap();
        assert_eq!(a.best_config(), b.best_config());
        assert_eq!(a.tuning_runtime(), b.tuning_runtime());
        assert_eq!(a.recommendation(), b.recommendation());
        let c = EdgeTune::new(quick_config().with_seed(43)).run().unwrap();
        // Different seed explores differently (history differs).
        assert!(
            c.history().records().len() != a.history().records().len()
                || c.tuning_runtime() != a.tuning_runtime()
                || c.best_config() != a.best_config()
        );
    }

    #[test]
    fn inference_tuning_is_pipelined_not_stalling() {
        // The paper's claim: the inference sweep always fits inside its
        // training trial, so the model server never stalls.
        let report = EdgeTune::new(quick_config()).run().unwrap();
        assert_eq!(
            report.stall_time(),
            Seconds::ZERO,
            "inference must hide behind training"
        );
        assert!((report.timeline().overlap_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tracing_changes_no_report_bytes() {
        let plain = EdgeTune::new(quick_config()).run().unwrap();
        let (traced, trace) = EdgeTune::new(quick_config()).run_traced().unwrap();
        assert_eq!(
            plain.to_json().unwrap(),
            traced.to_json().unwrap(),
            "collecting a trace must be invisible in the report"
        );
        trace.validate().expect("exported trace validates");
        assert!(!trace.trace_events.is_empty());
    }

    #[test]
    fn the_trace_shows_inference_sweeps_pipelined_into_trials() {
        // The paper's Fig. 6 claim, read off the trace itself: at least
        // one inference-sweep span strictly overlaps a training-trial
        // span on the simulated clock.
        let config = quick_config();
        let engine = Engine::new(&config);
        let mut backend = engine.default_backend();
        let tracer = Tracer::new();
        let report = engine.run_inner(&mut backend, &tracer).unwrap();
        assert!(
            crate::trace::has_pipelined_overlap(&tracer.snapshot()),
            "a pipelined study must overlap sweeps with trials"
        );
        assert!((report.timeline().overlap_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a_trace_path_writes_the_chrome_file() {
        let dir = std::env::temp_dir().join("edgetune-trace-path-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.trace.json");
        std::fs::remove_file(&path).ok();
        let _ = EdgeTune::new(quick_config().with_trace_path(&path))
            .run()
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = ChromeTrace::from_json(&text).unwrap();
        trace.validate().expect("written trace validates");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn historical_cache_avoids_retuning_architectures() {
        // Only 3 distinct architectures exist for IC, so with >3 trials
        // the cache must hit.
        let report = EdgeTune::new(quick_config()).run().unwrap();
        let stats = report.cache_stats();
        assert!(
            stats.misses <= 3,
            "at most one miss per architecture: {stats:?}"
        );
        assert!(stats.hits > 0, "repeated architectures must hit: {stats:?}");
    }

    #[test]
    fn inference_energy_is_accounted() {
        let report = EdgeTune::new(quick_config()).run().unwrap();
        assert!(report.inference_energy().value() > 0.0);
        assert!(report.tuning_energy().value() > report.inference_energy().value());
    }

    #[test]
    fn cache_persists_across_runs() {
        let dir = std::env::temp_dir().join("edgetune-server-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::remove_file(&path).ok();

        let cfg = quick_config().with_cache_path(&path);
        let first = EdgeTune::new(cfg.clone()).run().unwrap();
        assert!(path.exists());
        let second = EdgeTune::new(cfg).run().unwrap();
        // Second run starts warm: no misses at all.
        assert_eq!(second.cache_stats().misses, 0, "warm cache should not miss");
        assert!(second.inference_energy().value() < first.inference_energy().value() + 1e-9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hyperband_mode_runs_more_trials() {
        let sha = EdgeTune::new(quick_config()).run().unwrap();
        let hb = EdgeTune::new(quick_config().with_scheduler(SchedulerConfig::new(4, 2.0, 4)))
            .run()
            .unwrap();
        // without_hyperband was only applied to `sha`.
        let _ = (sha, hb);
    }

    #[test]
    fn energy_metric_changes_the_objective() {
        let runtime = EdgeTune::new(quick_config()).run().unwrap();
        let energy = EdgeTune::new(quick_config().with_metric(Metric::Energy))
            .run()
            .unwrap();
        // Both must complete; the recommendations may legitimately agree,
        // but the recommendation metric must be populated either way.
        assert!(runtime.recommendation().energy_per_item.value() > 0.0);
        assert!(energy.recommendation().energy_per_item.value() > 0.0);
    }

    #[test]
    fn accuracy_floor_filters_low_budget_winners() {
        let report = EdgeTune::new(quick_config().with_accuracy_floor(0.3))
            .run()
            .unwrap();
        assert!(
            report.best_accuracy() >= 0.3,
            "winner must respect the floor: {}",
            report.best_accuracy()
        );
    }

    #[test]
    fn random_and_grid_samplers_work() {
        for kind in [SamplerKind::Random, SamplerKind::Grid(3)] {
            let report = EdgeTune::new(quick_config().with_sampler(kind))
                .run()
                .unwrap();
            assert!(!report.history().is_empty(), "{kind:?}");
        }
    }
}

#[cfg(test)]
mod ablation_tests {
    use crate::config::EdgeTuneConfig;
    use crate::server::EdgeTune;
    use edgetune_tuner::scheduler::SchedulerConfig;
    use edgetune_util::units::Seconds;
    use edgetune_workloads::catalog::WorkloadId;

    fn quick_config() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn cache_ablation_retunes_every_architecture() {
        let with_cache = EdgeTune::new(quick_config()).run().unwrap();
        let without = EdgeTune::new(quick_config().without_historical_cache())
            .run()
            .unwrap();
        assert_eq!(without.cache_stats().hits, 0, "no hits without the cache");
        assert!(
            without.cache_stats().misses > with_cache.cache_stats().misses,
            "every trial pays a sweep: {} vs {}",
            without.cache_stats().misses,
            with_cache.cache_stats().misses
        );
        assert!(
            without.inference_energy() > with_cache.inference_energy(),
            "re-tuning costs energy"
        );
        // The recommendation itself is unchanged — the cache is purely a
        // cost optimisation.
        assert_eq!(without.recommendation(), with_cache.recommendation());
    }

    #[test]
    fn pipelining_ablation_puts_sweeps_on_the_critical_path() {
        let pipelined = EdgeTune::new(quick_config()).run().unwrap();
        let synchronous = EdgeTune::new(quick_config().without_pipelining())
            .run()
            .unwrap();
        assert_eq!(pipelined.stall_time(), Seconds::ZERO);
        assert!(
            synchronous.stall_time().value() > 0.0,
            "synchronous sweeps must stall the model server"
        );
        assert!(synchronous.tuning_runtime() > pipelined.tuning_runtime());
        // Synchronous sweeps start after their trial, so nothing
        // overlaps.
        assert!(synchronous.timeline().overlap_fraction() < 0.01);
    }

    #[test]
    fn worker_pool_accepts_multiple_workers() {
        let report = EdgeTune::new(quick_config().with_inference_workers(4))
            .run()
            .unwrap();
        assert!(!report.history().is_empty());
        assert!(report.recommendation().batch >= 1);
    }
}

#[cfg(test)]
mod chaos_tests {
    use std::time::Duration;

    use crate::config::EdgeTuneConfig;
    use crate::server::EdgeTune;
    use edgetune_faults::{FaultPlan, Supervisor};
    use edgetune_tuner::scheduler::SchedulerConfig;
    use edgetune_util::units::Seconds;
    use edgetune_util::Error;
    use edgetune_workloads::catalog::WorkloadId;

    fn quick_config() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(8, 2.0, 8))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn disabled_plan_leaves_the_report_without_fault_keys() {
        let report = EdgeTune::new(quick_config()).run().unwrap();
        assert!(report.faults().is_none());
        let json = report.to_json().unwrap();
        assert!(
            !json.contains("\"faults\"") && !json.contains("\"failure\""),
            "a fault-free report must serialize exactly as before this feature existed"
        );
    }

    #[test]
    fn chaos_run_reports_what_was_injected_and_how_it_degraded() {
        let report = EdgeTune::new(quick_config().with_fault_plan(FaultPlan::uniform(0.25)))
            .run()
            .unwrap();
        let faults = report.faults().expect("chaos runs carry a fault report");
        assert_eq!(faults.plan, FaultPlan::uniform(0.25));
        let d = &faults.degradation;
        assert!(
            !d.is_empty(),
            "a 25% fault rate over a full study must inject something"
        );
        assert_eq!(
            faults.failed_trials,
            report
                .history()
                .records()
                .iter()
                .filter(|r| r.outcome.is_failed())
                .count() as u64
        );
        // The study still produces a usable answer.
        assert!(report.best_accuracy() > 0.0 || report.best().outcome.is_failed());
        assert!(report.recommendation().batch >= 1);
    }

    #[test]
    fn trial_crashes_are_retried_and_survivors_win() {
        let plan = FaultPlan::none().with_trial_crash(0.2);
        let report = EdgeTune::new(quick_config().with_fault_plan(plan))
            .run()
            .unwrap();
        let d = &report.faults().unwrap().degradation;
        assert!(d.trial_crashes > 0, "20% crash rate must fire: {d:?}");
        assert!(
            d.trial_retries > 0,
            "the supervisor must retry crashed trials: {d:?}"
        );
        assert!(
            report.best().outcome.score.is_finite(),
            "the winner must be a surviving trial"
        );
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let config = || quick_config().with_fault_plan(FaultPlan::uniform(0.3));
        let a = EdgeTune::new(config()).run().unwrap();
        let b = EdgeTune::new(config()).run().unwrap();
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn lost_inference_replies_degrade_instead_of_poisoning_the_study() {
        // Every request's worker dies, so no real recommendation ever
        // arrives: the ladder must fall through to stale-cache/default
        // recommendations and the run must still complete.
        let plan = FaultPlan::none().with_worker_panic(1.0);
        let config = quick_config()
            .with_fault_plan(plan)
            .with_reply_timeout(Duration::from_millis(200))
            .with_supervisor(Supervisor::new(edgetune_faults::RetryPolicy {
                max_attempts: 2,
                base_delay: Seconds::new(1.0),
                multiplier: 2.0,
                max_delay: Seconds::new(10.0),
                jitter: 0.5,
            }));
        let report = EdgeTune::new(config).run().unwrap();
        let faults = report.faults().unwrap();
        assert!(faults.injected_losses > 0);
        let d = &faults.degradation;
        assert!(d.worker_losses > 0);
        assert!(
            d.stale_cache_served + d.default_recommendations + d.trials_skipped > 0,
            "lost replies must walk the ladder: {d:?}"
        );
        assert!(report.recommendation().batch >= 1);
    }

    #[test]
    fn resume_under_a_different_seed_is_rejected() {
        let dir = std::env::temp_dir().join("edgetune-resume-seed-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        std::fs::remove_file(&path).ok();
        let _ = EdgeTune::new(quick_config().with_checkpoint_path(&path))
            .run()
            .unwrap();
        assert!(path.exists(), "each rung writes a checkpoint");
        let err = EdgeTune::new(
            quick_config()
                .with_seed(43)
                .with_checkpoint_path(&path)
                .resuming(),
        )
        .run()
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod shard_tests {
    use crate::config::EdgeTuneConfig;
    use crate::server::EdgeTune;
    use edgetune_faults::FaultPlan;
    use edgetune_tuner::scheduler::SchedulerConfig;
    use edgetune_util::Error;
    use edgetune_workloads::catalog::WorkloadId;

    fn quick_config() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(6, 2.0, 6))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn sharding_never_changes_the_report_bytes() {
        let baseline = EdgeTune::new(quick_config()).run().unwrap();
        for shards in [2, 3, 4, 8] {
            let sharded = EdgeTune::new(quick_config().with_study_shards(shards))
                .run()
                .unwrap();
            assert_eq!(
                baseline.to_json().unwrap(),
                sharded.to_json().unwrap(),
                "{shards} shards must reproduce the single-shard report byte for byte"
            );
        }
    }

    #[test]
    fn sharding_composes_with_hyperband() {
        let config = || {
            EdgeTuneConfig::for_workload(WorkloadId::Ic)
                .with_scheduler(SchedulerConfig::new(6, 2.0, 6))
                .with_seed(42)
        };
        let baseline = EdgeTune::new(config()).run().unwrap();
        let sharded = EdgeTune::new(config().with_study_shards(3)).run().unwrap();
        assert_eq!(
            baseline.to_json().unwrap(),
            sharded.to_json().unwrap(),
            "per-bracket stamps must keep HyperBand runs shard-invariant"
        );
    }

    #[test]
    fn shards_and_trial_workers_are_mutually_exclusive() {
        let err = EdgeTune::new(quick_config().with_study_shards(2).with_trial_workers(2))
            .run()
            .unwrap_err();
        assert!(
            matches!(err, Error::InvalidConfig(_)),
            "two competing thread pools must be rejected, got {err:?}"
        );
    }

    #[test]
    fn sharded_chaos_falls_back_to_the_sequential_path() {
        let config = |shards| {
            quick_config()
                .with_fault_plan(FaultPlan::uniform(0.3))
                .with_study_shards(shards)
        };
        let unsharded = EdgeTune::new(config(1)).run().unwrap();
        let sharded = EdgeTune::new(config(4)).run().unwrap();
        assert_eq!(
            unsharded.to_json().unwrap(),
            sharded.to_json().unwrap(),
            "fault injection must disable shard-parallel measurement, not diverge"
        );
    }

    #[test]
    fn sharded_runs_checkpoint_a_manifest_with_shard_files() {
        let dir = std::env::temp_dir().join("edgetune-shard-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        std::fs::remove_file(&path).ok();
        let _ = EdgeTune::new(
            quick_config()
                .with_study_shards(2)
                .with_checkpoint_path(&path),
        )
        .run()
        .unwrap();
        assert!(path.exists(), "each rung writes the manifest");
        let manifest = std::fs::read_to_string(&path).unwrap();
        assert!(
            manifest.contains("\"shard_files\""),
            "a sharded study must leave a manifest, not a plain checkpoint"
        );
        for shard in 0..2 {
            let shard_path = dir.join(format!("study.ckpt.json.shard{shard}"));
            assert!(shard_path.exists(), "missing {}", shard_path.display());
            std::fs::remove_file(&shard_path).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_from_shard_checkpoints_reproduces_the_full_run() {
        let dir = std::env::temp_dir().join("edgetune-shard-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt.json");
        std::fs::remove_file(&path).ok();

        let full = EdgeTune::new(quick_config().with_study_shards(4))
            .run()
            .unwrap();
        let halted = EdgeTune::new(
            quick_config()
                .with_study_shards(4)
                .with_checkpoint_path(&path)
                .with_halt_after_rungs(2),
        )
        .run()
        .unwrap();
        assert!(halted.history().len() < full.history().len());
        let resumed = EdgeTune::new(
            quick_config()
                .with_study_shards(4)
                .with_checkpoint_path(&path)
                .resuming(),
        )
        .run()
        .unwrap();
        assert_eq!(
            full.to_json().unwrap(),
            resumed.to_json().unwrap(),
            "resume from per-shard checkpoints must reproduce the uninterrupted bytes"
        );
        for shard in 0..4 {
            std::fs::remove_file(dir.join(format!("study.ckpt.json.shard{shard}"))).ok();
        }
        std::fs::remove_file(&path).ok();
    }
}
