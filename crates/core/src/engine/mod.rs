//! The tuning engine: orchestration, trial evaluation, and report
//! assembly behind the [`EdgeTune`](crate::server::EdgeTune) façade.
//!
//! The engine is split along Algorithm 1's seams:
//!
//! * [`orchestrator`] — [`Engine`] builds the study (backend, inference
//!   server, sampler, scheduler, checkpoint/resume wiring), runs it, and
//!   assembles the final [`TuningReport`].
//! * [`coordinator`] — the two-tier study layer: [`StudyCoordinator`]
//!   partitions rungs into [`ShardPlan`]s executed by [`EngineShard`]s
//!   on scoped threads, and splits/merges stamped histories so sharded
//!   runs stay byte-identical.
//! * [`evaluator`] — the onefold evaluator couples each training trial
//!   to its pipelined inference request, owns the simulated clock and
//!   rung accounting, and layers real worker threads *under* the
//!   simulated trial-slot scheduler.
//! * [`report`] — the user-facing result types ([`TuningReport`],
//!   [`FaultReport`]) with their serialisation contract.

pub mod coordinator;
pub(crate) mod evaluator;
pub mod orchestrator;
pub mod report;

pub use coordinator::{EngineShard, ShardPlan, StudyCoordinator, TrialStamp};
pub use orchestrator::Engine;
pub use report::{FaultReport, TuningReport};
