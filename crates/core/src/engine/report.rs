//! The user-facing outcome of an EdgeTune run.
//!
//! A [`TuningReport`] is the artefact a tuning service hands back: the
//! full trial history, the winner and its deployment recommendation, the
//! pipelining timeline, cache statistics, and the simulated cost totals.
//! Its JSON form ([`TuningReport::to_json`]) is a stability contract —
//! byte-identical for a fixed seed and configuration regardless of how
//! many real worker threads measured the trials or how many engine
//! shards the study was split across (a sharded run's history is merged
//! back into execution order before the report is assembled) — so
//! snapshot tests can compare runs across refactors and machines.

use edgetune_faults::{DegradationStats, FaultPlan};
use edgetune_tuner::pareto::{FrontPoint, ParetoFront};
use edgetune_tuner::space::Config;
use edgetune_tuner::trial::{History, TrialRecord};
use edgetune_util::units::{Joules, Seconds};
use edgetune_util::{Error, Result};

use crate::cache::CacheStats;
use crate::fabric::FabricStats;
use crate::inference::InferenceRecommendation;
use crate::timeline::Timeline;

/// What the fault-tolerance layer observed during a chaos run: the plan
/// that was injected, every ladder rung exercised, and the failure
/// counters of both servers. Present in a [`TuningReport`] only when a
/// fault plan was active, so fault-free reports are unchanged.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultReport {
    /// The injected fault plan.
    pub plan: FaultPlan,
    /// Faults observed and fallbacks taken by the Model Tuning Server.
    pub degradation: DegradationStats,
    /// Real panics caught by the inference server's supervision loop.
    pub worker_panics: u64,
    /// Inference requests dropped by injected worker deaths.
    pub injected_losses: u64,
    /// Inference sweeps delayed by injected device outages.
    pub injected_outages: u64,
    /// Trials that ended with a failure marker in the history.
    pub failed_trials: u64,
}

/// Assembles a report frontier from a (merged) history: every healthy
/// vectored trial is offered to a [`ParetoFront`] and the canonical
/// top-`k` survives. The input history is already merged into execution
/// order, and the front itself is insertion-order invariant, so the
/// result is byte-identical whatever the worker/shard split.
pub(crate) fn build_frontier(history: &History, k: usize) -> Vec<FrontPoint> {
    let mut front = ParetoFront::new();
    for record in history.records() {
        if record.outcome.is_failed() {
            continue;
        }
        if let Some(vector) = record.outcome.vector {
            front.insert(FrontPoint {
                config: record.config.clone(),
                vector,
                trial: record.id,
            });
        }
    }
    front.top(k).to_vec()
}

/// The outcome of an EdgeTune run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TuningReport {
    pub(crate) history: History,
    pub(crate) best: TrialRecord,
    pub(crate) recommendation: InferenceRecommendation,
    pub(crate) timeline: Timeline,
    pub(crate) cache_stats: CacheStats,
    pub(crate) makespan: Seconds,
    pub(crate) stall_time: Seconds,
    pub(crate) inference_energy: Joules,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub(crate) faults: Option<FaultReport>,
    /// The Pareto frontier of the study when it ran in `--pareto` mode:
    /// up to `k` mutually non-dominated configurations in the canonical
    /// front order. Empty in scalar mode and omitted from JSON so scalar
    /// reports are byte-identical to a build without this feature.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub(crate) frontier: Vec<FrontPoint>,
    /// Whether the run stopped at a `halt_after_rungs` boundary rather
    /// than finishing the study. Never serialised — the JSON form stays
    /// a byte-stability contract over *completed* studies — but a
    /// service driving studies in rung-quantum slices needs to know
    /// whether this slice hit its halt or ran to natural completion.
    #[serde(skip)]
    pub(crate) halted: bool,
    /// Process-fabric supervision counters when the study ran under
    /// `--shard-exec process`. Never serialised: fabric telemetry is
    /// wall-clock-dependent, and the JSON report must stay
    /// byte-identical across execution modes.
    #[serde(skip)]
    pub(crate) fabric: Option<FabricStats>,
}

impl TuningReport {
    /// Full trial history.
    #[must_use]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The winning trial.
    #[must_use]
    pub fn best(&self) -> &TrialRecord {
        &self.best
    }

    /// The winning configuration.
    #[must_use]
    pub fn best_config(&self) -> &Config {
        &self.best.config
    }

    /// Accuracy of the winning trial.
    #[must_use]
    pub fn best_accuracy(&self) -> f64 {
        self.best.outcome.accuracy
    }

    /// The deployment recommendation for the winning architecture —
    /// EdgeTune's extra output over a conventional tuner.
    #[must_use]
    pub fn recommendation(&self) -> &InferenceRecommendation {
        &self.recommendation
    }

    /// Total tuning duration (simulated): with one trial slot this is
    /// the sum of trial runtimes plus any stalls waiting for the
    /// inference server (Fig. 13/14's "tuning duration"); with parallel
    /// trial slots it is the list-scheduled makespan.
    #[must_use]
    pub fn tuning_runtime(&self) -> Seconds {
        self.makespan
    }

    /// Total *resource* time consumed by trials (the sum of their
    /// durations, independent of how many ran concurrently).
    #[must_use]
    pub fn trial_resource_time(&self) -> Seconds {
        self.history.total_runtime()
    }

    /// Total tuning energy: training trials plus the inference server's
    /// sweeps (Fig. 13/14's "tuning energy").
    #[must_use]
    pub fn tuning_energy(&self) -> Joules {
        self.history.total_energy()
    }

    /// Time the model server spent stalled on inference replies (zero
    /// when pipelining fully hides the inference server).
    #[must_use]
    pub fn stall_time(&self) -> Seconds {
        self.stall_time
    }

    /// Energy consumed by inference sweeps alone.
    #[must_use]
    pub fn inference_energy(&self) -> Joules {
        self.inference_energy
    }

    /// The Fig. 6-style pipelining timeline.
    #[must_use]
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Historical-cache statistics of the run.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// What the fault-tolerance layer observed — `None` unless the run
    /// had an active fault plan.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultReport> {
        self.faults.as_ref()
    }

    /// `true` when the run stopped because it reached its configured
    /// `halt_after_rungs` boundary instead of completing the study.
    /// Always `false` on reports parsed back from JSON.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Supervision counters from the process fabric, when the study ran
    /// with `--shard-exec process`. `None` for in-process runs and for
    /// reports parsed back from JSON (the counters are never
    /// serialised).
    #[must_use]
    pub fn fabric_stats(&self) -> Option<&FabricStats> {
        self.fabric.as_ref()
    }

    /// The study's Pareto frontier — empty unless the run was configured
    /// with [`EdgeTuneConfig::with_pareto`](crate::config::EdgeTuneConfig::with_pareto).
    #[must_use]
    pub fn frontier(&self) -> &[FrontPoint] {
        &self.frontier
    }

    /// A compact human-readable summary of the run — what the CLI and
    /// examples print.
    #[must_use]
    pub fn summary(&self) -> String {
        let rec = &self.recommendation;
        let mut summary = format!(
            "winner {} (accuracy {:.1}%, {} trials)\n\
             tuning {:.1} min / {:.1} kJ (stall {:.1}s, cache {}h/{}m)\n\
             deploy on {}: batch {}, {} cores @ {:.2} GHz -> {:.1} items/s, {:.3} J/item",
            self.best.config,
            self.best.outcome.accuracy * 100.0,
            self.history.len(),
            self.tuning_runtime().as_minutes(),
            self.tuning_energy().as_kilojoules(),
            self.stall_time.value(),
            self.cache_stats.hits,
            self.cache_stats.misses,
            rec.device,
            rec.batch,
            rec.cores,
            rec.freq.as_ghz(),
            rec.throughput.value(),
            rec.energy_per_item.value(),
        );
        if !self.frontier.is_empty() {
            summary.push_str(&format!(
                "\npareto frontier: {} configs (accuracy {:.1}%..{:.1}%)",
                self.frontier.len(),
                self.frontier
                    .iter()
                    .map(|p| p.vector.accuracy)
                    .fold(f64::INFINITY, f64::min)
                    * 100.0,
                self.frontier
                    .iter()
                    .map(|p| p.vector.accuracy)
                    .fold(f64::NEG_INFINITY, f64::max)
                    * 100.0,
            ));
        }
        if let Some(faults) = &self.faults {
            let d = &faults.degradation;
            summary.push_str(&format!(
                "\nchaos: {} failed trials ({} crashes, {} stragglers, {} timeouts), \
                 {} retries, {} lost replies \
                 (stale-cache {}, default-rec {}, skipped {})",
                faults.failed_trials,
                d.trial_crashes,
                d.trial_stragglers,
                d.trial_timeouts,
                d.trial_retries,
                d.worker_losses,
                d.stale_cache_served,
                d.default_recommendations,
                d.trials_skipped,
            ));
        }
        summary
    }

    /// Serialises the full report (history, winner, recommendation,
    /// timeline, statistics) to pretty JSON — the artefact a tuning
    /// service would hand back to its user.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if serialisation fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::storage(format!("serialising report: {e}")))
    }

    /// Reads a report previously produced by [`TuningReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if parsing fails.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::storage(format!("parsing report: {e}")))
    }
}

#[cfg(test)]
mod summary_tests {
    use edgetune_tuner::scheduler::SchedulerConfig;
    use edgetune_workloads::catalog::WorkloadId;

    use crate::config::EdgeTuneConfig;
    use crate::server::EdgeTune;

    #[test]
    fn summary_mentions_the_key_outputs() {
        let report = EdgeTune::new(
            EdgeTuneConfig::for_workload(WorkloadId::Ic)
                .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
                .without_hyperband()
                .with_seed(42),
        )
        .run()
        .unwrap();
        let summary = report.summary();
        assert!(summary.contains("winner"), "{summary}");
        assert!(summary.contains("deploy on Raspberry Pi 3B+"), "{summary}");
        assert!(summary.contains("items/s"), "{summary}");
        assert!(summary.contains("J/item"), "{summary}");
    }
}
