//! The onefold evaluator: one training trial coupled to its pipelined
//! inference request, plus all time accounting.
//!
//! Three orthogonal kinds of parallelism meet here:
//!
//! * **Simulated trial slots** (`trial_slots`) model a tuning cluster:
//!   a rung's trials are list-scheduled onto `n` slots and the virtual
//!   clock advances by the rung's makespan instead of the sum of trial
//!   durations. This *changes* the reported numbers — that is the point.
//! * **Real worker threads** (`trial_workers`) merely speed up the
//!   measurement itself: when the backend can snapshot, a rung's raw
//!   [`TrialMeasurement`]s are precomputed concurrently on scoped
//!   threads and then replayed through the exact sequential accounting
//!   path in input order. Cache hits, request sequence numbers, timeline
//!   entries and every clock reading are byte-identical to a
//!   single-threaded run, so reports never depend on the thread count.
//! * **Engine shards** (`study_shards`) replace the work-stealing pool
//!   with the [`StudyCoordinator`]'s plan/execute/merge pipeline: each
//!   shard measures a contiguous slice of the rung on its own snapshot
//!   and forked clock. Like `trial_workers` this only changes wall
//!   clock, never a reported byte — phase B below is the same either
//!   way — but it additionally stamps every trial with its simulated
//!   start and bracket and persists per-shard checkpoint files.
//!
//! All simulated time lives on an [`edgetune_runtime::SimClock`]; every
//! sequential trial advances the clock once, by the exact
//! `outcome.runtime` sum the trial records (and a replayed checkpoint
//! record advances by), while simulated-slot rungs advance once by the
//! rung makespan — so the floating-point trajectory is bit-stable
//! across threads, shards, and checkpoint resume alike.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Duration;

use edgetune_device::profile::WorkProfile;
use edgetune_device::spec::DeviceSpec;
use edgetune_faults::{DegradationLadder, DegradationStats, Fallback, Supervisor, TrialFault};
use edgetune_runtime::{parallel_map_ordered, SimClock};
use edgetune_trace::{Tracer, TrackId};
use edgetune_tuner::budget::TrialBudget;
use edgetune_tuner::objective::{TrainMeasurement, TrainObjective};
use edgetune_tuner::pareto::ObjectiveVector;
use edgetune_tuner::scheduler::Evaluate;
use edgetune_tuner::space::Config;
use edgetune_tuner::trial::{History, TrialFailure, TrialOutcome, TrialRecord};
use edgetune_tuner::Metric;
use edgetune_util::rng::SeedStream;
use edgetune_util::units::{Joules, Seconds};

use crate::async_server::{AsyncInferenceServer, InferenceReply};
use crate::backend::{TrainingBackend, TrialMeasurement};
use crate::cache::CacheKey;
use crate::checkpoint::{ShardManifest, StudyCheckpoint, StudyGlobals};
use crate::engine::coordinator::{StudyCoordinator, TrialStamp};
use crate::fabric::{RungScope, ShardFabric};
use crate::inference::fallback_recommendation;
use crate::trace::{
    timeline_from_trace, CAT_BRACKET, CAT_CACHE, CAT_FAULT, CAT_INFERENCE, CAT_MODEL, CAT_RUNG,
    PROCESS_FAULTS, PROCESS_INFERENCE, PROCESS_MODEL, PROCESS_SCHEDULER,
};

/// Evaluator wiring one training trial to its pipelined inference request.
pub(crate) struct OnefoldEvaluator<'a> {
    pub(crate) backend: &'a mut dyn TrainingBackend,
    pub(crate) inference: &'a AsyncInferenceServer,
    pub(crate) device: &'a DeviceSpec,
    pub(crate) inference_metric: Metric,
    pub(crate) objective: TrainObjective,
    /// Every piece of time accounting is emitted here as trace events;
    /// the report's `Timeline` is derived from the trace at the end
    /// (`crate::trace::timeline_from_trace`), never recorded separately.
    pub(crate) tracer: &'a Tracer,
    pub(crate) pipelining: bool,
    /// Whether the study runs in Pareto mode: successful trials carry an
    /// [`ObjectiveVector`] alongside the scalar score. Off by default so
    /// scalar reports stay byte-identical (the serde field is skipped
    /// when `None`).
    pub(crate) pareto: bool,
    /// Real measurement threads (wall-clock only; see the module docs).
    pub(crate) trial_workers: usize,
    /// Simulated concurrent trial slots (changes the reported makespan).
    pub(crate) trial_slots: usize,
    /// Engine shards rungs are partitioned across (wall-clock only;
    /// mutually exclusive with `trial_workers > 1`).
    pub(crate) study_shards: usize,
    /// Process shard fabric, when `--shard-exec process` asked for
    /// worker-process isolation. `None` runs shards on scoped threads.
    /// The orchestrator keeps ownership so it can export the fabric's
    /// telemetry after the evaluator is gone.
    pub(crate) fabric: Option<&'a mut ShardFabric>,
    /// The study's virtual clock; its final reading is the makespan.
    pub(crate) clock: SimClock,
    pub(crate) stall: Seconds,
    pub(crate) inference_energy: Joules,
    /// Whether a fault plan is active. With `false` every fault-tolerance
    /// branch below is dead code and the evaluator behaves exactly like
    /// the pre-chaos implementation.
    pub(crate) faults_enabled: bool,
    pub(crate) supervisor: Supervisor,
    pub(crate) ladder: &'a DegradationLadder,
    pub(crate) reply_timeout: Duration,
    /// Seed stream for backoff jitter; draws are counted so retried
    /// operations never share a jitter value.
    pub(crate) supervisor_seed: SeedStream,
    pub(crate) backoff_draws: u64,
    pub(crate) stats: DegradationStats,
    /// Injected-fault tallies the resumed prefix already accumulated.
    /// The live server only counts post-resume injections (replayed
    /// trials never resubmit requests), so checkpoints written by a
    /// resumed run add these baselines back in.
    pub(crate) resumed_injected_losses: u64,
    pub(crate) resumed_injected_outages: u64,
    /// Checkpointing: where to write, under which root seed, and how many
    /// rungs have completed (the halt criterion).
    pub(crate) checkpoint_path: Option<&'a PathBuf>,
    pub(crate) root_seed: u64,
    pub(crate) halt_after_rungs: Option<u32>,
    pub(crate) rungs_completed: u32,
    /// Trials restored from a checkpoint, replayed front-to-back instead
    /// of re-executed. Empty on a fresh run.
    pub(crate) replay: VecDeque<TrialRecord>,
    /// Whether replayed trials should synthesise timeline spans. Plain
    /// single-shard checkpoints do not persist the timeline, so replay
    /// reconstructs approximate model-server spans; a shard manifest
    /// carries the exact recorded spans, in which case the orchestrator
    /// restores them wholesale and replay must not add duplicates.
    pub(crate) replay_records_timeline: bool,
    /// Bracket currently executing, set by the scheduler through
    /// [`Evaluate::on_bracket_start`]; part of every trial's stamp.
    pub(crate) current_bracket: u32,
    /// Provenance ledger, one [`TrialStamp`] per history record in push
    /// order — what sharded checkpoints and the merged report key on.
    pub(crate) stamps: Vec<TrialStamp>,
    /// Rungs traced so far — names the scheduler's rung spans.
    pub(crate) rungs_traced: u32,
    /// The currently open bracket span (bracket number, start time); the
    /// next [`Evaluate::on_bracket_start`] or the orchestrator's final
    /// [`OnefoldEvaluator::finish_trace`] closes it.
    pub(crate) bracket_open: Option<(u32, Seconds)>,
    /// Recycled per-rung working buffers (see [`RungScratch`]).
    pub(crate) scratch: RungScratch,
}

/// Per-rung working buffers the evaluator recycles across rungs: the
/// phase-A measurement slots and the simulated-slot load table. A rung
/// `mem::take`s a buffer (so `self` stays free to borrow), fills it, and
/// hands it back when done — steady-state rung execution then reuses one
/// allocation per buffer instead of churning a fresh `Vec` per rung.
#[derive(Debug, Default)]
pub(crate) struct RungScratch {
    measured: Vec<Option<TrialMeasurement>>,
    loads: Vec<Seconds>,
}

/// Everything one trial produced, before timeline/clock accounting.
struct TrialRun {
    outcome: TrialOutcome,
    arch: String,
    train_runtime: Seconds,
    sweep_runtime: Seconds,
    sweep_energy: Joules,
    stall: Seconds,
    cache_hit: bool,
}

impl OnefoldEvaluator<'_> {
    fn next_backoff(&mut self, attempt: u32) -> Seconds {
        let draw = self.backoff_draws;
        self.backoff_draws += 1;
        self.supervisor.backoff(attempt, self.supervisor_seed, draw)
    }

    /// The model-server track of one simulated trial slot. Tracks are
    /// keyed to *simulated* structure, never to real threads or shards,
    /// so the trace stays byte-identical across `trial_workers` and
    /// `study_shards` (the same law the report obeys).
    fn model_track(&self, slot: usize) -> TrackId {
        self.tracer
            .track(PROCESS_MODEL, &format!("trial-slot-{slot}"))
    }

    /// The inference-server track of one simulated trial slot.
    fn sweep_track(&self, slot: usize) -> TrackId {
        self.tracer
            .track(PROCESS_INFERENCE, &format!("sweep-slot-{slot}"))
    }

    /// Emits a fault-injection / degradation instant on the shared
    /// faults track. Ladder instants reuse [`Fallback::trace_label`] so
    /// their names match the plan's serde spelling.
    fn fault_instant(&self, name: &str, ts: Seconds) {
        let track = self.tracer.track(PROCESS_FAULTS, "events");
        self.tracer.instant(track, name, CAT_FAULT, ts);
    }

    /// Closes the currently open bracket span, if any.
    fn close_bracket_span(&mut self) {
        if let Some((bracket, start)) = self.bracket_open.take() {
            let track = self.tracer.track(PROCESS_SCHEDULER, "brackets");
            self.tracer.span(
                track,
                format!("bracket-{bracket}"),
                CAT_BRACKET,
                start,
                self.clock.now(),
            );
        }
    }

    /// Final trace bookkeeping once the scheduler returns: closes the
    /// last bracket span and, when any fault fired, samples the
    /// degradation counters one last time. The orchestrator calls this
    /// before deriving the report's timeline from the trace.
    pub(crate) fn finish_trace(&mut self) {
        self.close_bracket_span();
        if !self.stats.is_empty() {
            let track = self.tracer.track(PROCESS_FAULTS, "events");
            self.tracer.counter(
                track,
                "degradation",
                CAT_FAULT,
                self.clock.now(),
                self.stats.as_counters(),
            );
        }
    }

    /// Walks the degradation ladder after an inference reply was lost.
    /// Returns the salvaged reply (if any rung produced one) and the
    /// extra stall time the recovery cost.
    fn degrade(
        &mut self,
        key: &CacheKey,
        profile: WorkProfile,
    ) -> (Option<InferenceReply>, Seconds) {
        let mut extra = Seconds::ZERO;
        for step in self.ladder.steps() {
            match step {
                Fallback::Retry => {
                    let mut attempt: u32 = 1;
                    while !self.supervisor.give_up(attempt) {
                        extra += self.next_backoff(attempt);
                        self.stats.inference_retries += 1;
                        self.fault_instant(Fallback::Retry.trace_label(), self.clock.now());
                        let Some(pending) = self.inference.try_submit(key.clone(), profile) else {
                            break;
                        };
                        match pending.wait_timeout(self.reply_timeout) {
                            Ok(reply) => return (Some(reply), extra),
                            Err(_) => {
                                self.stats.worker_losses += 1;
                                self.fault_instant("worker-loss", self.clock.now());
                                attempt += 1;
                            }
                        }
                    }
                }
                Fallback::StaleCache => {
                    if let Some(recommendation) = self.inference.peek(key) {
                        self.stats.stale_cache_served += 1;
                        self.fault_instant(Fallback::StaleCache.trace_label(), self.clock.now());
                        let reply = InferenceReply {
                            recommendation,
                            runtime: Seconds::ZERO,
                            energy: Joules::ZERO,
                            cache_hit: true,
                        };
                        return (Some(reply), extra);
                    }
                }
                Fallback::DeviceDefault => {
                    self.stats.default_recommendations += 1;
                    self.fault_instant(Fallback::DeviceDefault.trace_label(), self.clock.now());
                    let reply = InferenceReply {
                        recommendation: fallback_recommendation(self.device, &profile),
                        runtime: Seconds::ZERO,
                        energy: Joules::ZERO,
                        cache_hit: true,
                    };
                    return (Some(reply), extra);
                }
                Fallback::SkipWithPenalty => return (None, extra),
                // The in-process rung belongs to the shard fabric's
                // ladder; it has no meaning for a lost inference reply.
                Fallback::InProcess => {}
            }
        }
        (None, extra)
    }

    /// Runs the training side of one trial under the supervisor: injected
    /// crashes are retried with backoff until success, retry exhaustion,
    /// or the deadline. Returns the successful measurement (with the
    /// wasted time/energy of failed attempts folded in) or the failure to
    /// record. A `precomputed` measurement (from the real-thread rung
    /// phase) substitutes for the first backend call.
    fn train_supervised(
        &mut self,
        config: &Config,
        budget: TrialBudget,
        mut precomputed: Option<TrialMeasurement>,
    ) -> std::result::Result<(Seconds, Joules, f64), (TrialFailure, Seconds, Joules)> {
        let mut attempt: u32 = 1;
        let mut paid_runtime = Seconds::ZERO;
        let mut paid_energy = Joules::ZERO;
        // Clock-domain deadline: the trial forks a clock from the study
        // clock and pays every crashed attempt's runtime and backoff
        // into it, so injected hangs advance simulated time and the
        // deadline is a point on that shared timeline instead of a
        // privately accumulated elapsed counter. Inside a shard the
        // fork starts at the shard's local time, so deadlines stay
        // consistent with the shard's view of the study.
        let trial_clock = SimClock::at(self.clock.now());
        let trial_start = trial_clock.now();
        loop {
            let trial = match precomputed.take() {
                Some(measurement) => measurement,
                None => self.backend.run_trial(config, budget),
            };
            match trial.injected {
                Some(TrialFault::Crash) => {
                    self.stats.trial_crashes += 1;
                    paid_runtime += trial.runtime;
                    paid_energy += trial.energy;
                    trial_clock.advance(trial.runtime);
                    self.fault_instant("trial-crash", trial_clock.now());
                    if self
                        .supervisor
                        .deadline_exceeded_since(&trial_clock, trial_start)
                    {
                        self.stats.trial_timeouts += 1;
                        self.fault_instant("trial-timeout", trial_clock.now());
                        return Err((TrialFailure::Timeout, paid_runtime, paid_energy));
                    }
                    if self.supervisor.give_up(attempt) {
                        self.stats.trials_skipped += 1;
                        self.fault_instant("trial-skipped", trial_clock.now());
                        return Err((TrialFailure::Crash, paid_runtime, paid_energy));
                    }
                    let backoff = self.next_backoff(attempt);
                    paid_runtime += backoff;
                    trial_clock.advance(backoff);
                    self.stats.trial_retries += 1;
                    self.fault_instant("trial-retry", trial_clock.now());
                    attempt += 1;
                }
                Some(TrialFault::Straggle { .. }) => {
                    self.stats.trial_stragglers += 1;
                    self.fault_instant("trial-straggle", trial_clock.now());
                    return Ok((
                        paid_runtime + trial.runtime,
                        paid_energy + trial.energy,
                        trial.accuracy,
                    ));
                }
                None => {
                    return Ok((
                        paid_runtime + trial.runtime,
                        paid_energy + trial.energy,
                        trial.accuracy,
                    ));
                }
            }
        }
    }

    /// Runs one trial plus its pipelined inference request, with no
    /// global accounting.
    fn run_one(
        &mut self,
        config: &Config,
        budget: TrialBudget,
        precomputed: Option<TrialMeasurement>,
    ) -> TrialRun {
        // (1) Fire the inference request as soon as the architecture is
        //     known — before training starts (Algorithm 1, line 6).
        let (arch, profile) = self.backend.architecture(config);
        let key = CacheKey::new(
            self.device.name.clone(),
            arch.clone(),
            self.inference_metric,
        );
        let pending = self.inference.submit(key.clone(), profile);

        // (2) Run the training trial (supervised when faults are active).
        let (train_runtime, train_energy, accuracy) =
            match self.train_supervised(config, budget, precomputed) {
                Ok(success) => success,
                Err((failure, paid_runtime, paid_energy)) => {
                    // The trial is abandoned; still collect (and account)
                    // its pipelined sweep so the queue drains and the
                    // sweep's energy is not silently lost.
                    let (sweep_runtime, sweep_energy, cache_hit) =
                        match pending.wait_timeout(self.reply_timeout) {
                            Ok(reply) => (reply.runtime, reply.energy, reply.cache_hit),
                            Err(_) => (Seconds::ZERO, Joules::ZERO, true),
                        };
                    return TrialRun {
                        outcome: TrialOutcome::failed(
                            failure,
                            paid_runtime,
                            paid_energy + sweep_energy,
                        ),
                        arch,
                        train_runtime: paid_runtime,
                        sweep_runtime,
                        sweep_energy,
                        stall: Seconds::ZERO,
                        cache_hit,
                    };
                }
            };

        // (3) Collect the inference reply, degrading when it is lost.
        let (reply, extra_stall) = match pending.wait_timeout(self.reply_timeout) {
            Ok(reply) => (Some(reply), Seconds::ZERO),
            Err(_) if self.faults_enabled => {
                self.stats.worker_losses += 1;
                self.fault_instant("worker-loss", self.clock.now());
                self.degrade(&key, profile)
            }
            Err(_) => (None, Seconds::ZERO),
        };
        let Some(reply) = reply else {
            // Fault-free: the server died — mark the trial infeasible
            // rather than crash the job (legacy behaviour, no marker).
            // Chaos: the ladder ran dry — skip with a penalty score.
            let outcome = if self.faults_enabled {
                self.stats.trials_skipped += 1;
                self.fault_instant(Fallback::SkipWithPenalty.trace_label(), self.clock.now());
                TrialOutcome::failed(
                    TrialFailure::InferenceLoss,
                    train_runtime + extra_stall,
                    train_energy,
                )
            } else {
                TrialOutcome::new(f64::INFINITY, accuracy, train_runtime, train_energy)
            };
            return TrialRun {
                outcome,
                arch,
                train_runtime,
                sweep_runtime: Seconds::ZERO,
                sweep_energy: Joules::ZERO,
                stall: extra_stall,
                cache_hit: true,
            };
        };
        // Pipelined: only the sweep's excess over its trial stalls the
        // model server. Synchronous (ablation): the whole sweep sits on
        // the critical path after the trial.
        let base_stall = if self.pipelining {
            Seconds::new((reply.runtime.value() - train_runtime.value()).max(0.0))
        } else {
            reply.runtime
        };
        let stall = base_stall + extra_stall;

        // (4) Combine both servers' metrics in the ratio objective.
        let measurement = TrainMeasurement {
            accuracy,
            train_time: train_runtime,
            train_energy,
            inference_time: Some(reply.recommendation.latency_per_item),
            inference_energy: Some(reply.recommendation.energy_per_item),
        };
        let score = self.objective.score(&measurement);
        let mut outcome = TrialOutcome::new(
            score,
            accuracy,
            train_runtime + stall,
            train_energy + reply.energy,
        );
        if self.pareto {
            if let Some(vector) =
                ObjectiveVector::from_measurement(&measurement, self.objective.metric())
            {
                outcome = outcome.with_vector(vector);
            }
        }
        TrialRun {
            outcome,
            arch,
            train_runtime,
            sweep_runtime: reply.runtime,
            sweep_energy: reply.energy,
            stall,
            cache_hit: reply.cache_hit,
        }
    }

    /// Trace/clock accounting for one trial placed at `start` on a
    /// simulated `slot`. Emission order is part of the report contract:
    /// the trial span leads and its sweep span follows immediately —
    /// even though a non-pipelined sweep *starts* later —
    /// because [`timeline_from_trace`] walks emission order to keep the
    /// report's timeline JSON byte-identical to the pre-trace recorder.
    fn record(&mut self, id: u64, run: &TrialRun, start: Seconds, slot: usize) {
        let busy_end = start + run.train_runtime;
        let model = self.model_track(slot);
        self.tracer
            .span(model, format!("trial-{id}"), CAT_MODEL, start, busy_end);
        if !run.cache_hit && run.sweep_runtime.value() > 0.0 {
            // Summation order matters for the serialised end: the clock
            // advances by one `train + stall` sum, so a non-pipelined
            // sweep must end at `start + (train + sweep)` — computing
            // `(start + train) + sweep` instead can land one ulp past
            // the next trial's start and fake an overlap.
            let (sweep_start, sweep_end) = if self.pipelining {
                (start, start + run.sweep_runtime)
            } else {
                (busy_end, start + (run.train_runtime + run.sweep_runtime))
            };
            let sweep = self.sweep_track(slot);
            self.tracer.span(
                sweep,
                run.arch.clone(),
                CAT_INFERENCE,
                sweep_start,
                sweep_end,
            );
        }
        // Cache telemetry rides on its own track: a hit/miss instant per
        // trial plus a counter sample read from the server's single
        // tally (the same numbers checkpoints persist).
        let cache_track = self.tracer.track(PROCESS_INFERENCE, "historical-cache");
        let verdict = if run.cache_hit {
            "cache-hit"
        } else {
            "cache-miss"
        };
        self.tracer.instant(cache_track, verdict, CAT_CACHE, start);
        self.tracer.counter(
            cache_track,
            "historical-cache",
            CAT_CACHE,
            start,
            self.inference.cache_stats().as_counters(),
        );
        self.stall += run.stall;
        self.inference_energy += run.sweep_energy;
        self.stamps.push(TrialStamp {
            start,
            bracket: self.current_bracket,
        });
    }

    /// Phase A of rung execution: measure the rung's trials on real
    /// scoped worker threads, one backend snapshot per worker. Fills
    /// `measured` (a recycled scratch buffer) in input order, ready to be
    /// replayed through the unchanged sequential accounting path, and
    /// leaves it empty — sequential execution — when threads are not
    /// requested, cannot help, or would change results (an active fault
    /// plan makes trial fate order-dependent; a backend without snapshots
    /// cannot be shared).
    fn measure_rung(
        &mut self,
        trials: &[(u64, Config, TrialBudget)],
        measured: &mut Vec<Option<TrialMeasurement>>,
    ) {
        measured.clear();
        if trials.len() <= 1 || self.faults_enabled {
            return;
        }
        if self.study_shards > 1 {
            // Process-mode phase A: ship each plan to a supervised
            // worker process. Only when the backend can describe itself
            // as a `BackendSpec`; otherwise (real datasets, fault
            // cursors) fall through to the thread path below — same
            // bytes either way.
            if let Some(fabric) = self.fabric.as_deref_mut() {
                if let Some(spec) = self.backend.process_spec() {
                    // The scope names this exact rung execution — the
                    // remote transport's idempotency key. `rungs_traced`
                    // was already bumped for this rung, so it is unique
                    // across brackets.
                    let scope = RungScope {
                        study: self.root_seed,
                        bracket: self.current_bracket,
                        rung: self.rungs_traced,
                    };
                    let raw = fabric.measure_rung(
                        scope,
                        &spec,
                        self.clock.now(),
                        trials,
                        self.study_shards,
                    );
                    measured.extend(raw.into_iter().map(Some));
                    return;
                }
            }
            // Shard-level phase A: the coordinator partitions the rung
            // into contiguous plans and runs one `EngineShard` (backend
            // snapshot + forked clock) per plan on its own scoped
            // thread. Same contract as the work-stealing pool below:
            // measurements come back in input order and feed the
            // unchanged phase B.
            let coordinator = StudyCoordinator::new(self.study_shards);
            if let Some(raw) = coordinator.measure_rung(&*self.backend, self.clock.now(), trials) {
                measured.extend(raw.into_iter().map(Some));
            }
            return;
        }
        if self.trial_workers <= 1 {
            return;
        }
        let workers = self.trial_workers.min(trials.len());
        let mut snapshots = Vec::with_capacity(workers);
        for _ in 0..workers {
            let Some(snapshot) = self.backend.parallel_snapshot() else {
                return;
            };
            snapshots.push(snapshot);
        }
        let raw = parallel_map_ordered(trials, snapshots, |backend, _index, trial| {
            backend.run_trial(&trial.1, trial.2)
        });
        measured.extend(raw.into_iter().map(Some));
    }
}

impl Evaluate for OnefoldEvaluator<'_> {
    fn evaluate(&mut self, id: u64, config: &Config, budget: TrialBudget) -> TrialOutcome {
        // Resume: trials already in the checkpoint are replayed, not
        // re-executed. The scheduler regenerates the identical (id,
        // config) sequence from the shared seed; a mismatch means the
        // checkpoint belongs to a different run, so replay is abandoned
        // and the trial executes live.
        if let Some(front) = self.replay.front() {
            if front.id == id && front.config == *config {
                let record = self.replay.pop_front().expect("front exists");
                let start = self.clock.now();
                if self.replay_records_timeline {
                    let track = self.model_track(0);
                    self.tracer.span(
                        track,
                        format!("trial-{id}"),
                        CAT_MODEL,
                        start,
                        start + record.outcome.runtime,
                    );
                }
                // Replayed trials reproduce the original clock
                // trajectory, so their stamps match the original run's.
                self.stamps.push(TrialStamp {
                    start,
                    bracket: self.current_bracket,
                });
                self.clock.advance(record.outcome.runtime);
                return record.outcome;
            }
            self.replay.clear();
        }
        let run = self.run_one(config, budget, None);
        let start = self.clock.now();
        self.record(id, &run, start, 0);
        // One advance by the recorded runtime — the same sum a replayed
        // checkpoint record advances by (`outcome.runtime` is computed as
        // `train + stall` on every path), so a resumed clock retraces the
        // original trajectory bit for bit.
        self.clock.advance(run.outcome.runtime);
        run.outcome
    }

    fn evaluate_rung(&mut self, trials: Vec<(u64, Config, TrialBudget)>) -> Vec<TrialOutcome> {
        // Wrap the whole rung — replayed, sequential, or slot-scheduled
        // — in a scheduler-track span so the trace shows the rung
        // structure the multi-fidelity budget imposes.
        let rung_index = self.rungs_traced;
        self.rungs_traced += 1;
        let trial_count = trials.len();
        let rung_start = self.clock.now();
        let outcomes = self.run_rung(trials);
        let rung_track = self.tracer.track(PROCESS_SCHEDULER, "rungs");
        self.tracer.span_with_args(
            rung_track,
            format!("rung-{rung_index}"),
            CAT_RUNG,
            rung_start,
            self.clock.now(),
            vec![("trials".to_string(), trial_count.to_string())],
        );
        outcomes
    }

    fn on_bracket_start(&mut self, bracket: u32) {
        self.close_bracket_span();
        self.bracket_open = Some((bracket, self.clock.now()));
        self.current_bracket = bracket;
    }

    fn on_rung_complete(&mut self, history: &History) {
        self.rungs_completed += 1;
        if self.faults_enabled && !self.stats.is_empty() {
            let track = self.tracer.track(PROCESS_FAULTS, "events");
            self.tracer.counter(
                track,
                "degradation",
                CAT_FAULT,
                self.clock.now(),
                self.stats.as_counters(),
            );
        }
        if let Some(path) = self.checkpoint_path {
            // A failed checkpoint write must never kill the study: the
            // run is still correct, only resumability is lost. Both
            // layouts carry the same study-global state; cache counters
            // and the timeline come from their single sources of truth
            // — the server's tally and the trace.
            let globals = StudyGlobals {
                cache_stats: self.inference.cache_stats(),
                cache: self.inference.cache_snapshot(),
                timeline: timeline_from_trace(self.tracer),
                stall: self.stall,
                inference_energy: self.inference_energy,
                degradation: self.stats,
                backoff_draws: self.backoff_draws,
                fault_cursor: self.backend.fault_cursor(),
                inference_cursor: self.inference.submitted(),
                injected_losses: self.resumed_injected_losses + self.inference.injected_losses(),
                injected_outages: self.resumed_injected_outages + self.inference.injected_outages(),
            };
            if self.study_shards > 1 && self.stamps.len() == history.len() {
                // Sharded layout: one stamped trial file per shard plus
                // the manifest carrying the study-global state.
                let coordinator = StudyCoordinator::new(self.study_shards);
                let _ = ShardManifest::save_sharded(
                    path,
                    self.root_seed,
                    &coordinator.shard_histories(history, &self.stamps),
                    globals,
                );
            } else {
                let _ = StudyCheckpoint::new(self.root_seed, history, globals).save(path);
            }
        }
    }

    fn should_halt(&self) -> bool {
        self.halt_after_rungs
            .is_some_and(|rungs| self.rungs_completed >= rungs)
    }
}

impl OnefoldEvaluator<'_> {
    /// Executes one rung — replay, sequential, or simulated slots.
    fn run_rung(&mut self, trials: Vec<(u64, Config, TrialBudget)>) -> Vec<TrialOutcome> {
        // Replayed trials must go through `evaluate`'s front-of-queue
        // matching one at a time.
        if !self.replay.is_empty() {
            return trials
                .into_iter()
                .map(|(id, config, budget)| self.evaluate(id, &config, budget))
                .collect();
        }
        // Phase A: real threads precompute the measurements when that is
        // provably invisible in the results. The buffer is recycled
        // scratch (taken out of `self` so `run_one` stays free to borrow
        // it mutably) and is handed back once the rung is accounted.
        let mut measured = std::mem::take(&mut self.scratch.measured);
        self.measure_rung(&trials, &mut measured);
        if self.trial_slots <= 1 || trials.len() <= 1 {
            // Phase B, one slot: the exact sequential accounting path.
            let outcomes = trials
                .into_iter()
                .enumerate()
                .map(|(index, (id, config, budget))| {
                    let precomputed = measured.get_mut(index).and_then(Option::take);
                    let run = self.run_one(&config, budget, precomputed);
                    let start = self.clock.now();
                    self.record(id, &run, start, 0);
                    self.clock.advance(run.outcome.runtime);
                    run.outcome
                })
                .collect();
            measured.clear();
            self.scratch.measured = measured;
            return outcomes;
        }
        // Phase B, simulated parallel slots: the rung's trials are
        // list-scheduled onto `trial_slots` slots; the rung advances
        // the clock by its makespan, not by the sum of trial durations.
        let runs: Vec<(u64, TrialRun)> = trials
            .into_iter()
            .enumerate()
            .map(|(index, (id, config, budget))| {
                let precomputed = measured.get_mut(index).and_then(Option::take);
                let run = self.run_one(&config, budget, precomputed);
                (id, run)
            })
            .collect();
        measured.clear();
        self.scratch.measured = measured;
        let rung_start = self.clock.now();
        let mut loads = std::mem::take(&mut self.scratch.loads);
        loads.clear();
        loads.resize(self.trial_slots, Seconds::ZERO);
        let mut outcomes = Vec::with_capacity(runs.len());
        for (id, run) in runs {
            let (slot, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.value().partial_cmp(&b.1.value()).expect("finite loads"))
                .expect("at least one worker");
            let start = rung_start + loads[slot];
            self.record(id, &run, start, slot);
            loads[slot] = (start + run.train_runtime + run.stall) - rung_start;
            outcomes.push(run.outcome);
        }
        let makespan = loads.iter().copied().fold(Seconds::ZERO, Seconds::max);
        self.clock.advance(makespan);
        self.scratch.loads = loads;
        outcomes
    }
}

#[cfg(test)]
mod parallel_tests {
    use edgetune_tuner::scheduler::SchedulerConfig;
    use edgetune_workloads::catalog::WorkloadId;

    use crate::config::EdgeTuneConfig;
    use crate::server::EdgeTune;

    fn base() -> EdgeTuneConfig {
        EdgeTuneConfig::for_workload(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(8, 2.0, 8))
            .without_hyperband()
            .with_seed(42)
    }

    #[test]
    fn parallel_trials_shrink_the_makespan_not_the_work() {
        let sequential = EdgeTune::new(base()).run().unwrap();
        let parallel = EdgeTune::new(base().with_trial_slots(4)).run().unwrap();
        // Same trials, same evidence, same winner.
        assert_eq!(sequential.history().len(), parallel.history().len());
        assert_eq!(sequential.best_config(), parallel.best_config());
        // Resource time is identical; simulated wall time shrinks.
        assert_eq!(
            sequential.trial_resource_time(),
            parallel.trial_resource_time(),
            "parallelism must not change the work done"
        );
        assert!(
            parallel.tuning_runtime().value() < sequential.tuning_runtime().value() * 0.6,
            "4 slots should cut the makespan substantially: {} vs {}",
            parallel.tuning_runtime(),
            sequential.tuning_runtime()
        );
        // Energy is work, not wall time: unchanged.
        assert_eq!(sequential.tuning_energy(), parallel.tuning_energy());
    }

    #[test]
    fn sequential_makespan_equals_resource_time() {
        let report = EdgeTune::new(base()).run().unwrap();
        assert!(
            (report.tuning_runtime().value() - report.trial_resource_time().value()).abs() < 1e-6,
            "one slot: makespan == sum of trial durations"
        );
    }

    #[test]
    fn parallel_makespan_is_bounded_by_theory() {
        // makespan >= resource_time / slots and >= longest trial.
        let report = EdgeTune::new(base().with_trial_slots(3)).run().unwrap();
        let lower_bound = report.trial_resource_time().value() / 3.0;
        assert!(report.tuning_runtime().value() >= lower_bound - 1e-6);
        let longest = report
            .history()
            .records()
            .iter()
            .map(|r| r.outcome.runtime.value())
            .fold(0.0f64, f64::max);
        assert!(report.tuning_runtime().value() >= longest - 1e-6);
        assert!(report.tuning_runtime() <= report.trial_resource_time());
    }

    #[test]
    fn real_threads_change_no_reported_numbers() {
        // `trial_workers` is wall-clock engineering: the full JSON
        // artefact must be byte-identical whatever the thread count.
        let sequential = EdgeTune::new(base()).run().unwrap();
        let threaded = EdgeTune::new(base().with_trial_workers(4)).run().unwrap();
        assert_eq!(
            sequential.to_json().unwrap(),
            threaded.to_json().unwrap(),
            "real threads must be invisible in the report"
        );
    }

    #[test]
    fn real_threads_layer_under_simulated_slots() {
        // Threads and slots compose: the slot-scheduled makespan is the
        // same whether the measurements came from one thread or four.
        let unthreaded = EdgeTune::new(base().with_trial_slots(4)).run().unwrap();
        let threaded = EdgeTune::new(base().with_trial_slots(4).with_trial_workers(4))
            .run()
            .unwrap();
        assert_eq!(
            unthreaded.to_json().unwrap(),
            threaded.to_json().unwrap(),
            "threads must not disturb the slot scheduler"
        );
    }

    #[test]
    fn study_shards_change_no_reported_numbers() {
        // Sharded measurement feeds the same phase-B accounting path;
        // the full JSON artefact must be byte-identical for any count.
        let unsharded = EdgeTune::new(base()).run().unwrap();
        for shards in [2, 4] {
            let sharded = EdgeTune::new(base().with_study_shards(shards))
                .run()
                .unwrap();
            assert_eq!(
                unsharded.to_json().unwrap(),
                sharded.to_json().unwrap(),
                "study_shards={shards} must be invisible in the report"
            );
        }
    }

    #[test]
    fn shards_layer_under_simulated_slots() {
        // Shards and slots compose the same way threads and slots do.
        let unsharded = EdgeTune::new(base().with_trial_slots(4)).run().unwrap();
        let sharded = EdgeTune::new(base().with_trial_slots(4).with_study_shards(2))
            .run()
            .unwrap();
        assert_eq!(
            unsharded.to_json().unwrap(),
            sharded.to_json().unwrap(),
            "shards must not disturb the slot scheduler"
        );
    }

    #[test]
    fn chaos_runs_fall_back_to_sequential_measurement_under_sharding() {
        // With a fault plan the backend declines snapshots, so sharded
        // measurement degrades to the sequential path and chaos runs
        // stay shard-count-invariant.
        use edgetune_faults::FaultPlan;
        let chaos = |shards: usize| {
            EdgeTune::new(
                base()
                    .with_fault_plan(FaultPlan::uniform(0.3))
                    .with_study_shards(shards),
            )
            .run()
            .unwrap()
        };
        assert_eq!(
            chaos(1).to_json().unwrap(),
            chaos(4).to_json().unwrap(),
            "fault-plan runs must stay deterministic across shard counts"
        );
    }

    #[test]
    fn chaos_runs_refuse_parallel_measurement_but_still_match() {
        // With a fault plan the backend declines snapshots; the engine
        // must fall back to sequential measurement and the report must
        // still not depend on the requested thread count.
        use edgetune_faults::FaultPlan;
        let chaos = |workers: usize| {
            let mut config = base().with_fault_plan(FaultPlan::uniform(0.3));
            if workers > 1 {
                config = config.with_trial_workers(workers);
                // Undo the inference-pool bump so the only difference
                // under test is the measurement thread count.
                config.inference_workers = 1;
            }
            EdgeTune::new(config).run().unwrap()
        };
        let sequential = chaos(1);
        let threaded = chaos(4);
        assert_eq!(
            sequential.to_json().unwrap(),
            threaded.to_json().unwrap(),
            "fault-plan runs must serialize measurement and stay deterministic"
        );
    }
}
