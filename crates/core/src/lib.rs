//! E D G E T U N E — inference-aware multi-parameter tuning middleware.
//!
//! This crate is a from-scratch Rust reproduction of the system described
//! in *EdgeTune: Inference-Aware Multi-Parameter Tuning* (Rocha, Felber,
//! Schiavoni, Chen — Middleware 2022). EdgeTune tunes a deep-learning
//! workload's **model hyperparameters**, **training hyperparameters** and
//! **system parameters** in one joint ("onefold") search whose objective
//! also accounts for *inference* performance on emulated edge devices:
//!
//! * the [`server::EdgeTune`] job (the Model Tuning Server role) runs
//!   training trials under a
//!   multi-fidelity budget (the multi-budget of Algorithm 2) and scores
//!   them with the §4.4 ratio objectives,
//! * for every candidate architecture it asynchronously consults the
//!   [`inference::InferenceTuningServer`], which searches inference batch
//!   size / CPU cores / frequency on an emulated edge device
//!   ([`async_server::AsyncInferenceServer`] runs it on a background
//!   thread, pipelined with training, per Algorithm 1 / Fig. 6),
//! * results are memoised in a persistent [`cache::HistoricalCache`]
//!   keyed by architecture signature, so a structure is never re-tuned,
//! * the [`batching`] module sizes inference batches for the two serving
//!   scenarios of Fig. 8 (fixed-frequency N-sample queries and Poisson
//!   multi-stream arrivals),
//! * the [`serve`] module deploys tuned configurations into the
//!   `edgetune-serving` runtime and re-tunes them online when the live
//!   arrival rate drifts ([`serve::ScenarioRetuner`]),
//! * the user receives the winning configuration **plus** deployment
//!   recommendations ([`inference::InferenceRecommendation`]).
//!
//! Training itself goes through the [`backend::TrainingBackend`]
//! abstraction: the default [`backend::SimTrainingBackend`] drives the
//! calibrated workload models of `edgetune-workloads` on the emulated
//! Titan RTX node, and [`backend::NnTrainingBackend`] drives *real*
//! gradient-descent training from `edgetune-nn`.
//!
//! # Quickstart
//!
//! ```
//! use edgetune::prelude::*;
//!
//! let config = EdgeTuneConfig::for_workload(WorkloadId::Ic)
//!     .with_scheduler(SchedulerConfig::new(4, 2.0, 3))
//!     .with_seed(7);
//! let report = EdgeTune::new(config).run()?;
//! assert!(report.best_accuracy() > 0.0);
//! println!("deploy with {:?}", report.recommendation());
//! # Ok::<(), edgetune_util::Error>(())
//! ```

pub mod async_server;
pub mod backend;
pub mod batching;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod fabric;
pub mod inference;
pub mod scenario;
pub mod serve;
pub mod server;
pub mod timeline;
pub mod trace;
pub mod transfer;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::inference::{InferenceRecommendation, InferenceSpace};
    pub use crate::server::{EdgeTune, EdgeTuneConfig, TuningReport};
    pub use edgetune_faults::{DegradationLadder, FaultPlan, RetryPolicy, Supervisor};
    pub use edgetune_tuner::{BudgetPolicy, Metric, SchedulerConfig};
    pub use edgetune_workloads::WorkloadId;
}

pub use engine::Engine;
pub use inference::{InferenceRecommendation, InferenceSpace, InferenceTuningServer};
pub use serve::ScenarioRetuner;
pub use server::{EdgeTune, EdgeTuneConfig, TuningReport};
pub use transfer::{TransferIndex, TransferKey};
