//! Pipelining timeline (Fig. 6).
//!
//! Records when, in *simulated* time, each training trial and each
//! inference-tuning job started and ended, so the overlap between the
//! Model and Inference servers can be inspected and rendered — the
//! paper's Fig. 6 illustration of the onefold pipeline.
//!
//! Since the tracing layer landed, the timeline is a thin *view*: the
//! engine emits trial/sweep spans to an `edgetune-trace` tracer, and
//! the report's timeline is derived from that event stream by
//! `crate::trace::timeline_from_trace` (in emission order, preserving
//! this type's long-standing byte-stable JSON contract). The type
//! itself is unchanged so serialized reports stay identical.

use edgetune_util::units::Seconds;
use serde::{Deserialize, Serialize};

/// Which server a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lane {
    /// The Model Tuning Server (training trials).
    ModelServer,
    /// The Inference Tuning Server (inference sweeps).
    InferenceServer,
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::ModelServer => write!(f, "model"),
            Lane::InferenceServer => write!(f, "inference"),
        }
    }
}

/// One span of activity on a lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Which server was busy.
    pub lane: Lane,
    /// Human-readable label (trial id / architecture).
    pub label: String,
    /// Simulated start time.
    pub start: Seconds,
    /// Simulated end time.
    pub end: Seconds,
}

impl Span {
    /// Span duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// The recorded timeline of one tuning run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// An empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Records a span.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record(&mut self, lane: Lane, label: impl Into<String>, start: Seconds, end: Seconds) {
        assert!(end >= start, "span must not end before it starts");
        self.spans.push(Span {
            lane,
            label: label.into(),
            start,
            end,
        });
    }

    /// All spans in recording order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans on one lane.
    #[must_use]
    pub fn lane(&self, lane: Lane) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.lane == lane).collect()
    }

    /// End of the latest span (total simulated makespan).
    #[must_use]
    pub fn makespan(&self) -> Seconds {
        self.spans
            .iter()
            .map(|s| s.end)
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Total busy time of a lane.
    #[must_use]
    pub fn busy_time(&self, lane: Lane) -> Seconds {
        self.lane(lane).iter().map(|s| s.duration()).sum()
    }

    /// Fraction of inference-server busy time that overlaps model-server
    /// busy time — the degree of pipelining (1.0 = fully hidden behind
    /// training, the paper's design goal).
    #[must_use]
    pub fn overlap_fraction(&self) -> f64 {
        let inference = self.lane(Lane::InferenceServer);
        let model = self.lane(Lane::ModelServer);
        let total: f64 = inference.iter().map(|s| s.duration().value()).sum();
        if total == 0.0 {
            return 1.0;
        }
        let mut overlapped = 0.0;
        for i in &inference {
            for m in &model {
                let lo = i.start.value().max(m.start.value());
                let hi = i.end.value().min(m.end.value());
                if hi > lo {
                    overlapped += hi - lo;
                }
            }
        }
        (overlapped / total).min(1.0)
    }

    /// Renders a coarse ASCII Gantt chart (Fig. 6 style), `width`
    /// characters wide.
    #[must_use]
    pub fn render_ascii(&self, width: usize) -> String {
        let span = self.makespan().value();
        if span <= 0.0 || width == 0 {
            return String::new();
        }
        let mut out = String::new();
        for lane in [Lane::ModelServer, Lane::InferenceServer] {
            let mut row = vec![b'.'; width];
            for s in self.lane(lane) {
                let lo = ((s.start.value() / span) * width as f64) as usize;
                let hi = (((s.end.value() / span) * width as f64).ceil() as usize).min(width);
                let mark = if lane == Lane::ModelServer {
                    b'#'
                } else {
                    b'='
                };
                for c in row.iter_mut().take(hi).skip(lo) {
                    *c = mark;
                }
            }
            out.push_str(&format!(
                "{:>9} |{}|\n",
                lane.to_string(),
                String::from_utf8(row).expect("ascii")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn records_and_measures_spans() {
        let mut t = Timeline::new();
        t.record(Lane::ModelServer, "trial-0", s(0.0), s(10.0));
        t.record(Lane::InferenceServer, "arch-a", s(0.0), s(4.0));
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.makespan(), s(10.0));
        assert_eq!(t.busy_time(Lane::ModelServer), s(10.0));
        assert_eq!(t.busy_time(Lane::InferenceServer), s(4.0));
        assert_eq!(t.spans()[0].duration(), s(10.0));
    }

    #[test]
    fn full_overlap_when_inference_hides_behind_training() {
        let mut t = Timeline::new();
        t.record(Lane::ModelServer, "trial-0", s(0.0), s(10.0));
        t.record(Lane::InferenceServer, "arch-a", s(1.0), s(5.0));
        assert!((t.overlap_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_is_measured() {
        let mut t = Timeline::new();
        t.record(Lane::ModelServer, "trial-0", s(0.0), s(4.0));
        t.record(Lane::InferenceServer, "arch-a", s(2.0), s(6.0));
        assert!((t.overlap_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inference_lane_counts_as_fully_overlapped() {
        let mut t = Timeline::new();
        t.record(Lane::ModelServer, "trial-0", s(0.0), s(4.0));
        assert_eq!(t.overlap_fraction(), 1.0);
    }

    #[test]
    fn ascii_render_shows_both_lanes() {
        let mut t = Timeline::new();
        t.record(Lane::ModelServer, "trial-0", s(0.0), s(10.0));
        t.record(Lane::InferenceServer, "arch-a", s(0.0), s(5.0));
        let art = t.render_ascii(20);
        assert!(art.contains("model"));
        assert!(art.contains("inference"));
        assert!(art.contains('#'));
        assert!(art.contains('='));
    }

    #[test]
    #[should_panic(expected = "end before it starts")]
    fn rejects_negative_spans() {
        let mut t = Timeline::new();
        t.record(Lane::ModelServer, "bad", s(5.0), s(1.0));
    }
}
