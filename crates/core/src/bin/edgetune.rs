//! `edgetune` — command-line front end to the tuning middleware.
//!
//! ```text
//! edgetune --workload ic                        # tune ResNet/CIFAR10 with defaults
//! edgetune --workload od --metric energy       # energy-oriented objectives
//! edgetune --workload sr --budget epoch        # a different trial budget
//! edgetune --workload ic --device intel        # target a different edge device
//! edgetune --workload ic --json report.json    # dump the full report as JSON
//! edgetune --workload ic --trial-workers 4     # real measurement threads
//! edgetune --workload ic --trial-slots 4       # simulated parallel trial slots
//! edgetune --workload ic --study-shards 4      # shard the study across engine
//!                                              # instances; report bytes are
//!                                              # unchanged
//! edgetune shard-host --listen 127.0.0.1:7070  # a standing shard-execution
//!                                              # daemon; pair with
//!                                              # --shard-exec remote
//!                                              # --shard-hosts 127.0.0.1:7070
//! edgetune --workload ic --scenario multistream:10
//!                                              # add a scenario-aware batching
//!                                              # recommendation (§3.4); also
//!                                              # accepts server:<n>:<period>
//! edgetune --workload ic --pareto 5            # vector objective: report the
//!                                              # top-5 Pareto frontier of
//!                                              # accuracy vs train vs inference
//!                                              # cost alongside the winner
//! edgetune serve --workload ic --traffic shift --frontier 6
//!                                              # pre-compute a 6-point frontier
//!                                              # so drift is answered by instant
//!                                              # config selection, re-tuning
//!                                              # only when nothing feasible
//! edgetune serve --workload ic --traffic burst --seed 42
//!                                              # deploy the tuned configuration
//!                                              # into the serving runtime and
//!                                              # print the JSON serving report
//! edgetune --workload ic --trace study.trace.json
//!                                              # also export a Chrome trace of
//!                                              # every span on the simulated
//!                                              # clock (chrome://tracing)
//! edgetune chaos --workload ic --rate 0.1 --seed 7
//!                                              # tune under deterministic fault
//!                                              # injection and print how the
//!                                              # run degraded
//! edgetune --workload ic --checkpoint study.json
//!                                              # checkpoint after every rung;
//!                                              # add --resume to continue an
//!                                              # interrupted run
//! ```

use std::process::ExitCode;

use edgetune::batching::{MultiStreamScenario, ServerScenario};
use edgetune::config::ShardExec;
use edgetune::fabric::{self, ChaosAction, FabricChaos};
use edgetune::prelude::*;
use edgetune::scenario::{tune_for_scenario, Scenario};
use edgetune::serve::{frontier_rates, ScenarioRetuner};
use edgetune_device::spec::DeviceSpec;
use edgetune_serving::{RuntimeOptions, ServingRuntime, SloPolicy, TrafficProfile};
use edgetune_trace::{ChromeTrace, Tracer};
use edgetune_util::rng::SeedStream;
use edgetune_util::units::Seconds;
use edgetune_workloads::catalog::Workload;

struct Args {
    workload: WorkloadId,
    device: Option<String>,
    metric: Metric,
    budget: BudgetPolicy,
    seed: u64,
    initial: usize,
    max_iteration: u32,
    trial_workers: usize,
    trial_slots: usize,
    study_shards: usize,
    shard_exec: ShardExec,
    shard_hosts: Vec<String>,
    fabric_trace: Option<String>,
    cache: Option<String>,
    json: Option<String>,
    pipelining: bool,
    historical_cache: bool,
    scenario: Option<Scenario>,
    checkpoint: Option<String>,
    resume: bool,
    trace: Option<String>,
    pareto: Option<usize>,
}

struct ChaosArgs {
    workload: WorkloadId,
    metric: Metric,
    seed: u64,
    rate: f64,
    initial: usize,
    max_iteration: u32,
    checkpoint: Option<String>,
    resume: bool,
    halt_after_rungs: Option<u32>,
    json: Option<String>,
    trace: Option<String>,
}

struct ServeArgs {
    workload: WorkloadId,
    device: Option<String>,
    traffic: String,
    rate: f64,
    horizon: f64,
    slo: f64,
    seed: u64,
    workers: u32,
    static_serving: bool,
    shed: bool,
    json: Option<String>,
    trace: Option<String>,
    frontier: Option<usize>,
}

fn parse_workload(value: &str) -> Result<WorkloadId, String> {
    match value.to_lowercase().as_str() {
        "ic" => Ok(WorkloadId::Ic),
        "sr" => Ok(WorkloadId::Sr),
        "nlp" => Ok(WorkloadId::Nlp),
        "od" => Ok(WorkloadId::Od),
        other => Err(format!("unknown workload '{other}' (ic|sr|nlp|od)")),
    }
}

/// Parses `server:<samples>:<period-s>` or `multistream:<rate>`.
fn parse_scenario(value: &str) -> Result<Scenario, String> {
    let parts: Vec<&str> = value.split(':').collect();
    match parts.as_slice() {
        ["server", samples, period] => {
            let samples: u32 = samples
                .parse()
                .map_err(|e| format!("bad sample count in --scenario: {e}"))?;
            let period: f64 = period
                .parse()
                .map_err(|e| format!("bad period in --scenario: {e}"))?;
            if samples == 0 || period <= 0.0 {
                return Err("--scenario server needs samples >= 1 and period > 0".into());
            }
            Ok(Scenario::Server(ServerScenario::new(
                samples,
                Seconds::new(period),
            )))
        }
        ["multistream", rate] => {
            let rate: f64 = rate
                .parse()
                .map_err(|e| format!("bad rate in --scenario: {e}"))?;
            if rate <= 0.0 {
                return Err("--scenario multistream needs rate > 0".into());
            }
            Ok(Scenario::MultiStream(MultiStreamScenario::new(rate, 400)))
        }
        _ => Err(format!(
            "bad --scenario '{value}' (server:<samples>:<period>|multistream:<rate>)"
        )),
    }
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        workload: WorkloadId::Ic,
        device: None,
        metric: Metric::Runtime,
        budget: BudgetPolicy::multi_default(),
        seed: 42,
        initial: 8,
        max_iteration: 10,
        trial_workers: 1,
        trial_slots: 1,
        study_shards: 1,
        shard_exec: ShardExec::Thread,
        shard_hosts: Vec::new(),
        fabric_trace: None,
        cache: None,
        json: None,
        pipelining: true,
        historical_cache: true,
        scenario: None,
        checkpoint: None,
        resume: false,
        trace: None,
        pareto: None,
    };
    let mut argv = argv;
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workload" | "-w" => {
                args.workload = parse_workload(&value(&mut argv, "--workload")?)?
            }
            "--device" | "-d" => args.device = Some(value(&mut argv, "--device")?),
            "--metric" | "-m" => {
                args.metric = match value(&mut argv, "--metric")?.to_lowercase().as_str() {
                    "runtime" => Metric::Runtime,
                    "energy" => Metric::Energy,
                    other => return Err(format!("unknown metric '{other}' (runtime|energy)")),
                }
            }
            "--budget" | "-b" => {
                args.budget = match value(&mut argv, "--budget")?.to_lowercase().as_str() {
                    "epoch" | "epochs" => BudgetPolicy::epoch_default(),
                    "dataset" => BudgetPolicy::dataset_default(),
                    "multi" | "multi-budget" => BudgetPolicy::multi_default(),
                    other => return Err(format!("unknown budget '{other}' (epoch|dataset|multi)")),
                }
            }
            "--seed" | "-s" => {
                args.seed = value(&mut argv, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--trials" | "-n" => {
                args.initial = value(&mut argv, "--trials")?
                    .parse()
                    .map_err(|e| format!("bad trial count: {e}"))?;
            }
            "--max-iter" => {
                args.max_iteration = value(&mut argv, "--max-iter")?
                    .parse()
                    .map_err(|e| format!("bad iteration count: {e}"))?;
            }
            "--trial-workers" => {
                args.trial_workers = value(&mut argv, "--trial-workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
            }
            "--trial-slots" => {
                args.trial_slots = value(&mut argv, "--trial-slots")?
                    .parse()
                    .map_err(|e| format!("bad slot count: {e}"))?;
            }
            "--study-shards" => {
                args.study_shards = value(&mut argv, "--study-shards")?
                    .parse()
                    .map_err(|e| format!("bad shard count: {e}"))?;
            }
            "--shard-exec" => {
                args.shard_exec = ShardExec::parse(&value(&mut argv, "--shard-exec")?)?;
            }
            "--shard-hosts" => {
                args.shard_hosts = value(&mut argv, "--shard-hosts")?
                    .split(',')
                    .map(str::trim)
                    .filter(|host| !host.is_empty())
                    .map(str::to_string)
                    .collect();
                if args.shard_hosts.is_empty() {
                    return Err("--shard-hosts needs at least one host:port address".into());
                }
            }
            "--fabric-trace" => args.fabric_trace = Some(value(&mut argv, "--fabric-trace")?),
            "--cache" => args.cache = Some(value(&mut argv, "--cache")?),
            "--json" => args.json = Some(value(&mut argv, "--json")?),
            "--no-pipelining" => args.pipelining = false,
            "--no-cache" => args.historical_cache = false,
            "--scenario" => args.scenario = Some(parse_scenario(&value(&mut argv, "--scenario")?)?),
            "--checkpoint" => args.checkpoint = Some(value(&mut argv, "--checkpoint")?),
            "--resume" => args.resume = true,
            "--trace" => args.trace = Some(value(&mut argv, "--trace")?),
            "--pareto" => {
                let k: usize = value(&mut argv, "--pareto")?
                    .parse()
                    .map_err(|e| format!("bad frontier size: {e}"))?;
                if k == 0 {
                    return Err("--pareto needs a frontier size >= 1".into());
                }
                args.pareto = Some(k);
            }
            "--help" | "-h" => {
                println!(
                    "usage: edgetune [--workload ic|sr|nlp|od] [--device NAME] \
                     [--metric runtime|energy] [--budget epoch|dataset|multi] [--seed N] \
                     [--trials N] [--max-iter N] [--trial-workers N] [--trial-slots N] \
                     [--study-shards N] [--shard-exec thread|process|remote] \
                     [--shard-hosts HOST:PORT,...] [--fabric-trace FILE] [--cache FILE] \
                     [--json FILE] [--no-pipelining] [--no-cache] \
                     [--checkpoint FILE] [--resume] [--trace FILE] [--pareto K] \
                     [--scenario server:<samples>:<period>|multistream:<rate>]\n\
                     \n\
                     --shard-exec process runs each engine shard in a supervised child\n\
                     process (heartbeats, capped retry, in-process fallback); report and\n\
                     trace bytes are identical to thread mode. --shard-exec remote dials\n\
                     standing `edgetune shard-host` daemons (--shard-hosts, shard i uses\n\
                     host i mod N) under the same supervision and the same bytes.\n\
                     EDGETUNE_FABRIC_KILL, EDGETUNE_FABRIC_PANIC or\n\
                     EDGETUNE_FABRIC_HANG=<shard> plant a fault in that shard's first\n\
                     attempt to exercise crash containment.\n\
                     \n\
                     subcommands:\n  \
                     edgetune shard-host [--listen ADDR]\n  \
                     edgetune serve [--workload ic|sr|nlp|od] [--device NAME] \
                     [--traffic poisson|server|burst|diurnal|shift] [--rate R] [--horizon S] \
                     [--slo S] [--seed N] [--workers N] [--static] [--no-shed] [--json FILE] \
                     [--trace FILE] [--frontier N]\n  \
                     edgetune chaos [--workload ic|sr|nlp|od] [--metric runtime|energy] \
                     [--rate P] [--seed N] [--trials N] [--max-iter N] [--checkpoint FILE] \
                     [--resume] [--halt-after-rungs N] [--json FILE] [--trace FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn parse_serve_args(argv: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        workload: WorkloadId::Ic,
        device: None,
        traffic: "poisson".to_string(),
        rate: 10.0,
        horizon: 120.0,
        slo: 2.0,
        seed: 42,
        workers: 1,
        static_serving: false,
        shed: true,
        json: None,
        trace: None,
        frontier: None,
    };
    let mut argv = argv;
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workload" | "-w" => {
                args.workload = parse_workload(&value(&mut argv, "--workload")?)?
            }
            "--device" | "-d" => args.device = Some(value(&mut argv, "--device")?),
            "--traffic" | "-t" => {
                let traffic = value(&mut argv, "--traffic")?.to_lowercase();
                match traffic.as_str() {
                    "poisson" | "server" | "burst" | "diurnal" | "shift" => args.traffic = traffic,
                    other => {
                        return Err(format!(
                            "unknown traffic '{other}' (poisson|server|burst|diurnal|shift)"
                        ))
                    }
                }
            }
            "--rate" | "-r" => {
                args.rate = value(&mut argv, "--rate")?
                    .parse()
                    .map_err(|e| format!("bad rate: {e}"))?;
                if args.rate <= 0.0 {
                    return Err("--rate must be > 0".into());
                }
            }
            "--horizon" => {
                args.horizon = value(&mut argv, "--horizon")?
                    .parse()
                    .map_err(|e| format!("bad horizon: {e}"))?;
                if args.horizon <= 0.0 {
                    return Err("--horizon must be > 0".into());
                }
            }
            "--slo" => {
                args.slo = value(&mut argv, "--slo")?
                    .parse()
                    .map_err(|e| format!("bad SLO target: {e}"))?;
                if args.slo <= 0.0 {
                    return Err("--slo must be > 0".into());
                }
            }
            "--seed" | "-s" => {
                args.seed = value(&mut argv, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--workers" => {
                args.workers = value(&mut argv, "--workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if args.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--static" => args.static_serving = true,
            "--no-shed" => args.shed = false,
            "--json" => args.json = Some(value(&mut argv, "--json")?),
            "--trace" => args.trace = Some(value(&mut argv, "--trace")?),
            "--frontier" => {
                let n: usize = value(&mut argv, "--frontier")?
                    .parse()
                    .map_err(|e| format!("bad frontier size: {e}"))?;
                if n == 0 {
                    return Err("--frontier needs a ladder size >= 1".into());
                }
                args.frontier = Some(n);
            }
            "--help" | "-h" => {
                println!(
                    "usage: edgetune serve [--workload ic|sr|nlp|od] [--device NAME] \
                     [--traffic poisson|server|burst|diurnal|shift] [--rate R] [--horizon S] \
                     [--slo S] [--seed N] [--workers N] [--static] [--no-shed] [--json FILE] \
                     [--trace FILE] [--frontier N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn parse_chaos_args(argv: impl Iterator<Item = String>) -> Result<ChaosArgs, String> {
    let mut args = ChaosArgs {
        workload: WorkloadId::Ic,
        metric: Metric::Runtime,
        seed: 42,
        rate: 0.1,
        initial: 8,
        max_iteration: 8,
        checkpoint: None,
        resume: false,
        halt_after_rungs: None,
        json: None,
        trace: None,
    };
    let mut argv = argv;
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workload" | "-w" => {
                args.workload = parse_workload(&value(&mut argv, "--workload")?)?
            }
            "--metric" | "-m" => {
                args.metric = match value(&mut argv, "--metric")?.to_lowercase().as_str() {
                    "runtime" => Metric::Runtime,
                    "energy" => Metric::Energy,
                    other => return Err(format!("unknown metric '{other}' (runtime|energy)")),
                }
            }
            "--seed" | "-s" => {
                args.seed = value(&mut argv, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--rate" | "-r" => {
                args.rate = value(&mut argv, "--rate")?
                    .parse()
                    .map_err(|e| format!("bad fault rate: {e}"))?;
                if !(0.0..=1.0).contains(&args.rate) {
                    return Err("--rate must be within [0, 1]".into());
                }
            }
            "--trials" | "-n" => {
                args.initial = value(&mut argv, "--trials")?
                    .parse()
                    .map_err(|e| format!("bad trial count: {e}"))?;
            }
            "--max-iter" => {
                args.max_iteration = value(&mut argv, "--max-iter")?
                    .parse()
                    .map_err(|e| format!("bad iteration count: {e}"))?;
            }
            "--checkpoint" => args.checkpoint = Some(value(&mut argv, "--checkpoint")?),
            "--resume" => args.resume = true,
            "--halt-after-rungs" => {
                args.halt_after_rungs = Some(
                    value(&mut argv, "--halt-after-rungs")?
                        .parse()
                        .map_err(|e| format!("bad rung count: {e}"))?,
                );
            }
            "--json" => args.json = Some(value(&mut argv, "--json")?),
            "--trace" => args.trace = Some(value(&mut argv, "--trace")?),
            "--help" | "-h" => {
                println!(
                    "usage: edgetune chaos [--workload ic|sr|nlp|od] [--metric runtime|energy] \
                     [--rate P] [--seed N] [--trials N] [--max-iter N] [--checkpoint FILE] \
                     [--resume] [--halt-after-rungs N] [--json FILE] [--trace FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn run_chaos(args: &ChaosArgs) -> Result<(), String> {
    let mut config = EdgeTuneConfig::for_workload(args.workload)
        .with_metric(args.metric)
        .with_scheduler(SchedulerConfig::new(args.initial, 2.0, args.max_iteration))
        .with_seed(args.seed)
        .with_fault_plan(FaultPlan::uniform(args.rate));
    if let Some(path) = &args.checkpoint {
        config = config.with_checkpoint_path(path);
    }
    if args.resume {
        config = config.resuming();
    }
    if let Some(rungs) = args.halt_after_rungs {
        config = config.with_halt_after_rungs(rungs);
    }
    if let Some(path) = &args.trace {
        config = config.with_trace_path(path);
    }

    eprintln!(
        "chaos-tuning {} at fault rate {:.0}% (seed {})...",
        args.workload,
        args.rate * 100.0,
        args.seed
    );
    let report = EdgeTune::new(config).run().map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    if let Some(faults) = report.faults() {
        let d = &faults.degradation;
        println!("== fault report ==");
        println!("failed trials    : {}", faults.failed_trials);
        println!(
            "trial faults     : {} crashes, {} stragglers, {} timeouts",
            d.trial_crashes, d.trial_stragglers, d.trial_timeouts
        );
        println!(
            "trial recovery   : {} retries, {} skipped with penalty",
            d.trial_retries, d.trials_skipped
        );
        println!(
            "inference faults : {} lost replies, {} injected losses, {} outages, {} real panics",
            d.worker_losses, faults.injected_losses, faults.injected_outages, faults.worker_panics
        );
        println!(
            "inference rescue : {} retries, {} stale-cache answers, {} default recommendations",
            d.inference_retries, d.stale_cache_served, d.default_recommendations
        );
    }
    if let Some(path) = &args.json {
        let json = report.to_json().map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("chaos report written to {path}");
    }
    if let Some(path) = &args.trace {
        eprintln!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
    }
    Ok(())
}

/// Maps a trace name and design rate onto a concrete traffic profile.
fn traffic_for(trace: &str, rate: f64, horizon: f64) -> TrafficProfile {
    match trace {
        "server" => TrafficProfile::ServerQueries {
            samples_per_query: 16,
            period: Seconds::new(16.0 / rate),
        },
        "burst" => TrafficProfile::OnOff {
            on_rate: 3.0 * rate,
            off_rate: rate / 3.0,
            mean_on: Seconds::new(15.0),
            mean_off: Seconds::new(30.0),
        },
        "diurnal" => TrafficProfile::Diurnal {
            base_rate: 0.5 * rate,
            peak_rate: 2.0 * rate,
            period: Seconds::new(horizon),
        },
        "shift" => TrafficProfile::RateShift {
            initial_rate: rate,
            shifted_rate: 4.0 * rate,
            at: Seconds::new(horizon / 3.0),
        },
        _ => TrafficProfile::Poisson { rate },
    }
}

fn run_serve(args: &ServeArgs) -> Result<(), String> {
    let device = match &args.device {
        Some(name) => DeviceSpec::by_name(name).ok_or_else(|| {
            let catalog: Vec<String> = DeviceSpec::catalog().into_iter().map(|d| d.name).collect();
            format!("unknown device '{name}'; catalog: {}", catalog.join(", "))
        })?,
        None => DeviceSpec::raspberry_pi_3b(),
    };
    let workload = Workload::by_id(args.workload);
    let profile = workload.profile(workload.model_hp_values[0]);
    let space = InferenceSpace::for_device(&device);
    let retuner = ScenarioRetuner::new(device.clone(), space, profile);

    let traffic = traffic_for(&args.traffic, args.rate, args.horizon);
    let seed = SeedStream::new(args.seed);
    eprintln!(
        "tuning the initial configuration for {} at {:.1} items/s...",
        device.name,
        traffic.design_rate()
    );
    let scenario = Scenario::MultiStream(MultiStreamScenario::new(traffic.design_rate(), 400));
    let config = retuner
        .recommend(&scenario, seed.child("offline"))
        .map_err(|e| e.to_string())?;
    eprintln!(
        "deploying batch={} cores={} freq={:.2} GHz (predicted mean response {:.3} s)",
        config.batch_cap,
        config.cores,
        config.freq.as_ghz(),
        config
            .predicted_mean_response
            .map_or(f64::NAN, |s| s.value()),
    );

    let mut slo = SloPolicy::new(Seconds::new(args.slo));
    if !args.shed {
        slo = slo.without_shedding();
    }
    let mut options = RuntimeOptions::new(slo).with_workers(args.workers);
    if args.static_serving {
        options = options.static_serving();
    }
    let mut runtime =
        ServingRuntime::new(device, profile, config, options).map_err(|e| e.to_string())?;
    if let Some(n) = args.frontier {
        let rates = frontier_rates(traffic.design_rate(), n);
        let selector = retuner.precompute_frontier(&rates, seed.child("frontier"));
        eprintln!(
            "pre-computed {} frontier configuration(s) over {:.1}..{:.1} items/s",
            selector.len(),
            rates.first().copied().unwrap_or(0.0),
            rates.last().copied().unwrap_or(0.0),
        );
        runtime = runtime.with_selector(selector);
    }
    let tuner = (!args.static_serving).then_some(&retuner as &dyn edgetune_serving::OnlineTuner);
    let tracer = args.trace.as_ref().map(|_| Tracer::new());
    let report = runtime
        .serve_traced(
            &traffic,
            Seconds::new(args.horizon),
            tuner,
            seed,
            tracer.as_ref(),
        )
        .map_err(|e| e.to_string())?;
    if let (Some(path), Some(tracer)) = (&args.trace, &tracer) {
        ChromeTrace::from_tracer(tracer)
            .write(path)
            .map_err(|e| e.to_string())?;
        eprintln!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
    }

    eprintln!("{}", report.summary());
    let json = report.to_json().map_err(|e| e.to_string())?;
    println!("{json}");
    if let Some(path) = &args.json {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("serving report written to {path}");
    }
    Ok(())
}

/// `edgetune trace-summary FILE [--top N]`: a span-level profile of an
/// exported Chrome trace — the top spans ranked by *self* time (span
/// duration minus the spans nested directly inside it on its track), so
/// the hot accounting paths show up by themselves instead of being
/// buried under their enclosing rung/bracket spans.
fn run_trace_summary(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    const USAGE: &str = "usage: edgetune trace-summary FILE [--top N]";
    let mut file: Option<String> = None;
    let mut top = 10usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let value = args.next().ok_or("--top requires a count")?;
                top = value
                    .parse()
                    .map_err(|e| format!("bad --top value '{value}': {e}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(format!("unknown argument '{other}'; {USAGE}")),
        }
    }
    let path = file.ok_or(USAGE)?;
    let json = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let trace = ChromeTrace::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    trace
        .validate()
        .map_err(|e| format!("invalid trace {path}: {e}"))?;
    let stats = edgetune_trace::span_summary(&trace);
    let spans: u64 = stats.iter().map(|s| s.count).sum();
    let busy_us: f64 = stats.iter().map(|s| s.self_us).sum();
    println!(
        "{} spans, {} distinct names, {:.3} ms total self time",
        spans,
        stats.len(),
        busy_us / 1e3
    );
    println!(
        "{:<32} {:>7} {:>12} {:>12} {:>7}",
        "span", "count", "total(ms)", "self(ms)", "self%"
    );
    for stat in stats.iter().take(top) {
        let share = if busy_us > 0.0 {
            100.0 * stat.self_us / busy_us
        } else {
            0.0
        };
        println!(
            "{:<32} {:>7} {:>12.3} {:>12.3} {:>6.1}%",
            stat.name,
            stat.count,
            stat.total_us / 1e3,
            stat.self_us / 1e3,
            share
        );
    }
    Ok(())
}

/// `edgetune shard-host --listen ADDR`: a standing shard-execution
/// daemon. Binds the listener, prints the bound address to stdout (the
/// one stdout line, parseable — `--listen 127.0.0.1:0` gets a
/// kernel-assigned port), and serves coordinator sessions forever.
fn run_shard_host(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    const USAGE: &str = "usage: edgetune shard-host [--listen ADDR]";
    let mut listen = "127.0.0.1:0".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" | "-l" => {
                listen = args.next().ok_or("--listen requires an address")?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument '{other}'; {USAGE}")),
        }
    }
    let host = fabric::ShardHost::bind(&listen).map_err(|e| format!("binding {listen}: {e}"))?;
    host.run().map_err(|e| e.to_string())
}

/// Reads a planted fabric fault from the environment:
/// `EDGETUNE_FABRIC_KILL`, `EDGETUNE_FABRIC_PANIC` or
/// `EDGETUNE_FABRIC_HANG`, each naming a shard index. Environment
/// variables rather than flags so the CI byte-identity matrix runs the
/// exact same command line with and without chaos.
fn fabric_chaos_from_env() -> Result<Option<FabricChaos>, String> {
    let plants = [
        ("EDGETUNE_FABRIC_KILL", ChaosAction::Kill),
        ("EDGETUNE_FABRIC_PANIC", ChaosAction::Panic),
        ("EDGETUNE_FABRIC_HANG", ChaosAction::Hang),
    ];
    for (name, action) in plants {
        if let Ok(text) = std::env::var(name) {
            let shard = text
                .parse()
                .map_err(|e| format!("bad shard index in {name}: {e}"))?;
            return Ok(Some(FabricChaos { shard, action }));
        }
    }
    Ok(None)
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    // The hidden self-exec subcommand dispatches before everything
    // else: shard workers speak length-prefixed frames on stdin/stdout
    // and must never touch the normal CLI surface.
    if argv.peek().map(String::as_str) == Some(fabric::WORKER_SUBCOMMAND) {
        fabric::worker_main();
    }
    if argv.peek().map(String::as_str) == Some(fabric::HOST_SUBCOMMAND) {
        argv.next();
        return match run_shard_host(argv) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.peek().map(String::as_str) == Some("chaos") {
        argv.next();
        let args = match parse_chaos_args(argv) {
            Ok(args) => args,
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        };
        return match run_chaos(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        let args = match parse_serve_args(argv) {
            Ok(args) => args,
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        };
        return match run_serve(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.peek().map(String::as_str) == Some("trace-summary") {
        argv.next();
        return match run_trace_summary(argv) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let args = match parse_args(argv) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = EdgeTuneConfig::for_workload(args.workload)
        .with_metric(args.metric)
        .with_budget(args.budget)
        .with_scheduler(SchedulerConfig::new(args.initial, 2.0, args.max_iteration))
        .with_trial_workers(args.trial_workers)
        .with_trial_slots(args.trial_slots)
        .with_study_shards(args.study_shards)
        .with_seed(args.seed);
    if let Some(name) = &args.device {
        match DeviceSpec::by_name(name) {
            Some(device) => config = config.with_edge_device(device),
            None => {
                eprintln!("error: unknown device '{name}'; catalog:");
                for d in DeviceSpec::catalog() {
                    eprintln!("  {}", d.name);
                }
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.cache {
        config = config.with_cache_path(path);
    }
    if let Some(path) = &args.checkpoint {
        config = config.with_checkpoint_path(path);
    }
    if args.resume {
        config = config.resuming();
    }
    if !args.pipelining {
        config = config.without_pipelining();
    }
    if !args.historical_cache {
        config = config.without_historical_cache();
    }
    if let Some(path) = &args.trace {
        config = config.with_trace_path(path);
    }
    if let Some(k) = args.pareto {
        config = config.with_pareto(k);
    }
    config = config.with_shard_exec(args.shard_exec);
    if !args.shard_hosts.is_empty() {
        config = config.with_shard_hosts(args.shard_hosts.clone());
    }
    if let Some(path) = &args.fabric_trace {
        config = config.with_fabric_trace_path(path);
    }
    match fabric_chaos_from_env() {
        Ok(chaos) => config.fabric.chaos = chaos,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    }

    let edge_device = config.edge_device.clone();
    eprintln!(
        "tuning {} for {} ({} objective, {} budget, seed {})...",
        args.workload,
        edge_device.name,
        args.metric,
        config.budget.name(),
        args.seed
    );
    let report = match EdgeTune::new(config).run() {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.trace {
        eprintln!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
    }
    // Fabric counters are wall-clock noise, so they go to stderr —
    // stdout stays deterministic for a fixed seed.
    if let Some(stats) = report.fabric_stats() {
        eprintln!(
            "fabric: {} spawns, {} heartbeats, {} crashes ({} timeouts), \
             {} retries, {} in-process fallbacks, {} stragglers",
            stats.spawns,
            stats.heartbeats,
            stats.crashes,
            stats.timeouts,
            stats.retries,
            stats.fallbacks,
            stats.stragglers,
        );
    }
    if let Some(path) = &args.fabric_trace {
        eprintln!("fabric telemetry trace written to {path}");
    }

    println!("== winning trial ==");
    println!("configuration : {}", report.best_config());
    println!("accuracy      : {:.1}%", report.best_accuracy() * 100.0);
    println!("trials run    : {}", report.history().len());
    println!(
        "tuning cost   : {:.1} min, {:.1} kJ (stall {:.1} s)",
        report.tuning_runtime().as_minutes(),
        report.tuning_energy().as_kilojoules(),
        report.stall_time().value(),
    );
    let rec = report.recommendation();
    println!("== deployment recommendation ==");
    println!("device        : {}", rec.device);
    println!("batch/cores   : {} / {}", rec.batch, rec.cores);
    println!("frequency     : {:.2} GHz", rec.freq.as_ghz());
    println!("throughput    : {:.1} items/s", rec.throughput.value());
    println!("energy        : {:.3} J/item", rec.energy_per_item.value());

    if !report.frontier().is_empty() {
        println!("== pareto frontier ==");
        println!(
            "{:>5} {:>9} {:>12} {:>12}  configuration",
            "trial", "accuracy", "train-cost", "infer-cost"
        );
        for point in report.frontier() {
            println!(
                "{:>5} {:>8.1}% {:>12.2} {:>12.4}  {}",
                point.trial,
                point.vector.accuracy * 100.0,
                point.vector.train_cost,
                point.vector.inference_cost,
                point.config,
            );
        }
    }

    if let Some(scenario) = &args.scenario {
        use edgetune::backend::PARAM_MODEL_HP;
        let hp = report
            .best_config()
            .get(PARAM_MODEL_HP)
            .unwrap_or_else(|| Workload::by_id(args.workload).model_hp_values[0]);
        let profile = Workload::by_id(args.workload).profile(hp);
        let space = InferenceSpace::for_device(&edge_device);
        match tune_for_scenario(
            &edge_device,
            &space,
            &profile,
            scenario,
            SeedStream::new(args.seed).child("scenario"),
        ) {
            Ok(rec) => {
                println!("== scenario recommendation ==");
                println!("scenario      : {scenario:?}");
                println!("batch/cores   : {} / {}", rec.batch, rec.cores);
                println!("frequency     : {:.2} GHz", rec.freq.as_ghz());
                println!("mean response : {:.3} s", rec.mean_response.value());
            }
            Err(err) => {
                eprintln!("error: scenario tuning failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.json {
        match report.to_json() {
            Ok(json) => {
                if let Err(err) = std::fs::write(path, json) {
                    eprintln!("error writing {path}: {err}");
                    return ExitCode::FAILURE;
                }
                eprintln!("report written to {path}");
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
