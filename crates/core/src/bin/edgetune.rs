//! `edgetune` — command-line front end to the tuning middleware.
//!
//! ```text
//! edgetune --workload ic                        # tune ResNet/CIFAR10 with defaults
//! edgetune --workload od --metric energy       # energy-oriented objectives
//! edgetune --workload sr --budget epoch        # a different trial budget
//! edgetune --workload ic --device intel        # target a different edge device
//! edgetune --workload ic --json report.json    # dump the full report as JSON
//! edgetune --workload ic --trial-workers 4     # parallel trial slots
//! ```

use std::process::ExitCode;

use edgetune::prelude::*;
use edgetune_device::spec::DeviceSpec;

struct Args {
    workload: WorkloadId,
    device: Option<String>,
    metric: Metric,
    budget: BudgetPolicy,
    seed: u64,
    initial: usize,
    max_iteration: u32,
    trial_workers: usize,
    cache: Option<String>,
    json: Option<String>,
    pipelining: bool,
    historical_cache: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: WorkloadId::Ic,
        device: None,
        metric: Metric::Runtime,
        budget: BudgetPolicy::multi_default(),
        seed: 42,
        initial: 8,
        max_iteration: 10,
        trial_workers: 1,
        cache: None,
        json: None,
        pipelining: true,
        historical_cache: true,
    };
    let mut argv = std::env::args().skip(1);
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workload" | "-w" => {
                args.workload = match value(&mut argv, "--workload")?.to_lowercase().as_str() {
                    "ic" => WorkloadId::Ic,
                    "sr" => WorkloadId::Sr,
                    "nlp" => WorkloadId::Nlp,
                    "od" => WorkloadId::Od,
                    other => return Err(format!("unknown workload '{other}' (ic|sr|nlp|od)")),
                }
            }
            "--device" | "-d" => args.device = Some(value(&mut argv, "--device")?),
            "--metric" | "-m" => {
                args.metric = match value(&mut argv, "--metric")?.to_lowercase().as_str() {
                    "runtime" => Metric::Runtime,
                    "energy" => Metric::Energy,
                    other => return Err(format!("unknown metric '{other}' (runtime|energy)")),
                }
            }
            "--budget" | "-b" => {
                args.budget = match value(&mut argv, "--budget")?.to_lowercase().as_str() {
                    "epoch" | "epochs" => BudgetPolicy::epoch_default(),
                    "dataset" => BudgetPolicy::dataset_default(),
                    "multi" | "multi-budget" => BudgetPolicy::multi_default(),
                    other => return Err(format!("unknown budget '{other}' (epoch|dataset|multi)")),
                }
            }
            "--seed" | "-s" => {
                args.seed = value(&mut argv, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--trials" | "-n" => {
                args.initial = value(&mut argv, "--trials")?
                    .parse()
                    .map_err(|e| format!("bad trial count: {e}"))?;
            }
            "--max-iter" => {
                args.max_iteration = value(&mut argv, "--max-iter")?
                    .parse()
                    .map_err(|e| format!("bad iteration count: {e}"))?;
            }
            "--trial-workers" => {
                args.trial_workers = value(&mut argv, "--trial-workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
            }
            "--cache" => args.cache = Some(value(&mut argv, "--cache")?),
            "--json" => args.json = Some(value(&mut argv, "--json")?),
            "--no-pipelining" => args.pipelining = false,
            "--no-cache" => args.historical_cache = false,
            "--help" | "-h" => {
                println!(
                    "usage: edgetune [--workload ic|sr|nlp|od] [--device NAME] \
                     [--metric runtime|energy] [--budget epoch|dataset|multi] [--seed N] \
                     [--trials N] [--max-iter N] [--trial-workers N] [--cache FILE] \
                     [--json FILE] [--no-pipelining] [--no-cache]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = EdgeTuneConfig::for_workload(args.workload)
        .with_metric(args.metric)
        .with_budget(args.budget)
        .with_scheduler(SchedulerConfig::new(args.initial, 2.0, args.max_iteration))
        .with_trial_workers(args.trial_workers)
        .with_seed(args.seed);
    if let Some(name) = &args.device {
        match DeviceSpec::by_name(name) {
            Some(device) => config = config.with_edge_device(device),
            None => {
                eprintln!("error: unknown device '{name}'; catalog:");
                for d in DeviceSpec::catalog() {
                    eprintln!("  {}", d.name);
                }
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.cache {
        config = config.with_cache_path(path);
    }
    if !args.pipelining {
        config = config.without_pipelining();
    }
    if !args.historical_cache {
        config = config.without_historical_cache();
    }

    eprintln!(
        "tuning {} for {} ({} objective, {} budget, seed {})...",
        args.workload,
        config.edge_device.name,
        args.metric,
        config.budget.name(),
        args.seed
    );
    let report = match EdgeTune::new(config).run() {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!("== winning trial ==");
    println!("configuration : {}", report.best_config());
    println!("accuracy      : {:.1}%", report.best_accuracy() * 100.0);
    println!("trials run    : {}", report.history().len());
    println!(
        "tuning cost   : {:.1} min, {:.1} kJ (stall {:.1} s)",
        report.tuning_runtime().as_minutes(),
        report.tuning_energy().as_kilojoules(),
        report.stall_time().value(),
    );
    let rec = report.recommendation();
    println!("== deployment recommendation ==");
    println!("device        : {}", rec.device);
    println!("batch/cores   : {} / {}", rec.batch, rec.cores);
    println!("frequency     : {:.2} GHz", rec.freq.as_ghz());
    println!("throughput    : {:.1} items/s", rec.throughput.value());
    println!("energy        : {:.3} J/item", rec.energy_per_item.value());

    if let Some(path) = &args.json {
        match report.to_json() {
            Ok(json) => {
                if let Err(err) = std::fs::write(path, json) {
                    eprintln!("error writing {path}: {err}");
                    return ExitCode::FAILURE;
                }
                eprintln!("report written to {path}");
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
