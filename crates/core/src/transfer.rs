//! Cross-study warm-start transfer (§3.4 generalised to a service).
//!
//! The historical cache answers "have I tuned *this exact* architecture
//! before?". A long-lived tuning service can do better: a finished study
//! over ResNet/layers=50 is evidence about where good configurations
//! live for a *new* ResNet study, even on another device or serving
//! scenario. The [`TransferIndex`] generalises
//! [`CacheKey`](crate::cache::CacheKey) (device × arch × metric) into a
//! [`TransferKey`] that also carries the workload family and serving
//! scenario, ranks completed studies by signature similarity against an
//! incoming study, and hands back the top-k configurations to seed the
//! new study's sampler (see
//! [`WarmStartSampler`](edgetune_tuner::sampler::WarmStartSampler)).

use std::path::Path;

use edgetune_tuner::space::Config;
use edgetune_tuner::Metric;
use edgetune_util::{Error, Result};
use serde::{Deserialize, Serialize};

/// Identity of a completed (or incoming) study for transfer purposes:
/// the [`CacheKey`](crate::cache::CacheKey) axes plus the workload
/// family and serving scenario.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransferKey {
    /// Target device name.
    pub device: String,
    /// Workload model family (e.g. `"ResNet"`): the coarsest axis —
    /// transfer across families is meaningless, so a family mismatch
    /// disqualifies a donor entirely.
    pub family: String,
    /// Full architecture signature (e.g. `"ResNet/layers=18"`).
    pub arch: String,
    /// Which metric the study optimised.
    pub metric: Metric,
    /// Serving-scenario label (e.g. `"batch"`, `"multistream:10"`).
    pub scenario: String,
}

impl TransferKey {
    /// Creates a key.
    #[must_use]
    pub fn new(
        device: impl Into<String>,
        family: impl Into<String>,
        arch: impl Into<String>,
        metric: Metric,
        scenario: impl Into<String>,
    ) -> Self {
        TransferKey {
            device: device.into(),
            family: family.into(),
            arch: arch.into(),
            metric,
            scenario: scenario.into(),
        }
    }

    /// Similarity of two keys, higher = closer. Zero means "do not
    /// transfer": the family or metric differs, so the donor's
    /// configurations say nothing about the query. Above zero the tiers
    /// are strict — an exact architecture match (8) outranks any
    /// combination of device (4) and scenario (2) agreement without it,
    /// and a bare family match still scores 1 (warm beats cold).
    #[must_use]
    pub fn similarity(&self, other: &TransferKey) -> u32 {
        if self.family != other.family || self.metric != other.metric {
            return 0;
        }
        let mut score = 1;
        if self.arch == other.arch {
            score += 8;
        }
        if self.device == other.device {
            score += 4;
        }
        if self.scenario == other.scenario {
            score += 2;
        }
        score
    }
}

impl std::fmt::Display for TransferKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}|{}|{}|{}|{}",
            self.device, self.family, self.arch, self.metric, self.scenario
        )
    }
}

/// One completed study's contribution to the index: its identity and
/// its best configurations, best-first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// The donor study's identity.
    pub key: TransferKey,
    /// The donor's top configurations, best-first.
    pub configs: Vec<Config>,
    /// The donor's winning ratio score (lower = better) — the
    /// tie-break between equally similar donors.
    pub best_score: f64,
}

/// The service-wide index of completed studies, queried at admission to
/// warm-start new ones.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferIndex {
    records: Vec<TransferRecord>,
}

impl TransferIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        TransferIndex::default()
    }

    /// Number of donor studies recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no study has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records a completed study. Configurations must be best-first;
    /// empty donations are dropped (nothing to transfer).
    pub fn record(&mut self, key: TransferKey, configs: Vec<Config>, best_score: f64) {
        if configs.is_empty() {
            return;
        }
        self.records.push(TransferRecord {
            key,
            configs,
            best_score,
        });
    }

    /// Donor studies ranked against `query`: similarity descending,
    /// ties broken by best score (lower first) then insertion order —
    /// fully deterministic for a fixed submission sequence. Donors with
    /// zero similarity are excluded.
    #[must_use]
    pub fn rank(&self, query: &TransferKey) -> Vec<(&TransferRecord, u32)> {
        let mut ranked: Vec<(&TransferRecord, u32)> = self
            .records
            .iter()
            .map(|r| (r, query.similarity(&r.key)))
            .filter(|(_, score)| *score > 0)
            .collect();
        // A stable sort on the score alone would ignore the quality
        // tie-break; sorting on (score desc, best_score asc) and relying
        // on stability for the final insertion-order tie keeps the whole
        // ordering deterministic.
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0.best_score.total_cmp(&b.0.best_score))
        });
        ranked
    }

    /// The top-`k` transferred configurations for an incoming study:
    /// walks the ranked donors best-first, skipping configurations
    /// already taken from a closer donor. Empty when nothing relevant
    /// has completed — the study starts cold.
    #[must_use]
    pub fn suggest(&self, query: &TransferKey, k: usize) -> Vec<Config> {
        let mut seeds: Vec<Config> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (record, _) in self.rank(query) {
            for config in &record.configs {
                if seeds.len() >= k {
                    return seeds;
                }
                if seen.insert(config.key()) {
                    seeds.push(config.clone());
                }
            }
        }
        seeds
    }

    /// Serialises the index to a JSON file, atomically (`.tmp` sibling
    /// renamed into place), mirroring
    /// [`HistoricalCache::save`](crate::cache::HistoricalCache::save).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] on I/O or serialisation failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| Error::storage(format!("serialising transfer index: {e}")))?;
        let file_name = path.file_name().ok_or_else(|| {
            Error::storage(format!(
                "transfer index path {} has no file name",
                path.display()
            ))
        })?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads an index previously written by [`TransferIndex::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if the file cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| Error::storage(format!("parsing transfer index: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(device: &str, arch: &str, scenario: &str) -> TransferKey {
        let family = arch.split('/').next().unwrap();
        TransferKey::new(device, family, arch, Metric::Runtime, scenario)
    }

    fn config(x: f64) -> Config {
        Config::new().with("lr", x).with("layers", 18.0)
    }

    #[test]
    fn exact_match_beats_family_match_beats_cold_start() {
        let mut index = TransferIndex::new();
        index.record(
            key("pi", "ResNet/layers=50", "batch"),
            vec![config(0.1)],
            2.0,
        );
        index.record(
            key("pi", "ResNet/layers=18", "batch"),
            vec![config(0.2)],
            3.0,
        );
        let query = key("pi", "ResNet/layers=18", "batch");
        let ranked = index.rank(&query);
        assert_eq!(ranked.len(), 2);
        assert_eq!(
            ranked[0].0.key.arch, "ResNet/layers=18",
            "exact architecture outranks a family cousin"
        );
        assert!(ranked[0].1 > ranked[1].1);
        // Cold start: a family nobody has tuned yet transfers nothing.
        let cold = key("pi", "YOLO/version=3", "batch");
        assert!(index.rank(&cold).is_empty());
        assert!(index.suggest(&cold, 4).is_empty());
    }

    #[test]
    fn family_match_still_transfers_across_device_and_scenario() {
        let mut index = TransferIndex::new();
        index.record(
            key("jetson", "ResNet/layers=50", "server"),
            vec![config(0.1)],
            2.0,
        );
        let query = key("pi", "ResNet/layers=18", "batch");
        let ranked = index.rank(&query);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].1, 1, "bare family match scores the floor");
        assert_eq!(index.suggest(&query, 2), vec![config(0.1)]);
    }

    #[test]
    fn metric_mismatch_disqualifies_a_donor() {
        let mut index = TransferIndex::new();
        index.record(
            key("pi", "ResNet/layers=18", "batch"),
            vec![config(0.1)],
            2.0,
        );
        let query = TransferKey::new("pi", "ResNet", "ResNet/layers=18", Metric::Energy, "batch");
        assert!(index.rank(&query).is_empty());
    }

    #[test]
    fn arch_match_outranks_device_plus_scenario() {
        // arch(8) alone must beat device(4)+scenario(2) combined.
        let mut index = TransferIndex::new();
        index.record(
            key("pi", "ResNet/layers=18", "batch"),
            vec![config(0.1)],
            2.0,
        );
        index.record(
            key("jetson", "ResNet/layers=50", "server"),
            vec![config(0.2)],
            1.0,
        );
        let query = key("pi", "ResNet/layers=50", "server");
        let ranked = index.rank(&query);
        assert_eq!(ranked[0].0.key.arch, "ResNet/layers=50");
    }

    #[test]
    fn ties_break_on_best_score_then_insertion_order() {
        let mut index = TransferIndex::new();
        index.record(
            key("pi", "ResNet/layers=18", "batch"),
            vec![config(0.1)],
            3.0,
        );
        index.record(
            key("pi", "ResNet/layers=18", "batch"),
            vec![config(0.2)],
            1.0,
        );
        index.record(
            key("pi", "ResNet/layers=18", "batch"),
            vec![config(0.3)],
            1.0,
        );
        let query = key("pi", "ResNet/layers=18", "batch");
        let ranked = index.rank(&query);
        assert_eq!(ranked[0].0.configs[0], config(0.2), "better donor first");
        assert_eq!(
            ranked[1].0.configs[0],
            config(0.3),
            "stable within equal scores"
        );
        assert_eq!(ranked[2].0.configs[0], config(0.1));
    }

    #[test]
    fn suggest_dedupes_across_donors_and_respects_k() {
        let mut index = TransferIndex::new();
        index.record(
            key("pi", "ResNet/layers=18", "batch"),
            vec![config(0.1), config(0.2)],
            1.0,
        );
        index.record(
            key("pi", "ResNet/layers=50", "batch"),
            vec![config(0.1), config(0.3), config(0.4)],
            2.0,
        );
        let query = key("pi", "ResNet/layers=18", "batch");
        let seeds = index.suggest(&query, 3);
        assert_eq!(seeds, vec![config(0.1), config(0.2), config(0.3)]);
    }

    #[test]
    fn empty_donations_are_dropped() {
        let mut index = TransferIndex::new();
        index.record(key("pi", "ResNet/layers=18", "batch"), vec![], 1.0);
        assert!(index.is_empty());
    }

    #[test]
    fn save_load_round_trip() {
        let mut index = TransferIndex::new();
        index.record(
            key("pi", "ResNet/layers=18", "batch"),
            vec![config(0.1)],
            2.0,
        );
        let dir = std::env::temp_dir().join("edgetune-transfer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("transfer.json");
        index.save(&path).unwrap();
        let loaded = TransferIndex::load(&path).unwrap();
        assert_eq!(loaded, index);
        assert!(!dir.join("transfer.json.tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}
