//! Glue between the study engine and the `edgetune-trace` crate.
//!
//! The engine emits every piece of time accounting as trace events —
//! trial and sweep spans, rung and bracket spans, cache counters, fault
//! instants — and the report's [`Timeline`] is *derived* from that
//! trace, not recorded separately, so the two views can never disagree.
//!
//! Determinism contract: tracks are keyed to **simulated** structure
//! (trial slots, the scheduler, the fault plan), never to real threads
//! or engine shards. `trial_workers` and `study_shards` are wall-clock
//! engineering that must not change a reported byte, and the trace is a
//! reported artifact — `tests/golden_trace.rs` pins its bytes across
//! worker and shard counts the same way `tests/golden_report.rs` pins
//! the report.

use edgetune_trace::{EventKind, TraceEvent, Tracer};

use crate::timeline::{Lane, Timeline};

/// Span category of Model Tuning Server trials ([`Lane::ModelServer`]).
pub const CAT_MODEL: &str = "model";
/// Span category of Inference Tuning Server sweeps
/// ([`Lane::InferenceServer`]).
pub const CAT_INFERENCE: &str = "inference";
/// Category of scheduler rung spans.
pub const CAT_RUNG: &str = "rung";
/// Category of HyperBand bracket spans.
pub const CAT_BRACKET: &str = "bracket";
/// Category of historical-cache counters and hit/miss instants.
pub const CAT_CACHE: &str = "cache";
/// Category of fault-injection and degradation-ladder events.
pub const CAT_FAULT: &str = "fault";
/// Category of serving-runtime batch spans and shed/outage instants.
pub const CAT_SERVING: &str = "serving";
/// Category of shard-fabric supervision instants
/// (spawn/heartbeat/crash/retry), recorded on the fabric's own tracer.
pub const CAT_FABRIC: &str = "fabric";

/// Process grouping for Model Tuning Server tracks.
pub const PROCESS_MODEL: &str = "model-server";
/// Process grouping for Inference Tuning Server tracks.
pub const PROCESS_INFERENCE: &str = "inference-server";
/// Process grouping for scheduler tracks (rungs, brackets).
pub const PROCESS_SCHEDULER: &str = "scheduler";
/// Process grouping for fault/degradation tracks.
pub const PROCESS_FAULTS: &str = "faults";
/// Process grouping for shard-fabric supervision tracks (one per
/// shard), on the fabric's own tracer.
pub const PROCESS_FABRIC: &str = "fabric";

/// Rebuilds the report's [`Timeline`] from a tracer's event stream.
///
/// Only span events in the [`CAT_MODEL`] / [`CAT_INFERENCE`] categories
/// participate, visited in **emission order** — not timestamp order.
/// The pre-trace `Timeline` pushed a trial's sweep span immediately
/// after its trial span even when the sweep starts later (the
/// non-pipelined ablation), so a timestamp sort would reorder the spans
/// and break the report's byte-stable JSON contract.
#[must_use]
pub fn timeline_from_trace(tracer: &Tracer) -> Timeline {
    let mut timeline = Timeline::new();
    for event in tracer.snapshot() {
        if let EventKind::Span { end } = event.kind {
            let lane = match event.category.as_str() {
                CAT_MODEL => Lane::ModelServer,
                CAT_INFERENCE => Lane::InferenceServer,
                _ => continue,
            };
            timeline.record(lane, event.name, event.ts, end);
        }
    }
    timeline
}

/// Replays a restored timeline into a tracer — the resume path.
///
/// A shard manifest persists the exact recorded timeline; on resume the
/// orchestrator seeds the fresh tracer with those spans (on dedicated
/// "restored" tracks) before any live trial runs, so
/// [`timeline_from_trace`] reproduces the uninterrupted run's span
/// sequence byte for byte.
pub fn seed_tracer_from_timeline(tracer: &Tracer, timeline: &Timeline) {
    for span in timeline.spans() {
        let (process, category) = match span.lane {
            Lane::ModelServer => (PROCESS_MODEL, CAT_MODEL),
            Lane::InferenceServer => (PROCESS_INFERENCE, CAT_INFERENCE),
        };
        let track = tracer.track(process, "restored");
        tracer.span(track, span.label.clone(), category, span.start, span.end);
    }
}

/// True when at least one inference-sweep span overlaps (strictly, in
/// open intervals) a training-trial span — the paper's Fig. 6
/// pipelining, read off the trace instead of eyeballed.
#[must_use]
pub fn has_pipelined_overlap(events: &[TraceEvent]) -> bool {
    let spans_of = |category: &str| -> Vec<(f64, f64)> {
        events
            .iter()
            .filter(|event| event.category == category)
            .filter_map(|event| event.span_end().map(|end| (event.ts.value(), end.value())))
            .collect()
    };
    let trials = spans_of(CAT_MODEL);
    let sweeps = spans_of(CAT_INFERENCE);
    sweeps.iter().any(|&(s_start, s_end)| {
        trials
            .iter()
            .any(|&(t_start, t_end)| s_start.max(t_start) < s_end.min(t_end))
    })
}

#[cfg(test)]
mod tests {
    use edgetune_util::units::Seconds;

    use super::*;

    #[test]
    fn timeline_round_trips_through_the_trace_in_emission_order() {
        let tracer = Tracer::new();
        let model = tracer.track(PROCESS_MODEL, "trial-slot-0");
        let sweep = tracer.track(PROCESS_INFERENCE, "sweep-slot-0");
        let rung = tracer.track(PROCESS_SCHEDULER, "rungs");
        // A non-pipelined sweep is emitted right after its trial but
        // *starts later* — emission order must survive the round trip.
        tracer.span(
            model,
            "trial-0",
            CAT_MODEL,
            Seconds::new(0.0),
            Seconds::new(4.0),
        );
        tracer.span(
            sweep,
            "ResNet/layers=18",
            CAT_INFERENCE,
            Seconds::new(4.0),
            Seconds::new(6.0),
        );
        tracer.span(
            model,
            "trial-1",
            CAT_MODEL,
            Seconds::new(6.0),
            Seconds::new(9.0),
        );
        tracer.span(
            rung,
            "rung-0",
            CAT_RUNG,
            Seconds::new(0.0),
            Seconds::new(9.0),
        );

        let timeline = timeline_from_trace(&tracer);
        let spans = timeline.spans();
        assert_eq!(spans.len(), 3, "rung spans stay out of the timeline");
        assert_eq!(spans[0].label, "trial-0");
        assert_eq!(spans[0].lane, Lane::ModelServer);
        assert_eq!(spans[1].label, "ResNet/layers=18");
        assert_eq!(spans[1].lane, Lane::InferenceServer);
        assert_eq!(spans[1].start, Seconds::new(4.0));
        assert_eq!(spans[2].label, "trial-1");
    }

    #[test]
    fn seeding_then_deriving_reproduces_a_timeline_exactly() {
        let mut original = Timeline::new();
        original.record(
            Lane::ModelServer,
            "trial-0",
            Seconds::new(0.0),
            Seconds::new(5.0),
        );
        original.record(
            Lane::InferenceServer,
            "arch-a",
            Seconds::new(5.0),
            Seconds::new(7.5),
        );
        original.record(
            Lane::ModelServer,
            "trial-1",
            Seconds::new(7.5),
            Seconds::new(9.0),
        );
        let tracer = Tracer::new();
        seed_tracer_from_timeline(&tracer, &original);
        assert_eq!(timeline_from_trace(&tracer), original);
    }

    #[test]
    fn overlap_detector_requires_cross_lane_overlap() {
        let tracer = Tracer::new();
        let model = tracer.track(PROCESS_MODEL, "trial-slot-0");
        let sweep = tracer.track(PROCESS_INFERENCE, "sweep-slot-0");
        tracer.span(
            model,
            "trial-0",
            CAT_MODEL,
            Seconds::new(0.0),
            Seconds::new(4.0),
        );
        tracer.span(
            sweep,
            "arch",
            CAT_INFERENCE,
            Seconds::new(4.0),
            Seconds::new(6.0),
        );
        assert!(
            !has_pipelined_overlap(&tracer.snapshot()),
            "touching endpoints are not overlap"
        );
        tracer.span(
            sweep,
            "arch2",
            CAT_INFERENCE,
            Seconds::new(1.0),
            Seconds::new(2.0),
        );
        assert!(has_pipelined_overlap(&tracer.snapshot()));
    }
}
