//! Asynchronous execution of the Inference Tuning Server.
//!
//! Algorithm 1 calls the inference server with `async` semantics: the
//! Model Tuning Server fires a request when a trial *starts* and collects
//! the answer when the trial *ends*, so inference tuning is pipelined with
//! training and "does not add any overhead to the main process" (§3.3).
//! This module provides that middleware plumbing: a dedicated worker
//! thread owning the [`InferenceTuningServer`] and the
//! [`HistoricalCache`], fed through crossbeam channels.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use edgetune_device::profile::WorkProfile;
use edgetune_util::units::{Joules, Seconds};
use edgetune_util::{Error, Result};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheKey, HistoricalCache};
use crate::inference::{InferenceRecommendation, InferenceTuningServer};

/// The answer to one inference-tuning request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReply {
    /// The deployment recommendation for the requested architecture.
    pub recommendation: InferenceRecommendation,
    /// Simulated duration the tuning sweep took (zero on a cache hit).
    pub runtime: Seconds,
    /// Simulated energy the tuning sweep consumed (zero on a cache hit).
    pub energy: Joules,
    /// Whether the answer came from the historical database.
    pub cache_hit: bool,
}

struct Request {
    key: CacheKey,
    profile: WorkProfile,
    reply: Sender<InferenceReply>,
}

/// A handle to an in-flight inference-tuning request.
#[derive(Debug)]
pub struct PendingReply {
    rx: Receiver<InferenceReply>,
}

impl PendingReply {
    /// Blocks until the reply arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Channel`] if the server shut down before
    /// answering.
    pub fn wait(&self) -> Result<InferenceReply> {
        self.rx
            .recv()
            .map_err(|_| Error::channel("inference server disconnected"))
    }

    /// Waits up to `timeout` for the reply.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Channel`] on timeout or disconnect.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<InferenceReply> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|e| Error::channel(format!("inference reply: {e}")))
    }

    /// Non-blocking poll.
    #[must_use]
    pub fn try_wait(&self) -> Option<InferenceReply> {
        self.rx.try_recv().ok()
    }
}

/// The asynchronous Inference Tuning Server: a background worker thread
/// plus the shared historical cache.
///
/// # Examples
///
/// ```
/// use edgetune::async_server::AsyncInferenceServer;
/// use edgetune::cache::{CacheKey, HistoricalCache};
/// use edgetune::inference::{InferenceSpace, InferenceTuningServer};
/// use edgetune_device::{DeviceSpec, WorkProfile};
/// use edgetune_tuner::objective::InferenceObjective;
/// use edgetune_tuner::Metric;
///
/// let device = DeviceSpec::raspberry_pi_3b();
/// let space = InferenceSpace::for_device(&device);
/// let inner = InferenceTuningServer::new(device, space, InferenceObjective::new(Metric::Runtime))?;
/// let server = AsyncInferenceServer::start(inner, HistoricalCache::new());
/// let key = CacheKey::new("Raspberry Pi 3B+", "ResNet/layers=18", Metric::Runtime);
/// let pending = server.submit(key, WorkProfile::new(0.56e9, 3.0e6, 44.8e6));
/// let reply = pending.wait()?;
/// assert!(!reply.cache_hit);
/// # Ok::<(), edgetune_util::Error>(())
/// ```
#[derive(Debug)]
pub struct AsyncInferenceServer {
    tx: Option<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<Mutex<HistoricalCache>>,
}

impl AsyncInferenceServer {
    /// Spawns a single-worker server with the historical cache enabled —
    /// the paper's configuration.
    #[must_use]
    pub fn start(server: InferenceTuningServer, cache: HistoricalCache) -> Self {
        Self::start_with_options(server, cache, 1, true)
    }

    /// Spawns the server with explicit options: `workers` concurrent
    /// sweep threads (useful when the model server parallelises its
    /// trials) and whether the historical cache is consulted (`caching =
    /// false` is the ablation of §3.4's look-up feature).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn start_with_options(
        server: InferenceTuningServer,
        cache: HistoricalCache,
        workers: usize,
        caching: bool,
    ) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let cache = Arc::new(Mutex::new(cache));
        let (tx, rx) = unbounded::<Request>();
        let server = Arc::new(server);
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let worker_cache = Arc::clone(&cache);
                let server = Arc::clone(&server);
                std::thread::Builder::new()
                    .name(format!("inference-tuning-server-{i}"))
                    .spawn(move || {
                        for request in rx {
                            let reply = Self::handle(&server, &worker_cache, &request, caching);
                            // The requester may have gone away; that is
                            // fine.
                            let _ = request.reply.send(reply);
                        }
                    })
                    .expect("spawning inference server thread")
            })
            .collect();
        AsyncInferenceServer {
            tx: Some(tx),
            workers: handles,
            cache,
        }
    }

    fn handle(
        server: &InferenceTuningServer,
        cache: &Mutex<HistoricalCache>,
        request: &Request,
        caching: bool,
    ) -> InferenceReply {
        if caching {
            if let Some(hit) = cache.lock().lookup(&request.key) {
                return InferenceReply {
                    recommendation: hit,
                    runtime: Seconds::ZERO,
                    energy: Joules::ZERO,
                    cache_hit: true,
                };
            }
        } else {
            cache.lock().note_miss();
        }
        let (recommendation, cost) = server.tune(&request.profile);
        if caching {
            cache.lock().store(&request.key, recommendation.clone());
        }
        InferenceReply {
            recommendation,
            runtime: cost.runtime,
            energy: cost.energy,
            cache_hit: false,
        }
    }

    /// Submits an architecture for inference tuning; returns immediately.
    ///
    /// # Panics
    ///
    /// Panics if called after [`AsyncInferenceServer::shutdown`] (the
    /// handle is consumed there, so this cannot happen in safe use).
    #[must_use]
    pub fn submit(&self, key: CacheKey, profile: WorkProfile) -> PendingReply {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .as_ref()
            .expect("server is running")
            .send(Request {
                key,
                profile,
                reply: reply_tx,
            })
            .expect("worker thread alive while handle exists");
        PendingReply { rx: reply_rx }
    }

    /// A snapshot of the historical cache.
    #[must_use]
    pub fn cache_snapshot(&self) -> HistoricalCache {
        self.cache.lock().clone()
    }

    /// Stops the workers (draining queued requests first) and returns
    /// the final cache.
    #[must_use]
    pub fn shutdown(mut self) -> HistoricalCache {
        self.tx = None; // close the channel; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let cache = Arc::clone(&self.cache);
        drop(self);
        match Arc::try_unwrap(cache) {
            Ok(mutex) => mutex.into_inner(),
            Err(shared) => shared.lock().clone(),
        }
    }
}

impl Drop for AsyncInferenceServer {
    fn drop(&mut self) {
        self.tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::InferenceSpace;
    use edgetune_device::spec::DeviceSpec;
    use edgetune_tuner::objective::InferenceObjective;
    use edgetune_tuner::Metric;

    fn start() -> AsyncInferenceServer {
        let device = DeviceSpec::raspberry_pi_3b();
        let space = InferenceSpace::for_device(&device);
        let inner =
            InferenceTuningServer::new(device, space, InferenceObjective::new(Metric::Runtime))
                .unwrap();
        AsyncInferenceServer::start(inner, HistoricalCache::new())
    }

    fn key(arch: &str) -> CacheKey {
        CacheKey::new("Raspberry Pi 3B+", arch, Metric::Runtime)
    }

    fn profile() -> WorkProfile {
        WorkProfile::new(0.56e9, 3.0e6, 44.8e6)
    }

    #[test]
    fn first_request_misses_second_hits() {
        let server = start();
        let first = server
            .submit(key("ResNet/layers=18"), profile())
            .wait()
            .unwrap();
        assert!(!first.cache_hit);
        assert!(first.runtime.value() > 0.0);
        let second = server
            .submit(key("ResNet/layers=18"), profile())
            .wait()
            .unwrap();
        assert!(
            second.cache_hit,
            "same architecture must be served from history"
        );
        assert_eq!(second.runtime, Seconds::ZERO);
        assert_eq!(second.recommendation, first.recommendation);
    }

    #[test]
    fn duplicate_inflight_requests_converge_to_one_computation() {
        let server = start();
        // Two requests for the same architecture before either completes:
        // the worker serialises them, so the second is a cache hit.
        let a = server.submit(key("ResNet/layers=34"), profile());
        let b = server.submit(key("ResNet/layers=34"), profile());
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert!(!ra.cache_hit);
        assert!(rb.cache_hit);
    }

    #[test]
    fn different_architectures_are_tuned_separately() {
        let server = start();
        let light = server.submit(key("light"), profile()).wait().unwrap();
        let heavy = server
            .submit(key("heavy"), WorkProfile::new(8.5e9, 30.0e6, 246.0e6))
            .wait()
            .unwrap();
        assert!(!light.cache_hit && !heavy.cache_hit);
        assert!(heavy.recommendation.throughput.value() < light.recommendation.throughput.value());
        assert_eq!(server.cache_snapshot().len(), 2);
    }

    #[test]
    fn pipelining_requests_overlap() {
        let server = start();
        // Fire several requests without waiting — the model server's
        // pattern — then collect them all.
        let pendings: Vec<PendingReply> = (0..4)
            .map(|i| server.submit(key(&format!("arch-{i}")), profile()))
            .collect();
        for p in pendings {
            let reply = p.wait_timeout(Duration::from_secs(30)).unwrap();
            assert!(reply.recommendation.throughput.value() > 0.0);
        }
    }

    #[test]
    fn try_wait_is_nonblocking() {
        let server = start();
        let pending = server.submit(key("slow"), profile());
        // May or may not be ready instantly; both are valid — the call
        // just must not block.
        let _ = pending.try_wait();
        let reply = pending.wait().unwrap();
        assert!(reply.recommendation.batch >= 1);
    }

    #[test]
    fn shutdown_returns_populated_cache() {
        let server = start();
        server.submit(key("a"), profile()).wait().unwrap();
        let cache = server.shutdown();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let server = start();
        let pending = server.submit(key("queued"), profile());
        let cache = server.shutdown();
        assert_eq!(
            cache.len(),
            1,
            "queued request must be processed before exit"
        );
        let reply = pending.wait().unwrap();
        assert!(!reply.cache_hit);
    }
}
