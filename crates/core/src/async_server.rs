//! Asynchronous execution of the Inference Tuning Server.
//!
//! Algorithm 1 calls the inference server with `async` semantics: the
//! Model Tuning Server fires a request when a trial *starts* and collects
//! the answer when the trial *ends*, so inference tuning is pipelined with
//! training and "does not add any overhead to the main process" (§3.3).
//! This module provides that middleware plumbing: a dedicated worker
//! thread owning the [`InferenceTuningServer`] and the
//! [`HistoricalCache`], fed through crossbeam channels.
//!
//! Under a sharded study (`study_shards > 1`) this server is the one
//! cross-shard channel: every engine shard measures its rung slice in
//! isolation, but all of them submit their inference requests here, so
//! Algorithm 1's memoisation — one sweep per architecture, ever —
//! survives sharding intact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use edgetune_device::profile::WorkProfile;
use edgetune_faults::FaultInjector;
use edgetune_util::units::{Joules, Seconds};
use edgetune_util::{Error, Result};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheKey, HistoricalCache};
use crate::inference::{InferenceRecommendation, InferenceTuningServer};

/// The answer to one inference-tuning request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReply {
    /// The deployment recommendation for the requested architecture.
    pub recommendation: InferenceRecommendation,
    /// Simulated duration the tuning sweep took (zero on a cache hit).
    pub runtime: Seconds,
    /// Simulated energy the tuning sweep consumed (zero on a cache hit).
    pub energy: Joules,
    /// Whether the answer came from the historical database.
    pub cache_hit: bool,
}

struct Request {
    key: CacheKey,
    profile: WorkProfile,
    reply: Sender<InferenceReply>,
    /// Submission sequence number — the stable index fault decisions are
    /// keyed by, so injected chaos is independent of worker scheduling.
    seq: u64,
}

/// Shared per-server fault counters (observability for chaos runs).
#[derive(Debug, Default)]
struct FaultCounters {
    /// Real panics caught (and survived) by the worker supervision loop.
    panics: AtomicU64,
    /// Requests dropped by injected worker deaths.
    injected_losses: AtomicU64,
    /// Sweeps delayed by injected transient device outages.
    injected_outages: AtomicU64,
}

/// A handle to an in-flight inference-tuning request.
#[derive(Debug)]
pub struct PendingReply {
    rx: Receiver<InferenceReply>,
}

impl PendingReply {
    /// Blocks until the reply arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Channel`] if the server shut down before
    /// answering.
    pub fn wait(&self) -> Result<InferenceReply> {
        self.rx
            .recv()
            .map_err(|_| Error::channel("inference server disconnected"))
    }

    /// Waits up to `timeout` for the reply.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Channel`] on timeout or disconnect.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<InferenceReply> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|e| Error::channel(format!("inference reply: {e}")))
    }

    /// Non-blocking poll.
    #[must_use]
    pub fn try_wait(&self) -> Option<InferenceReply> {
        self.rx.try_recv().ok()
    }
}

/// The asynchronous Inference Tuning Server: a background worker thread
/// plus the shared historical cache.
///
/// # Examples
///
/// ```
/// use edgetune::async_server::AsyncInferenceServer;
/// use edgetune::cache::{CacheKey, HistoricalCache};
/// use edgetune::inference::{InferenceSpace, InferenceTuningServer};
/// use edgetune_device::{DeviceSpec, WorkProfile};
/// use edgetune_tuner::objective::InferenceObjective;
/// use edgetune_tuner::Metric;
///
/// let device = DeviceSpec::raspberry_pi_3b();
/// let space = InferenceSpace::for_device(&device);
/// let inner = InferenceTuningServer::new(device, space, InferenceObjective::new(Metric::Runtime))?;
/// let server = AsyncInferenceServer::start(inner, HistoricalCache::new());
/// let key = CacheKey::new("Raspberry Pi 3B+", "ResNet/layers=18", Metric::Runtime);
/// let pending = server.submit(key, WorkProfile::new(0.56e9, 3.0e6, 44.8e6));
/// let reply = pending.wait()?;
/// assert!(!reply.cache_hit);
/// # Ok::<(), edgetune_util::Error>(())
/// ```
#[derive(Debug)]
pub struct AsyncInferenceServer {
    tx: Option<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<Mutex<HistoricalCache>>,
    counters: Arc<FaultCounters>,
    next_seq: AtomicU64,
}

impl AsyncInferenceServer {
    /// Spawns a single-worker server with the historical cache enabled —
    /// the paper's configuration.
    #[must_use]
    pub fn start(server: InferenceTuningServer, cache: HistoricalCache) -> Self {
        Self::start_with_options(server, cache, 1, true)
    }

    /// Spawns the server with explicit options: `workers` concurrent
    /// sweep threads (useful when the model server parallelises its
    /// trials) and whether the historical cache is consulted (`caching =
    /// false` is the ablation of §3.4's look-up feature).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn start_with_options(
        server: InferenceTuningServer,
        cache: HistoricalCache,
        workers: usize,
        caching: bool,
    ) -> Self {
        Self::start_supervised(server, cache, workers, caching, None, 0)
    }

    /// Spawns the server with a fault injector and the request-sequence
    /// cursor to resume from (chaos runs; checkpoint/resume). With
    /// `faults: None` and `first_seq: 0` this is exactly
    /// [`AsyncInferenceServer::start_with_options`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn start_supervised(
        server: InferenceTuningServer,
        cache: HistoricalCache,
        workers: usize,
        caching: bool,
        faults: Option<FaultInjector>,
        first_seq: u64,
    ) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let cache = Arc::new(Mutex::new(cache));
        let counters = Arc::new(FaultCounters::default());
        let (tx, rx) = unbounded::<Request>();
        let server = Arc::new(server);
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let worker_cache = Arc::clone(&cache);
                let server = Arc::clone(&server);
                let counters = Arc::clone(&counters);
                let faults = faults.clone();
                std::thread::Builder::new()
                    .name(format!("inference-tuning-server-{i}"))
                    .spawn(move || {
                        Self::worker_loop(
                            &rx,
                            &server,
                            &worker_cache,
                            caching,
                            faults.as_ref(),
                            &counters,
                        );
                    })
                    .expect("spawning inference server thread")
            })
            .collect();
        AsyncInferenceServer {
            tx: Some(tx),
            workers: handles,
            cache,
            counters,
            next_seq: AtomicU64::new(first_seq),
        }
    }

    /// The supervised worker body: a real panic in request handling is
    /// caught and counted instead of killing the thread, so the worker
    /// slot effectively respawns for the next request (the requester of
    /// the poisoned request sees a dropped reply channel and degrades).
    fn worker_loop(
        rx: &Receiver<Request>,
        server: &InferenceTuningServer,
        cache: &Mutex<HistoricalCache>,
        caching: bool,
        faults: Option<&FaultInjector>,
        counters: &FaultCounters,
    ) {
        loop {
            let Ok(request) = rx.recv() else {
                break; // channel closed: orderly shutdown
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(injector) = faults {
                    if injector.worker_panic(request.seq) {
                        // Simulated worker death mid-request: the request
                        // (and its reply sender) is dropped without an
                        // answer, exactly what the requester of a panicked
                        // worker observes — minus the stderr backtrace.
                        counters.injected_losses.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                let mut reply = Self::handle(server, cache, &request, caching);
                if let Some(injector) = faults {
                    if !reply.cache_hit {
                        if let Some(outage) = injector.device_outage(request.seq) {
                            // Transient device unavailability: the sweep
                            // is retried once the device returns, so its
                            // effective runtime stretches by the outage.
                            reply.runtime += outage;
                            counters.injected_outages.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // The requester may have gone away; that is fine.
                let _ = request.reply.send(reply);
            }));
            if outcome.is_err() {
                counters.panics.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn handle(
        server: &InferenceTuningServer,
        cache: &Mutex<HistoricalCache>,
        request: &Request,
        caching: bool,
    ) -> InferenceReply {
        if caching {
            if let Some(hit) = cache.lock().lookup(&request.key) {
                return InferenceReply {
                    recommendation: hit,
                    runtime: Seconds::ZERO,
                    energy: Joules::ZERO,
                    cache_hit: true,
                };
            }
        } else {
            cache.lock().note_miss();
        }
        let (recommendation, cost) = server.tune(&request.profile);
        if caching {
            cache.lock().store(&request.key, recommendation.clone());
        }
        InferenceReply {
            recommendation,
            runtime: cost.runtime,
            energy: cost.energy,
            cache_hit: false,
        }
    }

    /// Submits an architecture for inference tuning; returns immediately.
    ///
    /// # Panics
    ///
    /// Panics if called after [`AsyncInferenceServer::shutdown`] (the
    /// handle is consumed there, so this cannot happen in safe use).
    #[must_use]
    pub fn submit(&self, key: CacheKey, profile: WorkProfile) -> PendingReply {
        self.try_submit(key, profile)
            .expect("worker thread alive while handle exists")
    }

    /// Like [`AsyncInferenceServer::submit`], but returns `None` instead
    /// of panicking if every worker is gone — the degradation ladder's
    /// retry rung uses this so a resubmission can never crash the Model
    /// Tuning Server.
    #[must_use]
    pub fn try_submit(&self, key: CacheKey, profile: WorkProfile) -> Option<PendingReply> {
        let (reply_tx, reply_rx) = unbounded();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.tx
            .as_ref()
            .expect("server is running")
            .send(Request {
                key,
                profile,
                reply: reply_tx,
                seq,
            })
            .ok()?;
        Some(PendingReply { rx: reply_rx })
    }

    /// A snapshot of the historical cache.
    #[must_use]
    pub fn cache_snapshot(&self) -> HistoricalCache {
        self.cache.lock().clone()
    }

    /// The cache's current hit/miss counters, read without cloning the
    /// entry table. This is the single tally both trace counter events
    /// and checkpoint manifests read, so the numbers can never diverge.
    #[must_use]
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.lock().stats()
    }

    /// Reads a cache entry without touching statistics — the stale-cache
    /// rung of the degradation ladder.
    #[must_use]
    pub fn peek(&self, key: &CacheKey) -> Option<InferenceRecommendation> {
        self.cache.lock().peek(key).cloned()
    }

    /// Requests submitted so far — the inference-side fault cursor a
    /// study checkpoint stores.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Real worker panics caught by the supervision loop.
    #[must_use]
    pub fn worker_panics(&self) -> u64 {
        self.counters.panics.load(Ordering::Relaxed)
    }

    /// Requests dropped by injected worker deaths.
    #[must_use]
    pub fn injected_losses(&self) -> u64 {
        self.counters.injected_losses.load(Ordering::Relaxed)
    }

    /// Sweeps delayed by injected device outages.
    #[must_use]
    pub fn injected_outages(&self) -> u64 {
        self.counters.injected_outages.load(Ordering::Relaxed)
    }

    /// Stops the workers (draining queued requests first) and returns
    /// the final cache.
    #[must_use]
    pub fn shutdown(mut self) -> HistoricalCache {
        self.tx = None; // close the channel; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let cache = Arc::clone(&self.cache);
        drop(self);
        match Arc::try_unwrap(cache) {
            Ok(mutex) => mutex.into_inner(),
            Err(shared) => shared.lock().clone(),
        }
    }
}

impl Drop for AsyncInferenceServer {
    fn drop(&mut self) {
        self.tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::InferenceSpace;
    use edgetune_device::spec::DeviceSpec;
    use edgetune_tuner::objective::InferenceObjective;
    use edgetune_tuner::Metric;

    fn start() -> AsyncInferenceServer {
        let device = DeviceSpec::raspberry_pi_3b();
        let space = InferenceSpace::for_device(&device);
        let inner =
            InferenceTuningServer::new(device, space, InferenceObjective::new(Metric::Runtime))
                .unwrap();
        AsyncInferenceServer::start(inner, HistoricalCache::new())
    }

    fn key(arch: &str) -> CacheKey {
        CacheKey::new("Raspberry Pi 3B+", arch, Metric::Runtime)
    }

    fn profile() -> WorkProfile {
        WorkProfile::new(0.56e9, 3.0e6, 44.8e6)
    }

    #[test]
    fn first_request_misses_second_hits() {
        let server = start();
        let first = server
            .submit(key("ResNet/layers=18"), profile())
            .wait()
            .unwrap();
        assert!(!first.cache_hit);
        assert!(first.runtime.value() > 0.0);
        let second = server
            .submit(key("ResNet/layers=18"), profile())
            .wait()
            .unwrap();
        assert!(
            second.cache_hit,
            "same architecture must be served from history"
        );
        assert_eq!(second.runtime, Seconds::ZERO);
        assert_eq!(second.recommendation, first.recommendation);
    }

    #[test]
    fn duplicate_inflight_requests_converge_to_one_computation() {
        let server = start();
        // Two requests for the same architecture before either completes:
        // the worker serialises them, so the second is a cache hit.
        let a = server.submit(key("ResNet/layers=34"), profile());
        let b = server.submit(key("ResNet/layers=34"), profile());
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert!(!ra.cache_hit);
        assert!(rb.cache_hit);
    }

    #[test]
    fn different_architectures_are_tuned_separately() {
        let server = start();
        let light = server.submit(key("light"), profile()).wait().unwrap();
        let heavy = server
            .submit(key("heavy"), WorkProfile::new(8.5e9, 30.0e6, 246.0e6))
            .wait()
            .unwrap();
        assert!(!light.cache_hit && !heavy.cache_hit);
        assert!(heavy.recommendation.throughput.value() < light.recommendation.throughput.value());
        assert_eq!(server.cache_snapshot().len(), 2);
    }

    #[test]
    fn pipelining_requests_overlap() {
        let server = start();
        // Fire several requests without waiting — the model server's
        // pattern — then collect them all.
        let pendings: Vec<PendingReply> = (0..4)
            .map(|i| server.submit(key(&format!("arch-{i}")), profile()))
            .collect();
        for p in pendings {
            // `wait` blocks on channel signaling (no polling deadline):
            // it returns as soon as the worker replies or errors as soon
            // as the reply sender is dropped, so the test never sits on a
            // wall-clock timeout.
            let reply = p.wait().unwrap();
            assert!(reply.recommendation.throughput.value() > 0.0);
        }
    }

    #[test]
    fn try_wait_is_nonblocking() {
        let server = start();
        let pending = server.submit(key("slow"), profile());
        // May or may not be ready instantly; both are valid — the call
        // just must not block. When it *is* ready, `try_wait` receives
        // (and thereby consumes) the reply, so fall back to `wait` only
        // in the not-ready case.
        let reply = match pending.try_wait() {
            Some(reply) => reply,
            None => pending.wait().unwrap(),
        };
        assert!(reply.recommendation.batch >= 1);
    }

    #[test]
    fn shutdown_returns_populated_cache() {
        let server = start();
        server.submit(key("a"), profile()).wait().unwrap();
        let cache = server.shutdown();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let server = start();
        let pending = server.submit(key("queued"), profile());
        let cache = server.shutdown();
        assert_eq!(
            cache.len(),
            1,
            "queued request must be processed before exit"
        );
        let reply = pending.wait().unwrap();
        assert!(!reply.cache_hit);
    }

    fn start_supervised(plan: edgetune_faults::FaultPlan) -> AsyncInferenceServer {
        use edgetune_util::rng::SeedStream;
        let device = DeviceSpec::raspberry_pi_3b();
        let space = InferenceSpace::for_device(&device);
        let inner =
            InferenceTuningServer::new(device, space, InferenceObjective::new(Metric::Runtime))
                .unwrap();
        AsyncInferenceServer::start_supervised(
            inner,
            HistoricalCache::new(),
            1,
            true,
            Some(FaultInjector::new(plan, SeedStream::new(77))),
            0,
        )
    }

    #[test]
    fn injected_worker_death_drops_the_reply_but_not_the_server() {
        use edgetune_faults::FaultPlan;
        // Every request's worker dies: the requester times out, yet the
        // server keeps accepting and the process survives.
        let server = start_supervised(FaultPlan::none().with_worker_panic(1.0));
        let pending = server.submit(key("doomed"), profile());
        // An injected death drops the reply sender, so `wait` fails via
        // channel disconnect immediately — no 500 ms wall-clock stall.
        assert!(pending.wait().is_err());
        assert_eq!(server.injected_losses(), 1);
        // The worker slot survived the injected death.
        let second = server.submit(key("also-doomed"), profile());
        assert!(second.wait().is_err());
        assert_eq!(server.injected_losses(), 2);
        assert_eq!(server.submitted(), 2);
    }

    #[test]
    fn injected_outage_stretches_the_sweep_runtime() {
        use edgetune_faults::FaultPlan;
        let plan = FaultPlan {
            device_outage: 1.0,
            outage_duration_s: 30.0,
            ..FaultPlan::none()
        };
        let server = start_supervised(plan);
        let first = server.submit(key("a"), profile()).wait().unwrap();
        assert!(
            first.runtime.value() >= 30.0,
            "the outage must extend the sweep: {}",
            first.runtime
        );
        assert_eq!(server.injected_outages(), 1);
        // Cache hits never touch the device, so they see no outage.
        let hit = server.submit(key("a"), profile()).wait().unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.runtime, Seconds::ZERO);
        assert_eq!(server.injected_outages(), 1);
    }

    #[test]
    fn cache_stats_accessor_matches_the_snapshot_tally() {
        let server = start();
        server.submit(key("a"), profile()).wait().unwrap();
        server.submit(key("a"), profile()).wait().unwrap();
        let stats = server.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(server.cache_snapshot().stats(), stats);
    }

    #[test]
    fn unsupervised_server_reports_zero_fault_counters() {
        let server = start();
        let _ = server.submit(key("a"), profile()).wait().unwrap();
        assert_eq!(server.worker_panics(), 0);
        assert_eq!(server.injected_losses(), 0);
        assert_eq!(server.injected_outages(), 0);
    }
}
