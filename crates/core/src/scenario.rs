//! Scenario-aware inference tuning: the Batching subcomponent applied
//! end to end.
//!
//! §3.4 describes Batching as part of the Inference Tuning Server: when
//! the deployment's traffic pattern is known (the Fig. 8 *server* or
//! *multi-stream* scenarios), the batch size should be chosen for that
//! pattern's **mean response time**, not for raw steady-state throughput.
//! This module sweeps the device's system parameters jointly with the
//! batch size under the scenario's queueing model and returns a
//! [`ScenarioRecommendation`].

use edgetune_device::latency::CpuAllocation;
use edgetune_device::profile::WorkProfile;
use edgetune_device::spec::DeviceSpec;
use edgetune_util::rng::SeedStream;
use edgetune_util::units::{Hertz, Seconds};
use edgetune_util::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::batching::{MultiStreamScenario, ServerScenario};
use crate::inference::InferenceSpace;

/// A deployment traffic pattern (Fig. 8).
///
/// Serialisable so that tuning requests and recommendations can carry
/// the scenario they were produced for (CLI `--scenario`, serving
/// reports). `Eq` is not derived: both variants carry `f64` timing
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Fixed-frequency queries of N samples each.
    Server(ServerScenario),
    /// Poisson single-sample arrivals.
    MultiStream(MultiStreamScenario),
}

/// The scenario-aware deployment recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRecommendation {
    /// Edge device the recommendation targets.
    pub device: String,
    /// Batch size (sub-batch split for the server scenario; aggregation
    /// cap for the multi-stream scenario).
    pub batch: u32,
    /// CPU cores.
    pub cores: u32,
    /// DVFS frequency.
    pub freq: Hertz,
    /// Predicted mean response time under the scenario.
    pub mean_response: Seconds,
}

/// Sweeps batch × cores × frequency for the scenario's mean response
/// time and returns the optimum; `Err` when *no* configuration is stable
/// (the server scenario's arrival rate exceeds every configuration's
/// capacity).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for an invalid space and
/// [`Error::Numerical`] when no stable configuration exists.
pub fn tune_for_scenario(
    device: &DeviceSpec,
    space: &InferenceSpace,
    profile: &WorkProfile,
    scenario: &Scenario,
    seed: SeedStream,
) -> Result<ScenarioRecommendation> {
    space.validate(device)?;
    let mut best: Option<ScenarioRecommendation> = None;
    for &cores in &space.cores {
        for &freq in &space.freqs {
            let alloc = CpuAllocation::new(device, cores, freq)?;
            for &batch in &space.batches {
                let response = match scenario {
                    Scenario::Server(s) => s.response_time(device, &alloc, profile, batch),
                    Scenario::MultiStream(s) => Some(
                        s.simulate_with_timeout(
                            device,
                            &alloc,
                            profile,
                            batch,
                            Seconds::ZERO,
                            seed,
                        )
                        .mean_response,
                    ),
                };
                let Some(response) = response else { continue };
                if best.as_ref().is_none_or(|b| response < b.mean_response) {
                    best = Some(ScenarioRecommendation {
                        device: device.name.clone(),
                        batch,
                        cores,
                        freq,
                        mean_response: response,
                    });
                }
            }
        }
    }
    best.ok_or_else(|| Error::numerical("no stable configuration for the scenario's arrival rate"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune_workloads::catalog::Workload;
    use edgetune_workloads::WorkloadId;

    fn setup() -> (DeviceSpec, InferenceSpace, WorkProfile) {
        let device = DeviceSpec::raspberry_pi_3b();
        let space = InferenceSpace::for_device(&device);
        let profile = Workload::by_id(WorkloadId::Ic).profile(18.0);
        (device, space, profile)
    }

    #[test]
    fn server_scenario_recommendation_is_stable_and_batched() {
        let (device, space, profile) = setup();
        let scenario = Scenario::Server(ServerScenario::new(64, Seconds::new(30.0)));
        let rec =
            tune_for_scenario(&device, &space, &profile, &scenario, SeedStream::new(1)).unwrap();
        assert!(
            rec.batch > 1,
            "splitting 64 samples one-by-one cannot be optimal"
        );
        assert!(rec.mean_response.value() < 30.0, "stable by construction");
        assert_eq!(rec.device, device.name);
    }

    #[test]
    fn impossible_server_scenario_is_rejected() {
        let (device, space, profile) = setup();
        // 64 heavy samples every 50 ms cannot be served on a Pi.
        let scenario = Scenario::Server(ServerScenario::new(64, Seconds::new(0.05)));
        let err = tune_for_scenario(&device, &space, &profile, &scenario, SeedStream::new(1))
            .unwrap_err();
        assert!(matches!(err, Error::Numerical(_)));
    }

    #[test]
    fn multi_stream_recommendation_prefers_aggregation_under_load() {
        let (device, space, profile) = setup();
        let scenario = Scenario::MultiStream(MultiStreamScenario::new(30.0, 400));
        let rec =
            tune_for_scenario(&device, &space, &profile, &scenario, SeedStream::new(2)).unwrap();
        assert!(
            rec.batch >= 8,
            "30 arrivals/s on a Pi needs aggregation: batch={}",
            rec.batch
        );
        assert!(rec.mean_response.value().is_finite());
    }

    #[test]
    fn scenario_and_throughput_optima_can_differ() {
        // The §3.4 point: the best steady-state-throughput configuration
        // is not automatically the best mean-response configuration for a
        // specific traffic pattern.
        let (device, space, profile) = setup();
        let light = Scenario::MultiStream(MultiStreamScenario::new(0.2, 200));
        let rec = tune_for_scenario(&device, &space, &profile, &light, SeedStream::new(3)).unwrap();
        // Under very light load there is nothing to aggregate: waiting
        // for big batches cannot pay off, so the optimum is a small batch
        // — unlike the throughput optimum (batch 100).
        assert!(
            rec.batch <= 4,
            "light load favours immediate service: {}",
            rec.batch
        );
    }

    #[test]
    fn scenario_serialises_round_trip() {
        for scenario in [
            Scenario::Server(ServerScenario::new(64, Seconds::new(30.0))),
            Scenario::MultiStream(MultiStreamScenario::new(12.5, 400)),
        ] {
            let json = serde_json::to_string(&scenario).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(scenario, back);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let (device, space, profile) = setup();
        let scenario = Scenario::MultiStream(MultiStreamScenario::new(10.0, 300));
        let a =
            tune_for_scenario(&device, &space, &profile, &scenario, SeedStream::new(7)).unwrap();
        let b =
            tune_for_scenario(&device, &space, &profile, &scenario, SeedStream::new(7)).unwrap();
        assert_eq!(a, b);
    }
}
