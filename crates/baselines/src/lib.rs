//! Baseline tuning systems the paper evaluates EdgeTune against.
//!
//! * [`tune`] — the **Tune** baseline (§5.1): BOHB over hyperparameters
//!   only, epoch-based budget, system parameters fixed to the framework
//!   default (every GPU on the node), no inference awareness. Used in
//!   Fig. 14.
//! * [`hyperpower`] — **HyperPower**: Bayesian (TPE) hyperparameter
//!   optimisation with power-constrained early termination; tuning- and
//!   training-oriented objective, no inference output. Used in Fig. 17.
//! * [`hierarchical`] — the two-tier strategy of §4.1/Fig. 9: first tune
//!   hyperparameters for accuracy, then tune system parameters for the
//!   frozen winner.
//! * [`deploy`] — shared helpers evaluating how a tuner's chosen
//!   architecture actually performs at the edge, used for the inference
//!   columns of Figs. 14, 16 and 17.

pub mod deploy;
pub mod hierarchical;
pub mod hyperpower;
pub mod report;
pub mod tune;

pub use hierarchical::HierarchicalTuner;
pub use hyperpower::HyperPower;
pub use report::BaselineReport;
pub use tune::TuneBaseline;
