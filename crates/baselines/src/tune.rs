//! The **Tune** baseline (§5.1).
//!
//! "Our baseline system (i.e., Tune) uses the tuning of hyperparameters
//! ignoring all system parameters and the inference phase. For a fair
//! comparison, we configure Tune to use the same searching algorithm as
//! EdgeTune (i.e., BOHB)." Concretely:
//!
//! * search space: model + training hyperparameters only,
//! * system parameters fixed to the framework default — *all* GPUs of
//!   the node, the Ray-style "use what is available" allocation,
//! * budget: the conventional epoch-based ladder,
//! * objective: maximise model accuracy — no system-cost and no
//!   inference factor,
//! * no Inference Tuning Server, hence no deployment recommendation.

use edgetune::backend::{SimTrainingBackend, TrainingBackend};
use edgetune_tuner::budget::BudgetPolicy;
use edgetune_tuner::objective::{TrainMeasurement, TrainObjective};
use edgetune_tuner::sampler::TpeSampler;
use edgetune_tuner::scheduler::{HyperBand, SchedulerConfig};
use edgetune_tuner::trial::TrialOutcome;
use edgetune_util::rng::SeedStream;
use edgetune_workloads::catalog::{Workload, WorkloadId};

/// The Tune baseline runner.
#[derive(Debug, Clone)]
pub struct TuneBaseline {
    workload: WorkloadId,
    scheduler: SchedulerConfig,
    gpus: u32,
    seed: u64,
}

impl TuneBaseline {
    /// Creates the baseline with the paper's defaults for a workload
    /// (BOHB, epoch budget, all 8 GPUs).
    #[must_use]
    pub fn new(workload: WorkloadId) -> Self {
        TuneBaseline {
            workload,
            scheduler: SchedulerConfig::new(8, 2.0, 8),
            gpus: 8,
            seed: SeedStream::default().seed(),
        }
    }

    /// Overrides the scheduler shape (keep it equal to EdgeTune's for
    /// fair comparisons).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Overrides the fixed GPU allocation.
    #[must_use]
    pub fn with_gpus(mut self, gpus: u32) -> Self {
        self.gpus = gpus;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the baseline tuning job.
    #[must_use]
    pub fn run(&self) -> crate::report::BaselineReport {
        let workload = Workload::by_id(self.workload);
        let mut backend =
            SimTrainingBackend::new(workload, SeedStream::new(self.seed).child("tune-trials"))
                .with_fixed_gpus(self.gpus);
        let space = backend.search_space();
        let objective = TrainObjective::accuracy_only();
        let mut sampler = TpeSampler::new(SeedStream::new(self.seed).child("tune-sampler"));
        let mut evaluator =
            |_id: u64,
             config: &edgetune_tuner::space::Config,
             budget: edgetune_tuner::budget::TrialBudget| {
                let m = backend.run_trial(config, budget);
                let score = objective.score(&TrainMeasurement {
                    accuracy: m.accuracy,
                    train_time: m.runtime,
                    train_energy: m.energy,
                    inference_time: None,
                    inference_energy: None,
                });
                TrialOutcome::new(score, m.accuracy, m.runtime, m.energy)
            };
        let history = HyperBand::new(self.scheduler).run(
            &mut sampler,
            &space,
            &BudgetPolicy::epoch_default(),
            &mut evaluator,
        );
        crate::report::BaselineReport::new(history)
    }

    /// The architecture profile the baseline's winner selects (for
    /// deployment comparison).
    #[must_use]
    pub fn winning_architecture(
        &self,
        report: &crate::report::BaselineReport,
    ) -> (String, edgetune_device::WorkProfile) {
        let workload = Workload::by_id(self.workload);
        let backend =
            SimTrainingBackend::new(workload, SeedStream::new(self.seed).child("tune-trials"))
                .with_fixed_gpus(self.gpus);
        backend.architecture(report.best_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune::backend::{PARAM_GPUS, PARAM_MODEL_HP};
    use edgetune::prelude::*;

    fn quick() -> TuneBaseline {
        TuneBaseline::new(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
            .with_seed(42)
    }

    #[test]
    fn tune_ignores_system_parameters() {
        let report = quick().run();
        assert!(report.best_config().get(PARAM_GPUS).is_none());
        assert!(report.best_config().get(PARAM_MODEL_HP).is_some());
        assert!(report.best_accuracy() > 0.0);
    }

    #[test]
    fn tune_is_deterministic() {
        let a = quick().run();
        let b = quick().run();
        assert_eq!(a.best_config(), b.best_config());
        assert_eq!(a.tuning_runtime(), b.tuning_runtime());
    }

    #[test]
    fn edgetune_beats_tune_on_tuning_cost() {
        // The Fig. 14 comparison at small scale: same scheduler shape,
        // same workload, same seed family.
        let tune = quick().run();
        let edgetune = EdgeTune::new(
            EdgeTuneConfig::for_workload(WorkloadId::Ic)
                .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
                .with_seed(42),
        )
        .run()
        .unwrap();
        let runtime_gain = 1.0 - edgetune.tuning_runtime().value() / tune.tuning_runtime().value();
        let energy_gain = 1.0 - edgetune.tuning_energy().value() / tune.tuning_energy().value();
        assert!(
            runtime_gain > 0.05,
            "EdgeTune should tune faster (paper: ≈18%): gain={runtime_gain:.3}"
        );
        assert!(
            energy_gain > 0.25,
            "EdgeTune should tune much cheaper (paper: ≈53%): gain={energy_gain:.3}"
        );
    }

    #[test]
    fn winning_architecture_is_consistent_with_config() {
        let baseline = quick();
        let report = baseline.run();
        let (sig, profile) = baseline.winning_architecture(&report);
        let hp = report.best_config().get(PARAM_MODEL_HP).unwrap();
        assert!(sig.contains(&format!("layers={hp}")));
        assert!(profile.flops_per_sample > 0.0);
    }
}
