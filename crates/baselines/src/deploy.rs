//! Deployment evaluation: how a tuner's chosen model performs at the
//! edge.
//!
//! The paper's inference columns (Figs. 13, 14, 16, 17) measure the
//! throughput and per-image energy of the architecture each system
//! selected, deployed on the edge device. For fairness the HyperPower
//! comparison (§5.5) deploys *both* systems' models with the inference
//! parameters EdgeTune recommends — HyperPower itself outputs none — so
//! the differences reflect the chosen architectures.

use edgetune::inference::{InferenceRecommendation, InferenceSpace, InferenceTuningServer};
use edgetune_device::latency::{simulate_inference, CpuAllocation};
use edgetune_device::profile::WorkProfile;
use edgetune_device::spec::DeviceSpec;
use edgetune_tuner::objective::InferenceObjective;
use edgetune_tuner::Metric;
use edgetune_util::units::{energy_per_item, throughput, ItemsPerSecond, JoulesPerItem};
use edgetune_util::Result;

/// Edge performance of one deployed architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deployment {
    /// Sustained inference throughput.
    pub throughput: ItemsPerSecond,
    /// Energy per processed item.
    pub energy_per_item: JoulesPerItem,
}

/// Deploys `profile` with an explicit recommendation's parameters.
///
/// # Errors
///
/// Returns an error when the recommendation's cores/frequency are invalid
/// for `device`.
pub fn deploy_with(
    device: &DeviceSpec,
    profile: &WorkProfile,
    recommendation: &InferenceRecommendation,
) -> Result<Deployment> {
    let alloc = CpuAllocation::new(device, recommendation.cores, recommendation.freq)?;
    let exec = simulate_inference(device, &alloc, profile, recommendation.batch);
    Ok(Deployment {
        throughput: throughput(f64::from(recommendation.batch), exec.latency),
        energy_per_item: energy_per_item(exec.energy, f64::from(recommendation.batch)),
    })
}

/// Deploys `profile` naively: single-sample inference on all cores at max
/// frequency — what a user does with a tuner that gives no inference
/// guidance.
#[must_use]
pub fn deploy_default(device: &DeviceSpec, profile: &WorkProfile) -> Deployment {
    let alloc = CpuAllocation::full(device);
    let exec = simulate_inference(device, &alloc, profile, 1);
    Deployment {
        throughput: throughput(1.0, exec.latency),
        energy_per_item: energy_per_item(exec.energy, 1.0),
    }
}

/// Tunes inference parameters for `profile` from scratch and deploys with
/// the optimum (what EdgeTune's recommendation achieves).
///
/// # Errors
///
/// Propagates inference-space validation errors.
pub fn deploy_tuned(
    device: &DeviceSpec,
    profile: &WorkProfile,
    metric: Metric,
) -> Result<(Deployment, InferenceRecommendation)> {
    let server = InferenceTuningServer::new(
        device.clone(),
        InferenceSpace::for_device(device),
        InferenceObjective::new(metric),
    )?;
    let (recommendation, _) = server.tune(profile);
    let deployment = deploy_with(device, profile, &recommendation)?;
    Ok((deployment, recommendation))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::raspberry_pi_3b()
    }

    fn resnet18() -> WorkProfile {
        WorkProfile::new(0.56e9, 3.0e6, 44.8e6)
    }

    #[test]
    fn tuned_deployment_beats_default() {
        let (tuned, rec) = deploy_tuned(&device(), &resnet18(), Metric::Runtime).unwrap();
        let naive = deploy_default(&device(), &resnet18());
        assert!(
            tuned.throughput.value() > naive.throughput.value(),
            "recommendation must beat single-sample default: {tuned:?} vs {naive:?}"
        );
        assert!(rec.batch > 1);
    }

    #[test]
    fn energy_tuned_deployment_cuts_energy() {
        let (tuned, _) = deploy_tuned(&device(), &resnet18(), Metric::Energy).unwrap();
        let naive = deploy_default(&device(), &resnet18());
        assert!(tuned.energy_per_item.value() < naive.energy_per_item.value());
    }

    #[test]
    fn deploy_with_matches_recommendation_estimates() {
        let (_, rec) = deploy_tuned(&device(), &resnet18(), Metric::Runtime).unwrap();
        let deployment = deploy_with(&device(), &resnet18(), &rec).unwrap();
        assert!((deployment.throughput.value() - rec.throughput.value()).abs() < 1e-9);
        assert!((deployment.energy_per_item.value() - rec.energy_per_item.value()).abs() < 1e-9);
    }

    #[test]
    fn heavier_profile_deploys_slower() {
        let light = deploy_default(&device(), &resnet18());
        let heavy = deploy_default(&device(), &WorkProfile::new(8.5e9, 30.0e6, 246.0e6));
        assert!(heavy.throughput.value() < light.throughput.value());
    }
}
