//! Common result type for baseline tuners.

use edgetune_tuner::space::Config;
use edgetune_tuner::trial::{History, TrialRecord};
use edgetune_util::units::{Joules, Seconds};

/// What a baseline tuning run produces: the trial log and the winner.
/// Unlike EdgeTune's `TuningReport`, there is *no* inference
/// recommendation — that absence is the paper's point.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    history: History,
    best: TrialRecord,
}

impl BaselineReport {
    /// Wraps a completed history.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty.
    #[must_use]
    pub fn new(history: History) -> Self {
        let best = history
            .winner()
            .expect("baseline ran at least one trial")
            .clone();
        BaselineReport { history, best }
    }

    /// Full trial history.
    #[must_use]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The winning trial (final-rung best).
    #[must_use]
    pub fn best(&self) -> &TrialRecord {
        &self.best
    }

    /// The winning configuration.
    #[must_use]
    pub fn best_config(&self) -> &Config {
        &self.best.config
    }

    /// Accuracy of the winning trial.
    #[must_use]
    pub fn best_accuracy(&self) -> f64 {
        self.best.outcome.accuracy
    }

    /// Total tuning duration.
    #[must_use]
    pub fn tuning_runtime(&self) -> Seconds {
        self.history.total_runtime()
    }

    /// Total tuning energy.
    #[must_use]
    pub fn tuning_energy(&self) -> Joules {
        self.history.total_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune_tuner::budget::TrialBudget;
    use edgetune_tuner::trial::TrialOutcome;

    #[test]
    fn report_exposes_winner_and_totals() {
        let mut history = History::new();
        for (id, score) in [(0u64, 3.0), (1, 1.0), (2, 2.0)] {
            history.push(TrialRecord {
                id,
                config: Config::new().with("x", id as f64),
                budget: TrialBudget::new(1.0, 1.0),
                outcome: TrialOutcome::new(score, 0.5, Seconds::new(10.0), Joules::new(100.0)),
            });
        }
        let report = BaselineReport::new(history);
        assert_eq!(report.best().id, 1);
        assert_eq!(report.best_config().get("x"), Some(1.0));
        assert_eq!(report.tuning_runtime(), Seconds::new(30.0));
        assert_eq!(report.tuning_energy(), Joules::new(300.0));
        assert_eq!(report.best_accuracy(), 0.5);
        assert_eq!(report.history().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_history_rejected() {
        let _ = BaselineReport::new(History::new());
    }
}
