//! The **HyperPower** comparator (§5.5, Table 2).
//!
//! HyperPower (Stamoulis et al., 2017) is power- and memory-constrained
//! Bayesian hyperparameter optimisation for neural networks: sequential
//! model-based search (no multi-fidelity ladder), with *early
//! termination* of trials that violate a power constraint at objective
//! evaluation time. It tunes hyperparameters on GPUs, optimises for
//! tuning/training cost, and — the property Fig. 17 probes — produces
//! **no inference-side output**.

use edgetune::backend::{SimTrainingBackend, TrainingBackend, PARAM_MODEL_HP, PARAM_TRAIN_BATCH};
use edgetune_tuner::budget::TrialBudget;
use edgetune_tuner::objective::{TrainMeasurement, TrainObjective};
use edgetune_tuner::sampler::{Sampler, TpeSampler};
use edgetune_tuner::space::{Domain, SearchSpace};
use edgetune_tuner::trial::{History, TrialOutcome, TrialRecord};
use edgetune_util::rng::SeedStream;
use edgetune_util::units::Watts;
use edgetune_workloads::catalog::{Workload, WorkloadId};

/// Fraction of a trial's budget run before the early-termination checks
/// (power constraint and accuracy probe) are evaluated.
const PROBE_FRACTION: f64 = 0.25;
/// A trial whose probe accuracy trails the best probe so far by more than
/// this margin is terminated early. The margin is wide enough that a
/// slower-converging (deeper) architecture survives while genuinely bad
/// training configurations do not.
const PROBE_ACCURACY_MARGIN: f64 = 0.08;
/// HyperPower's fixed training batch size (framework default).
const FIXED_BATCH: u32 = 256;

/// The HyperPower baseline runner.
#[derive(Debug, Clone)]
pub struct HyperPower {
    workload: WorkloadId,
    trials: usize,
    epochs_per_trial: f64,
    power_cap: Watts,
    gpus: u32,
    seed: u64,
}

impl HyperPower {
    /// Creates the comparator with representative defaults: 4 sequential
    /// BO trials of 20 epochs each on 2 GPUs with the batch size fixed at
    /// 256, capped at 900 W average training power. Sequential BO runs
    /// far fewer — but individually deeper — trials than a multi-fidelity
    /// ladder, and HyperPower tunes *model* hyperparameters, not the
    /// training batch size.
    #[must_use]
    pub fn new(workload: WorkloadId) -> Self {
        HyperPower {
            workload,
            trials: 4,
            epochs_per_trial: 20.0,
            power_cap: Watts::new(900.0),
            gpus: 2,
            seed: SeedStream::default().seed(),
        }
    }

    /// Sets the number of sequential BO trials.
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        assert!(trials >= 1, "need at least one trial");
        self.trials = trials;
        self
    }

    /// Sets the per-trial epoch budget.
    #[must_use]
    pub fn with_epochs_per_trial(mut self, epochs: f64) -> Self {
        assert!(epochs > 0.0, "epochs must be positive");
        self.epochs_per_trial = epochs;
        self
    }

    /// Sets the power constraint.
    #[must_use]
    pub fn with_power_cap(mut self, cap: Watts) -> Self {
        self.power_cap = cap;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the comparator.
    #[must_use]
    pub fn run(&self) -> crate::report::BaselineReport {
        let workload = Workload::by_id(self.workload);
        let mut backend = SimTrainingBackend::new(
            workload,
            SeedStream::new(self.seed).child("hyperpower-trials"),
        )
        .with_fixed_gpus(self.gpus);
        // HyperPower searches the model hyperparameters only; the batch
        // size stays at the framework default.
        let space = SearchSpace::new().with(
            PARAM_MODEL_HP,
            Domain::choice(Workload::by_id(self.workload).model_hp_values),
        );
        let objective = TrainObjective::accuracy_only();
        let mut sampler = TpeSampler::new(SeedStream::new(self.seed).child("hyperpower-sampler"));
        let budget = TrialBudget::new(self.epochs_per_trial, 1.0);

        let probe_budget = TrialBudget::new((self.epochs_per_trial * PROBE_FRACTION).max(1.0), 1.0);
        let mut best_probe_accuracy: Option<f64> = None;
        let mut history = History::new();
        for id in 0..self.trials as u64 {
            let obs = history.observations();
            let obs_refs: Vec<(&edgetune_tuner::space::Config, f64)> =
                obs.iter().map(|(c, s)| (*c, *s)).collect();
            let mut config = sampler.suggest(&space, &obs_refs);
            config.set(PARAM_TRAIN_BATCH, f64::from(FIXED_BATCH));

            // Probe phase: run a quarter of the budget, then decide.
            let probe = backend.run_trial(&config, probe_budget);
            let probe_power = probe.energy / probe.runtime;
            let keep_probe = best_probe_accuracy
                .is_none_or(|best| probe.accuracy >= best - PROBE_ACCURACY_MARGIN);
            if let Some(best) = &mut best_probe_accuracy {
                *best = best.max(probe.accuracy);
            } else {
                best_probe_accuracy = Some(probe.accuracy);
            }
            let outcome = if probe_power > self.power_cap {
                // Power constraint violated at the probe: terminate,
                // paying only the probe cost; the trial is infeasible.
                TrialOutcome::new(f64::INFINITY, 0.0, probe.runtime, probe.energy)
            } else if !keep_probe {
                // Unpromising accuracy at the probe: terminate early.
                TrialOutcome::new(f64::INFINITY, probe.accuracy, probe.runtime, probe.energy)
            } else {
                // Training resumes from the probe checkpoint, so a kept
                // trial costs exactly one full budget, not probe + full.
                let m = backend.run_trial(&config, budget);
                let score = objective.score(&TrainMeasurement {
                    accuracy: m.accuracy,
                    train_time: m.runtime,
                    train_energy: m.energy,
                    inference_time: None,
                    inference_energy: None,
                });
                TrialOutcome::new(score, m.accuracy, m.runtime, m.energy)
            };
            history.push(TrialRecord {
                id,
                config,
                budget,
                outcome,
            });
        }
        crate::report::BaselineReport::new(history)
    }

    /// The architecture the winner selects.
    #[must_use]
    pub fn winning_architecture(
        &self,
        report: &crate::report::BaselineReport,
    ) -> (String, edgetune_device::WorkProfile) {
        let workload = Workload::by_id(self.workload);
        let backend = SimTrainingBackend::new(
            workload,
            SeedStream::new(self.seed).child("hyperpower-trials"),
        )
        .with_fixed_gpus(self.gpus);
        backend.architecture(report.best_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HyperPower {
        HyperPower::new(WorkloadId::Ic)
            .with_trials(10)
            .with_seed(42)
    }

    #[test]
    fn runs_the_requested_number_of_trials() {
        let report = quick().run();
        assert_eq!(report.history().len(), 10);
        assert!(report.best_accuracy() > 0.0);
    }

    #[test]
    fn power_constraint_terminates_hungry_trials_early() {
        // A very low cap: everything violates it at the probe.
        let report = quick().with_power_cap(Watts::new(1.0)).run();
        // Early-terminated trials pay only the probe cost...
        let unconstrained = quick().run();
        assert!(report.tuning_energy().value() < unconstrained.tuning_energy().value());
        // ...and are all infeasible.
        assert!(report
            .history()
            .records()
            .iter()
            .all(|r| r.outcome.score.is_infinite()));
    }

    #[test]
    fn accuracy_probe_terminates_unpromising_trials() {
        // With enough trials, at least one architecture probes clearly
        // worse than the best and is cut early, paying less runtime
        // than a full trial. Speech recognition has the widest probe
        // spread across its architectures, so the margin actually
        // trips; image classification's ResNet depths all probe within
        // it (the margin is deliberately wide enough that deeper,
        // slower-converging variants survive).
        let report = HyperPower::new(WorkloadId::Sr)
            .with_trials(12)
            .with_seed(11)
            .run();
        let full: Vec<f64> = report
            .history()
            .records()
            .iter()
            .filter(|r| r.outcome.score.is_finite())
            .map(|r| r.outcome.runtime.value())
            .collect();
        let cut: Vec<f64> = report
            .history()
            .records()
            .iter()
            .filter(|r| r.outcome.score.is_infinite())
            .map(|r| r.outcome.runtime.value())
            .collect();
        assert!(!cut.is_empty(), "some trials should be terminated early");
        let max_cut = cut.iter().copied().fold(0.0f64, f64::max);
        let max_full = full.iter().copied().fold(0.0f64, f64::max);
        assert!(
            max_cut < max_full,
            "terminated trials are cheaper: {max_cut} vs {max_full}"
        );
    }

    #[test]
    fn feasible_trials_respect_the_cap() {
        let cap = Watts::new(900.0);
        let report = quick().with_power_cap(cap).run();
        for r in report.history().records() {
            if r.outcome.score.is_finite() {
                let power = r.outcome.energy / r.outcome.runtime;
                assert!(power <= cap, "feasible trial exceeded the cap: {power}");
            }
        }
    }

    #[test]
    fn is_deterministic() {
        let a = quick().run();
        let b = quick().run();
        assert_eq!(a.best_config(), b.best_config());
    }

    #[test]
    fn no_inference_output_exists() {
        // Structural property: the winning config never mentions
        // inference parameters.
        let report = quick().run();
        assert!(report
            .best_config()
            .keys()
            .all(|k| !k.contains("inference")));
    }
}
