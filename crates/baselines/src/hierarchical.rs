//! Hierarchical (two-tier) tuning — the alternative §4.1 contrasts with
//! EdgeTune's onefold approach (Fig. 9).
//!
//! Phase 1 tunes the hyperparameters with system parameters frozen at a
//! default; phase 2 freezes the winning hyperparameters and sweeps the
//! system parameters alone. The structural weakness the paper calls out
//! is that phase 1 cannot see the hyper ↔ system interaction (e.g. the
//! batch-size × GPU-count coupling of Fig. 4), so the composed optimum
//! can miss the joint one.

use edgetune::backend::{SimTrainingBackend, TrainingBackend, PARAM_GPUS};
use edgetune_tuner::budget::BudgetPolicy;
use edgetune_tuner::objective::{TrainMeasurement, TrainObjective};
use edgetune_tuner::sampler::TpeSampler;
use edgetune_tuner::scheduler::{SchedulerConfig, SuccessiveHalving};
use edgetune_tuner::space::Config;
use edgetune_tuner::trial::{History, TrialOutcome, TrialRecord};
use edgetune_tuner::Metric;
use edgetune_util::rng::SeedStream;
use edgetune_workloads::catalog::{Workload, WorkloadId};

use crate::report::BaselineReport;

/// Result of a hierarchical run: both phases plus the composed winner.
#[derive(Debug, Clone)]
pub struct HierarchicalReport {
    /// Phase-1 (hyperparameter) report.
    pub hyper: BaselineReport,
    /// Phase-2 (system-parameter) report.
    pub system: BaselineReport,
    /// The composed final configuration (phase-1 hypers + phase-2 system
    /// parameters).
    pub final_config: Config,
}

impl HierarchicalReport {
    /// Total tuning duration across both phases.
    #[must_use]
    pub fn tuning_runtime(&self) -> edgetune_util::units::Seconds {
        self.hyper.tuning_runtime() + self.system.tuning_runtime()
    }

    /// Total tuning energy across both phases.
    #[must_use]
    pub fn tuning_energy(&self) -> edgetune_util::units::Joules {
        self.hyper.tuning_energy() + self.system.tuning_energy()
    }

    /// Final accuracy (from the phase-2 winner, which retrained the
    /// frozen hypers under the chosen system parameters).
    #[must_use]
    pub fn final_accuracy(&self) -> f64 {
        self.system.best_accuracy()
    }
}

/// The two-tier tuner.
#[derive(Debug, Clone)]
pub struct HierarchicalTuner {
    workload: WorkloadId,
    scheduler: SchedulerConfig,
    metric: Metric,
    default_gpus: u32,
    seed: u64,
}

impl HierarchicalTuner {
    /// Creates the tuner with defaults mirroring the onefold setup.
    #[must_use]
    pub fn new(workload: WorkloadId) -> Self {
        HierarchicalTuner {
            workload,
            scheduler: SchedulerConfig::new(8, 2.0, 8),
            metric: Metric::Runtime,
            default_gpus: 1,
            seed: SeedStream::default().seed(),
        }
    }

    /// Overrides the scheduler shape (applies to phase 1; phase 2 is an
    /// exhaustive sweep of the small system space).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the training metric.
    #[must_use]
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs both phases.
    #[must_use]
    pub fn run(&self) -> HierarchicalReport {
        let workload = Workload::by_id(self.workload);
        let objective = TrainObjective::training_only(self.metric);

        // ---- Phase 1: hyperparameters, system frozen ----
        let mut backend = SimTrainingBackend::new(
            workload.clone(),
            SeedStream::new(self.seed).child("hier-phase1"),
        )
        .with_fixed_gpus(self.default_gpus);
        let space = backend.search_space();
        let mut sampler = TpeSampler::new(SeedStream::new(self.seed).child("hier-sampler"));
        let mut evaluator =
            |_id: u64, config: &Config, budget: edgetune_tuner::budget::TrialBudget| {
                let m = backend.run_trial(config, budget);
                let score = objective.score(&TrainMeasurement {
                    accuracy: m.accuracy,
                    train_time: m.runtime,
                    train_energy: m.energy,
                    inference_time: None,
                    inference_energy: None,
                });
                TrialOutcome::new(score, m.accuracy, m.runtime, m.energy)
            };
        let phase1 = SuccessiveHalving::new(self.scheduler).run(
            &mut sampler,
            &space,
            &BudgetPolicy::epoch_default(),
            &mut evaluator,
        );
        let hyper = BaselineReport::new(phase1);

        // ---- Phase 2: system parameters for the frozen winner ----
        let mut backend2 =
            SimTrainingBackend::new(workload, SeedStream::new(self.seed).child("hier-phase2"));
        let budget = BudgetPolicy::epoch_default().budget(self.scheduler.max_iteration);
        let mut phase2 = History::new();
        for (id, gpus) in (1..=8u32).enumerate() {
            let mut config = hyper.best_config().clone();
            config.set(PARAM_GPUS, f64::from(gpus));
            let m = backend2.run_trial(&config, budget);
            let score = objective.score(&TrainMeasurement {
                accuracy: m.accuracy,
                train_time: m.runtime,
                train_energy: m.energy,
                inference_time: None,
                inference_energy: None,
            });
            phase2.push(TrialRecord {
                id: id as u64,
                config,
                budget,
                outcome: TrialOutcome::new(score, m.accuracy, m.runtime, m.energy),
            });
        }
        let system = BaselineReport::new(phase2);
        let final_config = system.best_config().clone();
        HierarchicalReport {
            hyper,
            system,
            final_config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune::backend::PARAM_MODEL_HP;

    fn quick() -> HierarchicalTuner {
        HierarchicalTuner::new(WorkloadId::Ic)
            .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
            .with_seed(42)
    }

    #[test]
    fn two_phases_compose_the_final_config() {
        let report = quick().run();
        // Phase 1 winner's hypers are preserved in the final config.
        let hp1 = report.hyper.best_config().get(PARAM_MODEL_HP).unwrap();
        assert_eq!(report.final_config.get(PARAM_MODEL_HP), Some(hp1));
        // Phase 2 added the system parameter.
        assert!(report.final_config.get(PARAM_GPUS).is_some());
        assert!(report.hyper.best_config().get(PARAM_GPUS).is_none());
    }

    #[test]
    fn phase_two_sweeps_all_gpu_counts() {
        let report = quick().run();
        assert_eq!(report.system.history().len(), 8);
        let gpus: Vec<f64> = report
            .system
            .history()
            .records()
            .iter()
            .map(|r| r.config.get(PARAM_GPUS).unwrap())
            .collect();
        assert_eq!(gpus, (1..=8).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn totals_accumulate_both_phases() {
        let report = quick().run();
        assert!(report.tuning_runtime() > report.hyper.tuning_runtime());
        assert!(report.tuning_energy() > report.system.tuning_energy());
        assert!(report.final_accuracy() > 0.0);
    }

    #[test]
    fn onefold_tuning_cost_is_competitive_with_hierarchical() {
        // §4.1: the onefold approach folds system-parameter exploration
        // into the same multi-fidelity schedule instead of a full extra
        // phase; at equal scheduler shapes its tuning cost must not
        // exceed the two-tier total.
        use edgetune::prelude::*;
        let hier = quick().run();
        let onefold = EdgeTune::new(
            EdgeTuneConfig::for_workload(WorkloadId::Ic)
                .with_scheduler(SchedulerConfig::new(4, 2.0, 4))
                .without_hyperband()
                .with_seed(42),
        )
        .run()
        .unwrap();
        assert!(
            onefold.tuning_runtime().value() < hier.tuning_runtime().value() * 1.05,
            "onefold {} vs hierarchical {}",
            onefold.tuning_runtime(),
            hier.tuning_runtime()
        );
    }

    #[test]
    fn is_deterministic() {
        let a = quick().run();
        let b = quick().run();
        assert_eq!(a.final_config, b.final_config);
    }
}
