//! Property-based tests over the sampler/space machinery: whatever the
//! space and the observed history look like, every sampler must produce
//! in-domain suggestions.

use edgetune_tuner::sampler::{GridSampler, RandomSampler, Sampler, TpeSampler};
use edgetune_tuner::space::{Config, Domain, SearchSpace};
use edgetune_util::rng::SeedStream;
use proptest::prelude::*;

/// A random (but always valid) search space.
fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    let int = (1i64..50, 1i64..200).prop_map(|(lo, w)| Domain::int(lo, lo + w));
    let int_log = (1i64..8, 4i64..1024).prop_map(|(lo, w)| Domain::int_log(lo, lo + w));
    let float = (-100.0f64..100.0, 0.1f64..200.0).prop_map(|(lo, w)| Domain::float(lo, lo + w));
    let float_log =
        (0.001f64..1.0, 1.5f64..1000.0).prop_map(|(lo, f)| Domain::float_log(lo, lo * f));
    let choice = prop::collection::vec(-50.0f64..50.0, 1..6).prop_map(Domain::choice);
    let domain = prop_oneof![int, int_log, float, float_log, choice];
    prop::collection::vec(domain, 1..5).prop_map(|domains| {
        let mut space = SearchSpace::new();
        for (i, d) in domains.into_iter().enumerate() {
            space = space.with(format!("p{i}"), d);
        }
        space
    })
}

/// A pseudo-score for a config: smooth, deterministic.
fn score(config: &Config) -> f64 {
    config
        .keys()
        .map(|k| config.get(k).expect("key exists").abs().sqrt())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_sampler_stays_in_domain(space in space_strategy(), seed in 0u64..10_000) {
        let mut samplers: Vec<Box<dyn Sampler>> = vec![
            Box::new(GridSampler::new(4)),
            Box::new(RandomSampler::new(SeedStream::new(seed))),
            Box::new(TpeSampler::new(SeedStream::new(seed))),
        ];
        let mut history: Vec<(Config, f64)> = Vec::new();
        for round in 0..12 {
            for sampler in &mut samplers {
                let obs: Vec<(&Config, f64)> =
                    history.iter().map(|(c, s)| (c, *s)).collect();
                let suggestion = sampler.suggest(&space, &obs);
                prop_assert!(
                    space.validate(&suggestion).is_ok(),
                    "round {round}: {} produced out-of-domain {suggestion}",
                    sampler.name()
                );
                let s = score(&suggestion);
                history.push((suggestion, s));
            }
        }
    }

    #[test]
    fn grid_enumeration_is_exhaustive_and_in_domain(space in space_strategy()) {
        let grid = space.grid(3);
        prop_assert!(!grid.is_empty());
        for config in &grid {
            prop_assert!(space.validate(config).is_ok(), "{config}");
        }
        // No duplicates in the grid.
        let mut keys: Vec<String> = grid.iter().map(Config::key).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(before, keys.len(), "grid must not repeat configurations");
    }

    #[test]
    fn tpe_handles_degenerate_histories(
        space in space_strategy(),
        seed in 0u64..10_000,
        constant_score in -10.0f64..10.0,
    ) {
        // All-identical scores give the good/bad split no signal; the
        // sampler must still produce valid suggestions.
        let mut sampler = TpeSampler::new(SeedStream::new(seed));
        let mut rng = SeedStream::new(seed).rng("degenerate");
        let configs: Vec<Config> = (0..16).map(|_| space.sample(&mut rng)).collect();
        let obs: Vec<(&Config, f64)> = configs.iter().map(|c| (c, constant_score)).collect();
        let suggestion = sampler.suggest(&space, &obs);
        prop_assert!(space.validate(&suggestion).is_ok(), "{suggestion}");
    }
}
