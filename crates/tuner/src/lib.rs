//! Search machinery for the EdgeTune reproduction.
//!
//! This crate is the paper's "searching algorithm" layer (§4): search
//! spaces and configurations, samplers (grid, random, and a TPE model —
//! the Bayesian component of BOHB), budget policies (epoch-based,
//! dataset-based and the paper's novel **multi-budget**, Algorithm 2),
//! bandit schedulers (successive halving and HyperBand; TPE + HyperBand =
//! BOHB), and the objective functions of §4.4.
//!
//! It is deliberately independent of *what* is being tuned: evaluators are
//! closures from `(configuration, budget)` to an observed score, so the
//! same machinery drives the simulated paper workloads, real `edgetune-nn`
//! training, and the plain synthetic functions used in unit tests.

pub mod budget;
pub mod merge;
pub mod objective;
pub mod pareto;
pub mod sampler;
pub mod scheduler;
pub mod space;
pub mod trial;

pub use budget::{BudgetPolicy, TrialBudget};
pub use merge::{HistoryMerge, ShardHistory, StampedTrial};
pub use objective::{InferenceObjective, Metric, TrainObjective};
pub use pareto::{FrontPoint, ObjectiveVector, ParetoFront, ParetoTpeSampler};
pub use sampler::{GridSampler, RandomSampler, Sampler, TpeSampler};
pub use scheduler::{
    BracketSpec, FixedBudgetSearch, HyperBand, PromotionRule, SchedulerConfig, SuccessiveHalving,
};
pub use space::{Config, Domain, SearchSpace};
pub use trial::{History, TrialFailure, TrialOutcome, TrialRecord};
