//! Configuration samplers: grid, random, and TPE (the Bayesian model
//! inside BOHB).
//!
//! §4.2 of the paper contrasts three search strategies (Fig. 10): grid
//! search exhaustively enumerates, random search draws uniformly, and
//! BOHB's model-based sampler concentrates trials on the most promising
//! region. The model here is a Tree-structured Parzen Estimator: observed
//! configurations are split into a *good* and a *bad* set by score
//! quantile, per-dimension kernel densities `l(x)` / `g(x)` are fitted to
//! each, and candidates maximising `l(x)/g(x)` are suggested.

use edgetune_util::rng::SeedStream;
use rand::rngs::StdRng;
use rand::Rng;

use crate::space::{Config, Domain, SearchSpace};
use crate::trial::TrialOutcome;

/// A strategy for proposing the next configuration to evaluate.
pub trait Sampler: std::fmt::Debug + Send {
    /// Proposes a configuration given `(config, score)` observations so
    /// far (lower score = better).
    fn suggest(&mut self, space: &SearchSpace, observations: &[(&Config, f64)]) -> Config;

    /// Notifies the sampler of a completed trial. The default is a no-op;
    /// samplers that model more than the scalar score (e.g. the
    /// multi-objective TPE in [`crate::pareto`]) override this to see the
    /// full [`TrialOutcome`] — including its objective vector — instead
    /// of just the `(config, score)` pairs `suggest` receives.
    fn observe(&mut self, _config: &Config, _outcome: &TrialOutcome) {}

    /// Short strategy name ("grid", "random", "tpe").
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Warm start
// ---------------------------------------------------------------------------

/// Wraps any sampler and replays a fixed list of *seed* configurations
/// before delegating — the transfer-learning half of a warm start: a
/// service that has already tuned a similar architecture hands the new
/// study the configurations that won there, so the first cohort starts
/// from proven ground instead of cold random draws.
///
/// Seeds outside the search space are clamped dimension-by-dimension;
/// seeds missing a dimension fall back to the inner sampler for that
/// suggestion entirely (a transferred config from a different space
/// shape must not produce a half-random hybrid).
#[derive(Debug)]
pub struct WarmStartSampler {
    seeds: std::collections::VecDeque<Config>,
    inner: Box<dyn Sampler>,
}

impl WarmStartSampler {
    /// Wraps `inner`, replaying `seeds` in order first.
    #[must_use]
    pub fn new(seeds: Vec<Config>, inner: Box<dyn Sampler>) -> Self {
        WarmStartSampler {
            seeds: seeds.into(),
            inner,
        }
    }

    /// Seed configurations not yet replayed.
    #[must_use]
    pub fn seeds_remaining(&self) -> usize {
        self.seeds.len()
    }
}

impl Sampler for WarmStartSampler {
    fn suggest(&mut self, space: &SearchSpace, observations: &[(&Config, f64)]) -> Config {
        while let Some(seed) = self.seeds.pop_front() {
            let mut clamped = Config::new();
            let mut complete = true;
            for (name, domain) in space.iter() {
                match seed.get(name) {
                    Some(value) => clamped.set(name, domain.clamp(value)),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                return clamped;
            }
        }
        self.inner.suggest(space, observations)
    }

    fn observe(&mut self, config: &Config, outcome: &TrialOutcome) {
        self.inner.observe(config, outcome);
    }

    fn name(&self) -> &'static str {
        "warm-start"
    }
}

// ---------------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------------

/// Exhaustive grid search: enumerates the Cartesian grid once, then
/// cycles.
#[derive(Debug)]
pub struct GridSampler {
    resolution: usize,
    queue: Vec<Config>,
    cursor: usize,
}

impl GridSampler {
    /// Creates a grid sampler with per-dimension `resolution` for
    /// continuous domains (choices always enumerate exactly).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    #[must_use]
    pub fn new(resolution: usize) -> Self {
        assert!(resolution >= 1, "grid resolution must be >= 1");
        GridSampler {
            resolution,
            queue: Vec::new(),
            cursor: 0,
        }
    }
}

impl Sampler for GridSampler {
    fn suggest(&mut self, space: &SearchSpace, _observations: &[(&Config, f64)]) -> Config {
        if self.queue.is_empty() {
            self.queue = space.grid(self.resolution);
        }
        let config = self.queue[self.cursor % self.queue.len()].clone();
        self.cursor += 1;
        config
    }

    fn name(&self) -> &'static str {
        "grid"
    }
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

/// Uniform random search (the "variant generator" of §4.2).
#[derive(Debug)]
pub struct RandomSampler {
    rng: StdRng,
}

impl RandomSampler {
    /// Creates a seeded random sampler.
    #[must_use]
    pub fn new(seed: SeedStream) -> Self {
        RandomSampler {
            rng: seed.rng("random-sampler"),
        }
    }
}

impl Sampler for RandomSampler {
    fn suggest(&mut self, space: &SearchSpace, _observations: &[(&Config, f64)]) -> Config {
        space.sample(&mut self.rng)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

// ---------------------------------------------------------------------------
// TPE
// ---------------------------------------------------------------------------

/// Fraction of observations assigned to the "good" set.
const GOOD_QUANTILE: f64 = 0.25;
/// Candidates drawn from `l(x)` per suggestion.
const CANDIDATES: usize = 24;
/// Observations required before the model engages (random until then).
const MIN_OBSERVATIONS: usize = 8;
/// Cap on observations used to fit the densities (most recent first).
const MAX_OBSERVATIONS: usize = 128;

/// Tree-structured Parzen Estimator sampler.
#[derive(Debug)]
pub struct TpeSampler {
    rng: StdRng,
}

impl TpeSampler {
    /// Creates a seeded TPE sampler.
    #[must_use]
    pub fn new(seed: SeedStream) -> Self {
        TpeSampler {
            rng: seed.rng("tpe-sampler"),
        }
    }

    /// Maps a value into the sampler's working coordinates (log space for
    /// log domains, index space for choices). Shared with the
    /// multi-objective sampler in [`crate::pareto`].
    pub(crate) fn transform(domain: &Domain, value: f64) -> f64 {
        match domain {
            Domain::Int { log: true, .. } | Domain::Float { log: true, .. } => {
                value.max(1e-12).ln()
            }
            Domain::Int { .. } | Domain::Float { .. } => value,
            Domain::Choice(values) => values
                .iter()
                .position(|v| v == &value)
                .map_or(0.0, |i| i as f64),
        }
    }

    /// Inverse of [`TpeSampler::transform`], snapped back into the domain.
    pub(crate) fn untransform(domain: &Domain, coord: f64) -> f64 {
        match domain {
            Domain::Int { log: true, .. } | Domain::Float { log: true, .. } => {
                domain.clamp(coord.exp())
            }
            Domain::Int { .. } | Domain::Float { .. } => domain.clamp(coord),
            Domain::Choice(values) => {
                let idx = (coord.round().max(0.0) as usize).min(values.len() - 1);
                values[idx]
            }
        }
    }

    /// Working-space extent of a domain (bandwidth scale).
    pub(crate) fn extent(domain: &Domain) -> f64 {
        match domain {
            Domain::Int { lo, hi, log } => {
                if *log {
                    (*hi as f64).ln() - (*lo as f64).max(1.0).ln()
                } else {
                    (*hi - *lo) as f64
                }
            }
            Domain::Float { lo, hi, log } => {
                if *log {
                    hi.ln() - lo.ln()
                } else {
                    hi - lo
                }
            }
            Domain::Choice(values) => values.len() as f64,
        }
        .max(1e-9)
    }

    /// Parzen density of `coord` under kernels centred at `centres`.
    pub(crate) fn density(coord: f64, centres: &[f64], bandwidth: f64) -> f64 {
        if centres.is_empty() {
            return 1e-12;
        }
        let norm = 1.0 / (centres.len() as f64 * bandwidth * (2.0 * std::f64::consts::PI).sqrt());
        centres
            .iter()
            .map(|&c| {
                let z = (coord - c) / bandwidth;
                norm * (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            .max(1e-12)
    }
}

impl Sampler for TpeSampler {
    fn suggest(&mut self, space: &SearchSpace, observations: &[(&Config, f64)]) -> Config {
        if observations.len() < MIN_OBSERVATIONS {
            return space.sample(&mut self.rng);
        }
        // Split observations by score quantile into good/bad sets.
        let mut sorted: Vec<&(&Config, f64)> = observations
            .iter()
            .take(MAX_OBSERVATIONS)
            .filter(|(_, s)| s.is_finite())
            .collect();
        if sorted.len() < MIN_OBSERVATIONS {
            return space.sample(&mut self.rng);
        }
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
        let n_good =
            ((sorted.len() as f64 * GOOD_QUANTILE).ceil() as usize).clamp(2, sorted.len() - 1);
        let (good, bad) = sorted.split_at(n_good);

        // Per-dimension kernel centres in working coordinates:
        // (name, domain, good centres, bad centres, bandwidth).
        type Dim<'a> = (&'a str, &'a Domain, Vec<f64>, Vec<f64>, f64);
        let dims: Vec<Dim<'_>> = space
            .iter()
            .map(|(name, domain)| {
                let centres = |set: &[&(&Config, f64)]| -> Vec<f64> {
                    set.iter()
                        .filter_map(|(c, _)| c.get(name))
                        .map(|v| Self::transform(domain, v))
                        .collect()
                };
                let good_c = centres(good);
                let bad_c = centres(bad);
                let bandwidth = Self::extent(domain) / (good_c.len().max(1) as f64).sqrt().max(1.0)
                    * 0.6
                    + 1e-6;
                (name, domain, good_c, bad_c, bandwidth)
            })
            .collect();

        // Draw candidates from l(x) and keep the best l/g ratio.
        let mut best: Option<(Config, f64)> = None;
        for _ in 0..CANDIDATES {
            let mut config = Config::new();
            let mut log_ratio = 0.0;
            for (name, domain, good_c, bad_c, bandwidth) in &dims {
                // Sample around a random good kernel.
                let coord = if good_c.is_empty() {
                    Self::transform(domain, domain.sample(&mut self.rng))
                } else {
                    let centre = good_c[self.rng.gen_range(0..good_c.len())];
                    centre + edgetune_util::rng::sample_normal(&mut self.rng, 0.0, *bandwidth)
                };
                let value = Self::untransform(domain, coord);
                let snapped = Self::transform(domain, value);
                let l = Self::density(snapped, good_c, *bandwidth);
                let g = Self::density(snapped, bad_c, *bandwidth);
                log_ratio += l.ln() - g.ln();
                config.set(*name, value);
            }
            if best.as_ref().is_none_or(|(_, r)| log_ratio > *r) {
                best = Some((config, log_ratio));
            }
        }
        best.expect("at least one candidate").0
    }

    fn name(&self) -> &'static str {
        "tpe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_2d() -> SearchSpace {
        SearchSpace::new()
            .with("x", Domain::float(0.0, 1.0))
            .with("y", Domain::float(0.0, 1.0))
    }

    /// Runs `sampler` for `steps` sequential suggestions against `f`,
    /// returning the best score found.
    fn optimize(sampler: &mut dyn Sampler, space: &SearchSpace, steps: usize) -> f64 {
        let f = |c: &Config| {
            let x = c.get("x").unwrap();
            let y = c.get("y").unwrap();
            (x - 0.31).powi(2) + (y - 0.72).powi(2)
        };
        let mut history: Vec<(Config, f64)> = Vec::new();
        for _ in 0..steps {
            let obs: Vec<(&Config, f64)> = history.iter().map(|(c, s)| (c, *s)).collect();
            let config = sampler.suggest(space, &obs);
            let score = f(&config);
            history.push((config, score));
        }
        history
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn grid_enumerates_whole_space_before_repeating() {
        let space = SearchSpace::new()
            .with("a", Domain::choice(vec![1.0, 2.0, 3.0]))
            .with("b", Domain::choice(vec![0.0, 1.0]));
        let mut g = GridSampler::new(10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            seen.insert(g.suggest(&space, &[]).key());
        }
        assert_eq!(seen.len(), 6, "first pass covers the full grid");
        let again = g.suggest(&space, &[]);
        assert!(seen.contains(&again.key()), "then cycles");
    }

    #[test]
    fn random_sampler_is_seeded_and_in_domain() {
        let space = space_2d();
        let mut a = RandomSampler::new(SeedStream::new(4));
        let mut b = RandomSampler::new(SeedStream::new(4));
        for _ in 0..20 {
            let ca = a.suggest(&space, &[]);
            let cb = b.suggest(&space, &[]);
            assert_eq!(ca, cb);
            assert!(space.validate(&ca).is_ok());
        }
    }

    #[test]
    fn tpe_falls_back_to_random_without_observations() {
        let space = space_2d();
        let mut t = TpeSampler::new(SeedStream::new(4));
        let c = t.suggest(&space, &[]);
        assert!(space.validate(&c).is_ok());
    }

    #[test]
    fn tpe_beats_random_on_a_smooth_function() {
        let space = space_2d();
        let mut tpe = TpeSampler::new(SeedStream::new(11));
        let mut random = RandomSampler::new(SeedStream::new(11));
        let tpe_best = optimize(&mut tpe, &space, 60);
        let random_best = optimize(&mut random, &space, 60);
        assert!(
            tpe_best < random_best,
            "TPE ({tpe_best}) should beat random ({random_best}) at equal trials"
        );
    }

    #[test]
    fn tpe_concentrates_near_the_optimum() {
        // After many observations the suggestions should cluster around
        // the good region — the Fig. 10 behaviour.
        let space = space_2d();
        let mut tpe = TpeSampler::new(SeedStream::new(3));
        let mut history: Vec<(Config, f64)> = Vec::new();
        for _ in 0..50 {
            let obs: Vec<(&Config, f64)> = history.iter().map(|(c, s)| (c, *s)).collect();
            let c = tpe.suggest(&space, &obs);
            let score = (c.get("x").unwrap() - 0.3).powi(2) + (c.get("y").unwrap() - 0.7).powi(2);
            history.push((c, score));
        }
        let late: Vec<&(Config, f64)> = history.iter().skip(40).collect();
        let mean_dist: f64 = late
            .iter()
            .map(|(c, _)| {
                ((c.get("x").unwrap() - 0.3).powi(2) + (c.get("y").unwrap() - 0.7).powi(2)).sqrt()
            })
            .sum::<f64>()
            / late.len() as f64;
        assert!(
            mean_dist < 0.35,
            "late suggestions should be near optimum: {mean_dist}"
        );
    }

    #[test]
    fn tpe_handles_choice_and_log_domains() {
        let space = SearchSpace::new()
            .with("layers", Domain::choice(vec![18.0, 34.0, 50.0]))
            .with("batch", Domain::int_log(32, 512));
        let mut tpe = TpeSampler::new(SeedStream::new(8));
        let mut history: Vec<(Config, f64)> = Vec::new();
        for _ in 0..30 {
            let obs: Vec<(&Config, f64)> = history.iter().map(|(c, s)| (c, *s)).collect();
            let c = tpe.suggest(&space, &obs);
            assert!(space.validate(&c).is_ok(), "suggestion {c} out of domain");
            // Prefer layers=34, batch near 128.
            let score = (c.get("layers").unwrap() - 34.0).abs()
                + (c.get("batch").unwrap().ln() - 128f64.ln()).abs();
            history.push((c, score));
        }
    }

    #[test]
    fn tpe_ignores_infinite_scores() {
        let space = space_2d();
        let mut tpe = TpeSampler::new(SeedStream::new(8));
        let configs: Vec<Config> = (0..12)
            .map(|i| {
                Config::new()
                    .with("x", f64::from(i) / 12.0)
                    .with("y", f64::from(i) / 12.0)
            })
            .collect();
        let obs: Vec<(&Config, f64)> = configs.iter().map(|c| (c, f64::INFINITY)).collect();
        // All-infinite observations must not panic; falls back to random.
        let c = tpe.suggest(&space, &obs);
        assert!(space.validate(&c).is_ok());
    }

    #[test]
    fn sampler_names() {
        assert_eq!(GridSampler::new(3).name(), "grid");
        assert_eq!(RandomSampler::new(SeedStream::new(1)).name(), "random");
        assert_eq!(TpeSampler::new(SeedStream::new(1)).name(), "tpe");
        assert_eq!(
            WarmStartSampler::new(vec![], Box::new(GridSampler::new(3))).name(),
            "warm-start"
        );
    }

    #[test]
    fn warm_start_replays_seeds_then_delegates() {
        let space = space_2d();
        let seeds = vec![
            Config::new().with("x", 0.1).with("y", 0.2),
            Config::new().with("x", 0.3).with("y", 0.4),
        ];
        let mut warm = WarmStartSampler::new(
            seeds.clone(),
            Box::new(RandomSampler::new(SeedStream::new(4))),
        );
        let mut cold = RandomSampler::new(SeedStream::new(4));
        assert_eq!(warm.seeds_remaining(), 2);
        assert_eq!(warm.suggest(&space, &[]), seeds[0]);
        assert_eq!(warm.suggest(&space, &[]), seeds[1]);
        assert_eq!(warm.seeds_remaining(), 0);
        // After the seeds are spent, the inner stream is untouched by the
        // warm prefix: it yields exactly what a cold sampler would.
        assert_eq!(warm.suggest(&space, &[]), cold.suggest(&space, &[]));
    }

    #[test]
    fn warm_start_clamps_out_of_domain_seeds() {
        let space = space_2d();
        let seeds = vec![Config::new().with("x", 7.0).with("y", -3.0)];
        let mut warm =
            WarmStartSampler::new(seeds, Box::new(RandomSampler::new(SeedStream::new(4))));
        let c = warm.suggest(&space, &[]);
        assert!(space.validate(&c).is_ok(), "clamped into domain: {c}");
        assert_eq!(c.get("x"), Some(1.0));
        assert_eq!(c.get("y"), Some(0.0));
    }

    #[test]
    fn warm_start_skips_seeds_from_a_different_space_shape() {
        let space = space_2d();
        // A transferred config missing a dimension must be discarded, not
        // half-filled with random values.
        let seeds = vec![
            Config::new().with("x", 0.5),
            Config::new().with("x", 0.6).with("y", 0.6),
        ];
        let mut warm =
            WarmStartSampler::new(seeds, Box::new(RandomSampler::new(SeedStream::new(4))));
        let first = warm.suggest(&space, &[]);
        assert_eq!(first, Config::new().with("x", 0.6).with("y", 0.6));
    }
}
