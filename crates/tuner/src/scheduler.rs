//! Multi-fidelity schedulers: successive halving and HyperBand.
//!
//! A scheduler decides *which* configurations get *how much* budget. The
//! budget ladder itself comes from a [`BudgetPolicy`] — plugging the
//! multi-budget policy into these schedulers yields the paper's onefold
//! tuning algorithm's core loop; plugging [`crate::TpeSampler`] into
//! [`HyperBand`] yields BOHB.

use crate::budget::{BudgetPolicy, TrialBudget};
use crate::pareto::promotion_layers;
use crate::sampler::Sampler;
use crate::space::{Config, SearchSpace};
use crate::trial::{History, TrialOutcome, TrialRecord};

/// How a rung ranks its survivors for promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PromotionRule {
    /// Classic successive halving: sort by the scalar score, keep the
    /// best `1/η`.
    #[default]
    ScalarRank,
    /// Pareto mode: peel the rung's outcomes into dominance layers
    /// ([`promotion_layers`]) and promote whole fronts first — the
    /// SoftNeuro-style pruning that keeps the frontier search tractable.
    /// Within a layer (and for trials without a vector) the scalar score
    /// breaks ties, so the rule degrades to `ScalarRank` exactly when no
    /// vectors exist.
    FrontMembership,
}

/// Evaluates one trial: `(trial_id, config, budget) → outcome`.
///
/// Implemented for any `FnMut` with the same shape, so schedulers can be
/// driven by closures.
pub trait Evaluate {
    /// Runs the trial and reports its outcome.
    fn evaluate(&mut self, id: u64, config: &Config, budget: TrialBudget) -> TrialOutcome;

    /// Evaluates one scheduler rung — all trials share a budget level and
    /// have no mutual dependencies, so an implementation may run them in
    /// parallel ("the model server can parallelize its tuning process",
    /// §3.1): either by *simulating* concurrent slots (list-scheduling
    /// the rung and advancing a virtual clock by its makespan) or by
    /// measuring trials on real worker threads — or both, as the
    /// `edgetune` engine does. The default runs them sequentially.
    ///
    /// Implementations must return outcomes in input order, and real
    /// parallelism must not leak into the outcomes: for a fixed seed the
    /// returned numbers must be identical whatever the thread count.
    fn evaluate_rung(&mut self, trials: Vec<(u64, Config, TrialBudget)>) -> Vec<TrialOutcome> {
        trials
            .into_iter()
            .map(|(id, config, budget)| self.evaluate(id, &config, budget))
            .collect()
    }

    /// Called when a scheduler opens a new bracket, before its first
    /// rung, with the bracket's index in execution order. Evaluators
    /// that attribute work to brackets (timeline stamps, shard
    /// checkpoints, merge keys) hook in here. The default does nothing.
    fn on_bracket_start(&mut self, _bracket: u32) {}

    /// Called after a rung's outcomes were appended to `history` — a
    /// natural checkpoint boundary. The default does nothing.
    fn on_rung_complete(&mut self, _history: &History) {}

    /// True when the evaluator wants tuning to stop early (a deadline
    /// passed, or an injected interruption fired in a chaos run). Checked
    /// after every rung; the default never halts.
    fn should_halt(&self) -> bool {
        false
    }
}

impl<F> Evaluate for F
where
    F: FnMut(u64, &Config, TrialBudget) -> TrialOutcome,
{
    fn evaluate(&mut self, id: u64, config: &Config, budget: TrialBudget) -> TrialOutcome {
        self(id, config, budget)
    }
}

/// Shared scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Configurations sampled into the first rung.
    pub initial_configs: usize,
    /// Reduction factor η: the top `1/η` of each rung advances (§4.3).
    pub eta: f64,
    /// Highest iteration level (budget rung) to reach.
    pub max_iteration: u32,
}

impl SchedulerConfig {
    /// Creates a scheduler configuration.
    ///
    /// # Panics
    ///
    /// Panics if `initial_configs` is zero, `eta` ≤ 1, or
    /// `max_iteration` is zero.
    #[must_use]
    pub fn new(initial_configs: usize, eta: f64, max_iteration: u32) -> Self {
        assert!(initial_configs >= 1, "need at least one configuration");
        assert!(eta > 1.0, "reduction factor must exceed 1");
        assert!(max_iteration >= 1, "need at least one iteration level");
        SchedulerConfig {
            initial_configs,
            eta,
            max_iteration,
        }
    }

    /// The paper's running example (§2.2): 16 trials starting at the
    /// minimum budget, η = 2, budget levels 1 → 2 → 4 → 8 → 16 with
    /// cohorts 16 → 8 → 4 → 2 → 1.
    #[must_use]
    pub fn paper_example() -> Self {
        SchedulerConfig::new(16, 2.0, 16)
    }
}

/// Successive halving: evaluate all configurations at the smallest
/// budget, keep the best `1/η`, grow the budget, repeat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessiveHalving {
    config: SchedulerConfig,
    promotion: PromotionRule,
}

impl SuccessiveHalving {
    /// Creates a successive-halving scheduler (scalar-rank promotion).
    #[must_use]
    pub fn new(config: SchedulerConfig) -> Self {
        SuccessiveHalving {
            config,
            promotion: PromotionRule::default(),
        }
    }

    /// Sets the promotion rule (builder style).
    #[must_use]
    pub fn with_promotion(mut self, promotion: PromotionRule) -> Self {
        self.promotion = promotion;
        self
    }

    /// Runs one bracket, starting from `start_iteration` (1-based budget
    /// level) with `initial` sampled configurations.
    ///
    /// Trial ids continue from `history.len()`; every evaluation is
    /// appended to `history` so model-based samplers see all evidence.
    #[allow(clippy::too_many_arguments)] // a bracket genuinely has this many independent knobs
    pub fn run_bracket(
        &self,
        sampler: &mut dyn Sampler,
        space: &SearchSpace,
        policy: &BudgetPolicy,
        evaluator: &mut dyn Evaluate,
        history: &mut History,
        initial: usize,
        start_iteration: u32,
    ) {
        // Sample the rung-0 cohort, giving the sampler fresh evidence
        // after every suggestion.
        let mut cohort: Vec<Config> = Vec::with_capacity(initial);
        for _ in 0..initial {
            let obs = history.observations();
            let obs_refs: Vec<(&Config, f64)> = obs.iter().map(|(c, s)| (*c, *s)).collect();
            cohort.push(sampler.suggest(space, &obs_refs));
        }

        // The budget level grows geometrically by η between rungs, as in
        // the paper's §2.2 example (epochs 1 → 2 → 4 → 8 → 16 while the
        // cohort halves 16 → 8 → 4 → 2 → 1).
        let mut iteration = start_iteration.max(1);
        loop {
            let budget = policy.budget(iteration.min(self.config.max_iteration));
            let base_id = history.len() as u64;
            let rung: Vec<(u64, Config, TrialBudget)> = cohort
                .drain(..)
                .enumerate()
                .map(|(i, config)| (base_id + i as u64, config, budget))
                .collect();
            let outcomes = evaluator.evaluate_rung(rung.clone());
            assert_eq!(
                outcomes.len(),
                rung.len(),
                "evaluator must answer every trial"
            );
            let mut scored: Vec<(Config, TrialOutcome)> = Vec::with_capacity(rung.len());
            for ((id, config, budget), outcome) in rung.into_iter().zip(outcomes) {
                history.push(TrialRecord {
                    id,
                    config: config.clone(),
                    budget,
                    outcome,
                });
                sampler.observe(&config, &outcome);
                scored.push((config, outcome));
            }
            evaluator.on_rung_complete(history);
            if scored.len() <= 1 || iteration >= self.config.max_iteration {
                break;
            }
            if evaluator.should_halt() {
                break;
            }
            // Trials the fault-tolerance layer abandoned must not poison
            // promotion: drop them from the pool, then refill the freed
            // slots with fresh samples so their budget is reallocated
            // instead of lost. With no failures this is a no-op and the
            // promotion is exactly classic successive halving.
            let rung_size = scored.len();
            let keep = ((rung_size as f64 / self.config.eta).ceil() as usize).max(1);
            let failures = scored.iter().filter(|(_, o)| o.is_failed()).count();
            scored.retain(|(_, o)| !o.is_failed());
            match self.promotion {
                PromotionRule::ScalarRank => {
                    scored.sort_by(|a, b| {
                        a.1.score
                            .partial_cmp(&b.1.score)
                            .expect("scores are not NaN")
                    });
                }
                PromotionRule::FrontMembership => {
                    // Rank by dominance layer first (front members lead),
                    // scalar score within a layer. The sort is stable, so
                    // equal keys keep evaluation order — deterministic
                    // whatever the worker/shard split, because
                    // evaluate_rung answers in input order.
                    let outcomes: Vec<TrialOutcome> = scored.iter().map(|(_, o)| *o).collect();
                    let layers = promotion_layers(&outcomes);
                    let mut indexed: Vec<usize> = (0..scored.len()).collect();
                    indexed.sort_by(|&a, &b| {
                        layers[a].cmp(&layers[b]).then(
                            scored[a]
                                .1
                                .score
                                .partial_cmp(&scored[b].1.score)
                                .expect("scores are not NaN"),
                        )
                    });
                    let reordered: Vec<(Config, TrialOutcome)> =
                        indexed.into_iter().map(|i| scored[i].clone()).collect();
                    scored = reordered;
                }
            }
            cohort = scored
                .into_iter()
                .take(keep)
                .map(|(config, _)| config)
                .collect();
            if failures > 0 {
                while cohort.len() < keep {
                    let obs = history.observations();
                    let obs_refs: Vec<(&Config, f64)> = obs.iter().map(|(c, s)| (*c, *s)).collect();
                    cohort.push(sampler.suggest(space, &obs_refs));
                }
            }
            iteration = ((f64::from(iteration) * self.config.eta).round() as u32)
                .min(self.config.max_iteration);
        }
    }

    /// Runs a full successive-halving tuning job and returns its history.
    pub fn run(
        &self,
        sampler: &mut dyn Sampler,
        space: &SearchSpace,
        policy: &BudgetPolicy,
        evaluator: &mut dyn Evaluate,
    ) -> History {
        let mut history = History::new();
        evaluator.on_bracket_start(0);
        self.run_bracket(
            sampler,
            space,
            policy,
            evaluator,
            &mut history,
            self.config.initial_configs,
            1,
        );
        history
    }
}

/// One HyperBand bracket's shape: how many configurations it starts and
/// at which budget level — the unit of work a study coordinator can
/// assign, and the evidence behind per-bracket provenance stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BracketSpec {
    /// The bracket's index in execution order (0 = most exploratory).
    pub index: u32,
    /// Configurations sampled into the bracket's first rung.
    pub initial: usize,
    /// 1-based budget level the bracket starts at.
    pub start_iteration: u32,
}

/// Fixed-budget search: every sampled configuration is evaluated once at
/// the same (typically maximal) budget — the wasteful strategy §2.2
/// contrasts multi-fidelity methods against ("the majority of trials
/// waste precious resources").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedBudgetSearch {
    trials: usize,
    iteration: u32,
}

impl FixedBudgetSearch {
    /// Creates a fixed-budget search of `trials` configurations, each at
    /// budget level `iteration`.
    ///
    /// # Panics
    ///
    /// Panics if `trials` or `iteration` is zero.
    #[must_use]
    pub fn new(trials: usize, iteration: u32) -> Self {
        assert!(trials >= 1, "need at least one trial");
        assert!(iteration >= 1, "iteration levels are 1-based");
        FixedBudgetSearch { trials, iteration }
    }

    /// Runs the search and returns its history.
    pub fn run(
        &self,
        sampler: &mut dyn Sampler,
        space: &SearchSpace,
        policy: &BudgetPolicy,
        evaluator: &mut dyn Evaluate,
    ) -> History {
        let mut history = History::new();
        let budget = policy.budget(self.iteration);
        for _ in 0..self.trials {
            let obs = history.observations();
            let obs_refs: Vec<(&Config, f64)> = obs.iter().map(|(c, s)| (*c, *s)).collect();
            let config = sampler.suggest(space, &obs_refs);
            let id = history.len() as u64;
            let outcome = evaluator.evaluate(id, &config, budget);
            sampler.observe(&config, &outcome);
            history.push(TrialRecord {
                id,
                config,
                budget,
                outcome,
            });
        }
        history
    }
}

/// HyperBand: several successive-halving brackets that trade off
/// exploration (many configs, small budgets) against exploitation (few
/// configs, large budgets). With a TPE sampler this is BOHB, the paper's
/// default strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperBand {
    config: SchedulerConfig,
    promotion: PromotionRule,
}

impl HyperBand {
    /// Creates a HyperBand scheduler (scalar-rank promotion).
    #[must_use]
    pub fn new(config: SchedulerConfig) -> Self {
        HyperBand {
            config,
            promotion: PromotionRule::default(),
        }
    }

    /// Sets the promotion rule every bracket runs under (builder style).
    #[must_use]
    pub fn with_promotion(mut self, promotion: PromotionRule) -> Self {
        self.promotion = promotion;
        self
    }

    /// Number of brackets this configuration produces.
    #[must_use]
    pub fn brackets(&self) -> u32 {
        (f64::from(self.config.max_iteration).ln() / self.config.eta.ln()).floor() as u32 + 1
    }

    /// The brackets this configuration runs, in execution order — the
    /// study-level work breakdown a coordinator assigns from.
    #[must_use]
    pub fn bracket_specs(&self) -> Vec<BracketSpec> {
        let s_max = self.brackets() - 1;
        (0..=s_max)
            .rev()
            .map(|s| {
                // Aggressive brackets start many configs at a low budget;
                // later brackets start fewer configs higher up the ladder.
                let initial = ((self.config.initial_configs as f64
                    * self.config.eta.powi(s as i32))
                    / f64::from(s_max + 1))
                .ceil()
                .max(1.0) as usize;
                let start_iteration = (f64::from(self.config.max_iteration)
                    / self.config.eta.powi(s as i32))
                .floor()
                .max(1.0) as u32;
                BracketSpec {
                    index: s_max - s,
                    initial,
                    start_iteration,
                }
            })
            .collect()
    }

    /// Runs all brackets and returns the combined history.
    pub fn run(
        &self,
        sampler: &mut dyn Sampler,
        space: &SearchSpace,
        policy: &BudgetPolicy,
        evaluator: &mut dyn Evaluate,
    ) -> History {
        let mut history = History::new();
        let sha = SuccessiveHalving::new(self.config).with_promotion(self.promotion);
        for spec in self.bracket_specs() {
            evaluator.on_bracket_start(spec.index);
            sha.run_bracket(
                sampler,
                space,
                policy,
                evaluator,
                &mut history,
                spec.initial,
                spec.start_iteration,
            );
            if evaluator.should_halt() {
                break;
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{RandomSampler, TpeSampler};
    use crate::space::Domain;
    use edgetune_util::rng::SeedStream;
    use edgetune_util::units::{Joules, Seconds};

    fn space() -> SearchSpace {
        SearchSpace::new().with("x", Domain::float(0.0, 1.0))
    }

    /// Synthetic trial: true quality is |x − 0.42|; low budgets observe a
    /// noisy version, runtime is proportional to effective epochs.
    fn evaluator() -> impl FnMut(u64, &Config, TrialBudget) -> TrialOutcome {
        move |id, config, budget| {
            let x = config.get("x").unwrap();
            let truth = (x - 0.42).abs();
            let fidelity = (budget.effective_epochs() / 10.0).min(1.0);
            // Deterministic pseudo-noise that shrinks with budget.
            let wobble = ((id as f64 * 0.77).sin() * 0.2) * (1.0 - fidelity);
            let score = truth + wobble.abs();
            let runtime = Seconds::new(budget.effective_epochs() * 10.0);
            TrialOutcome::new(
                score,
                1.0 - truth,
                runtime,
                Joules::new(runtime.value() * 5.0),
            )
        }
    }

    #[test]
    fn sha_matches_the_papers_running_example() {
        // §2.2: minimum 1 epoch, maximum 16, η = 2: "16 trials initialized
        // on the minimal budget ... 8 trials with 2 epochs, then 4 trials
        // with 4 epochs, 2 trials with 8 epochs and a final iteration
        // containing only one trial with 16 epochs."
        let sha = SuccessiveHalving::new(SchedulerConfig::paper_example());
        let mut sampler = RandomSampler::new(SeedStream::new(1));
        let policy = BudgetPolicy::Epoch {
            epochs_per_iteration: 1.0,
            max_epochs: 16.0,
        };
        let mut eval = evaluator();
        let history = sha.run(&mut sampler, &space(), &policy, &mut eval);
        // 16 + 8 + 4 + 2 + 1 = 31 evaluations.
        assert_eq!(history.len(), 31);
        let at_level = |epochs: f64| {
            history
                .records()
                .iter()
                .filter(|r| (r.budget.epochs - epochs).abs() < 1e-9)
                .count()
        };
        assert_eq!(at_level(1.0), 16);
        assert_eq!(at_level(2.0), 8);
        assert_eq!(at_level(4.0), 4);
        assert_eq!(at_level(8.0), 2);
        assert_eq!(at_level(16.0), 1);
    }

    #[test]
    fn sha_promotes_good_configurations() {
        let sha = SuccessiveHalving::new(SchedulerConfig::new(16, 2.0, 4));
        let mut sampler = RandomSampler::new(SeedStream::new(2));
        let policy = BudgetPolicy::multi_default();
        let mut eval = evaluator();
        let history = sha.run(&mut sampler, &space(), &policy, &mut eval);
        // The finalist (highest budget) should be nearer the optimum than
        // the average rung-0 config.
        let max_budget = history
            .records()
            .iter()
            .map(|r| r.budget.effective_epochs())
            .fold(0.0f64, f64::max);
        let finalist = history
            .records()
            .iter()
            .filter(|r| r.budget.effective_epochs() == max_budget)
            .map(|r| (r.config.get("x").unwrap() - 0.42).abs())
            .fold(f64::INFINITY, f64::min);
        let rung0: Vec<f64> = history
            .records()
            .iter()
            .filter(|r| r.budget.effective_epochs() < max_budget)
            .map(|r| (r.config.get("x").unwrap() - 0.42).abs())
            .collect();
        let rung0_mean = rung0.iter().sum::<f64>() / rung0.len() as f64;
        assert!(
            finalist <= rung0_mean,
            "finalist ({finalist}) should beat the cohort mean ({rung0_mean})"
        );
    }

    #[test]
    fn sha_single_config_runs_once() {
        let sha = SuccessiveHalving::new(SchedulerConfig::new(1, 2.0, 5));
        let mut sampler = RandomSampler::new(SeedStream::new(3));
        let mut eval = evaluator();
        let history = sha.run(
            &mut sampler,
            &space(),
            &BudgetPolicy::epoch_default(),
            &mut eval,
        );
        assert_eq!(history.len(), 1, "a single config cannot be halved");
    }

    #[test]
    fn hyperband_runs_multiple_brackets() {
        let hb = HyperBand::new(SchedulerConfig::new(8, 2.0, 8));
        assert_eq!(hb.brackets(), 4);
        let mut sampler = RandomSampler::new(SeedStream::new(4));
        let mut eval = evaluator();
        let history = hb.run(
            &mut sampler,
            &space(),
            &BudgetPolicy::multi_default(),
            &mut eval,
        );
        assert!(
            history.len() > 8,
            "multiple brackets evaluate more than one cohort"
        );
        // The most exploratory bracket starts at iteration level 1.
        assert!(history
            .records()
            .iter()
            .any(|r| (r.budget.effective_epochs()
                - BudgetPolicy::multi_default().budget(1).effective_epochs())
            .abs()
                < 1e-9));
        assert!(history.best().is_some());
    }

    #[test]
    fn bohb_converges_to_the_optimum_region() {
        // TPE + HyperBand = BOHB; it should end up close to x = 0.42.
        let hb = HyperBand::new(SchedulerConfig::new(12, 2.0, 8));
        let mut sampler = TpeSampler::new(SeedStream::new(5));
        let mut eval = evaluator();
        let history = hb.run(
            &mut sampler,
            &space(),
            &BudgetPolicy::multi_default(),
            &mut eval,
        );
        let best = history.best().unwrap();
        let err = (best.config.get("x").unwrap() - 0.42).abs();
        assert!(err < 0.15, "best x should be near optimum: err={err}");
    }

    #[test]
    fn multi_budget_costs_less_than_epoch_budget_at_equal_schedule() {
        // The headline property of §4.3: the same scheduler spends less
        // trial runtime under multi-budget while still ranking configs.
        let sha = SuccessiveHalving::new(SchedulerConfig::paper_example());
        let run = |policy: BudgetPolicy| {
            let mut sampler = RandomSampler::new(SeedStream::new(6));
            let mut eval = evaluator();
            let h = sha.run(&mut sampler, &space(), &policy, &mut eval);
            h.total_runtime()
        };
        let epoch_time = run(BudgetPolicy::epoch_default());
        let multi_time = run(BudgetPolicy::multi_default());
        assert!(
            multi_time.value() < epoch_time.value(),
            "multi-budget should be cheaper: {multi_time} vs {epoch_time}"
        );
    }

    #[test]
    #[should_panic(expected = "reduction factor")]
    fn scheduler_config_rejects_eta_one() {
        let _ = SchedulerConfig::new(4, 1.0, 4);
    }

    #[test]
    fn failed_trials_are_never_promoted_and_their_slots_are_refilled() {
        use crate::trial::TrialFailure;
        // Every rung-0 trial with x < 0.5 "crashes"; the scheduler must
        // promote only survivors and backfill the freed slots with fresh
        // samples instead of shrinking the bracket.
        let sha = SuccessiveHalving::new(SchedulerConfig::new(16, 2.0, 4));
        let mut sampler = RandomSampler::new(SeedStream::new(21));
        let policy = BudgetPolicy::epoch_default();
        // `epoch_default` runs 2 epochs per iteration, so rung 0 sits
        // at 2 effective epochs and the ladder climbs 2 -> 4 -> 8.
        let mut crashed: Vec<f64> = Vec::new();
        let mut eval = |_id: u64, config: &Config, budget: TrialBudget| {
            let x = config.get("x").unwrap();
            if budget.effective_epochs() <= 2.0 && x < 0.5 {
                crashed.push(x);
                return TrialOutcome::failed(
                    TrialFailure::Crash,
                    Seconds::new(5.0),
                    Joules::new(1.0),
                );
            }
            let truth = (x - 0.7).abs();
            TrialOutcome::new(truth, 1.0 - truth, Seconds::new(10.0), Joules::new(5.0))
        };
        let history = sha.run(&mut sampler, &space(), &policy, &mut eval);
        assert!(!crashed.is_empty(), "the fault pattern must fire");
        // Rung sizes are unchanged by the failures: 16 → 8 → 4.
        let at_level = |epochs: f64| {
            history
                .records()
                .iter()
                .filter(|r| (r.budget.effective_epochs() - epochs).abs() < 1e-9)
                .count()
        };
        assert_eq!(at_level(2.0), 16);
        assert_eq!(at_level(4.0), 8);
        assert_eq!(at_level(8.0), 4);
        // No failed configuration ever reached a later rung.
        for r in history.records() {
            if r.budget.effective_epochs() > 2.0 {
                assert!(
                    !r.outcome.is_failed(),
                    "failed trials only exist on rung 0 in this pattern"
                );
            }
        }
        // The study still produces a meaningful winner.
        assert!(history.winner().unwrap().outcome.score.is_finite());
    }

    #[test]
    fn front_membership_promotes_the_front_a_scalar_rank_would_drop() {
        use crate::pareto::ObjectiveVector;
        use crate::sampler::GridSampler;
        // Accuracy rises with x up to 0.5 then collapses to zero; cost
        // rises with x throughout. So every x > 0.5 point is strictly
        // dominated (x = 0 matches its accuracy at lower cost) while
        // x <= 0.5 is the true trade-off front. The scalar score is
        // rigged to favour x near 0.75 — deep inside the dominated half.
        let eval = |_id: u64, config: &Config, _budget: TrialBudget| {
            let x = config.get("x").unwrap();
            let accuracy = if x <= 0.5 { x } else { 0.0 };
            let cost = 1.0 + 10.0 * x;
            TrialOutcome::new(
                (x - 0.75).abs(),
                accuracy,
                Seconds::new(cost),
                Joules::new(cost),
            )
            .with_vector(ObjectiveVector::new(accuracy, cost, 1.0))
        };
        let run = |promotion: PromotionRule| {
            let sha =
                SuccessiveHalving::new(SchedulerConfig::new(8, 2.0, 2)).with_promotion(promotion);
            // Grid sampling makes the rung-0 cohort x = 0, 1/7, ..., 1.
            let mut sampler = GridSampler::new(8);
            let mut eval = eval;
            sha.run(
                &mut sampler,
                &space(),
                &BudgetPolicy::epoch_default(),
                &mut eval,
            )
        };
        let promoted = |h: &History| -> Vec<f64> {
            let rung0 = h
                .records()
                .iter()
                .map(|r| r.budget.effective_epochs())
                .fold(f64::INFINITY, f64::min);
            h.records()
                .iter()
                .filter(|r| r.budget.effective_epochs() > rung0)
                .map(|r| r.config.get("x").unwrap())
                .collect()
        };
        let scalar = promoted(&run(PromotionRule::ScalarRank));
        let front = promoted(&run(PromotionRule::FrontMembership));
        assert_eq!(scalar.len(), 4);
        assert_eq!(front.len(), 4);
        assert!(
            scalar.iter().all(|&x| x > 0.5),
            "scalar rank promotes the dominated half: {scalar:?}"
        );
        assert!(
            front.iter().all(|&x| x <= 0.5),
            "front membership promotes the Pareto front: {front:?}"
        );
    }

    #[test]
    fn front_membership_without_vectors_matches_scalar_rank() {
        // No outcome carries a vector, so the dominance layers are all
        // u32::MAX and promotion must fall back to scalar order exactly.
        let run = |promotion: PromotionRule| {
            let sha =
                SuccessiveHalving::new(SchedulerConfig::new(12, 2.0, 8)).with_promotion(promotion);
            let mut sampler = RandomSampler::new(SeedStream::new(32));
            let mut eval = evaluator();
            sha.run(
                &mut sampler,
                &space(),
                &BudgetPolicy::multi_default(),
                &mut eval,
            )
        };
        assert_eq!(
            run(PromotionRule::ScalarRank),
            run(PromotionRule::FrontMembership)
        );
    }

    #[test]
    fn scheduler_feeds_every_outcome_to_the_sampler() {
        #[derive(Debug)]
        struct CountingSampler {
            inner: RandomSampler,
            observed: usize,
        }
        impl Sampler for CountingSampler {
            fn suggest(&mut self, space: &SearchSpace, observations: &[(&Config, f64)]) -> Config {
                self.inner.suggest(space, observations)
            }
            fn observe(&mut self, _config: &Config, _outcome: &TrialOutcome) {
                self.observed += 1;
            }
            fn name(&self) -> &'static str {
                "counting"
            }
        }
        let sha = SuccessiveHalving::new(SchedulerConfig::new(8, 2.0, 4));
        let mut sampler = CountingSampler {
            inner: RandomSampler::new(SeedStream::new(33)),
            observed: 0,
        };
        let mut eval = evaluator();
        let history = sha.run(
            &mut sampler,
            &space(),
            &BudgetPolicy::multi_default(),
            &mut eval,
        );
        assert_eq!(sampler.observed, history.len());

        let fixed = FixedBudgetSearch::new(5, 2);
        let mut sampler = CountingSampler {
            inner: RandomSampler::new(SeedStream::new(34)),
            observed: 0,
        };
        let mut eval = evaluator();
        let history = fixed.run(
            &mut sampler,
            &space(),
            &BudgetPolicy::multi_default(),
            &mut eval,
        );
        assert_eq!(sampler.observed, history.len());
    }

    #[test]
    fn should_halt_stops_after_the_current_rung() {
        struct HaltAfterFirstRung {
            rungs: u32,
        }
        impl Evaluate for HaltAfterFirstRung {
            fn evaluate(
                &mut self,
                _id: u64,
                config: &Config,
                _budget: TrialBudget,
            ) -> TrialOutcome {
                let truth = (config.get("x").unwrap() - 0.42).abs();
                TrialOutcome::new(truth, 1.0 - truth, Seconds::new(1.0), Joules::new(1.0))
            }
            fn on_rung_complete(&mut self, _history: &History) {
                self.rungs += 1;
            }
            fn should_halt(&self) -> bool {
                self.rungs >= 1
            }
        }
        let sha = SuccessiveHalving::new(SchedulerConfig::new(8, 2.0, 8));
        let mut sampler = RandomSampler::new(SeedStream::new(22));
        let mut eval = HaltAfterFirstRung { rungs: 0 };
        let history = sha.run(
            &mut sampler,
            &space(),
            &BudgetPolicy::epoch_default(),
            &mut eval,
        );
        assert_eq!(history.len(), 8, "only the first rung ran");
    }

    #[test]
    fn bracket_specs_describe_the_run_in_execution_order() {
        let hb = HyperBand::new(SchedulerConfig::new(8, 2.0, 8));
        let specs = hb.bracket_specs();
        assert_eq!(specs.len() as u32, hb.brackets());
        let indices: Vec<u32> = specs.iter().map(|s| s.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        // The first bracket is the most exploratory; budgets climb and
        // cohorts shrink with the index.
        assert_eq!(specs[0].start_iteration, 1);
        for pair in specs.windows(2) {
            assert!(pair[0].initial >= pair[1].initial);
            assert!(pair[0].start_iteration <= pair[1].start_iteration);
        }
        assert_eq!(specs.last().unwrap().start_iteration, 8);
    }

    #[test]
    fn on_bracket_start_fires_once_per_bracket_with_its_index() {
        struct BracketCounter {
            seen: Vec<u32>,
        }
        impl Evaluate for BracketCounter {
            fn evaluate(
                &mut self,
                _id: u64,
                config: &Config,
                _budget: TrialBudget,
            ) -> TrialOutcome {
                let truth = (config.get("x").unwrap() - 0.42).abs();
                TrialOutcome::new(truth, 1.0 - truth, Seconds::new(1.0), Joules::new(1.0))
            }
            fn on_bracket_start(&mut self, bracket: u32) {
                self.seen.push(bracket);
            }
        }
        let hb = HyperBand::new(SchedulerConfig::new(8, 2.0, 8));
        let mut sampler = RandomSampler::new(SeedStream::new(23));
        let mut eval = BracketCounter { seen: Vec::new() };
        let _ = hb.run(
            &mut sampler,
            &space(),
            &BudgetPolicy::epoch_default(),
            &mut eval,
        );
        assert_eq!(eval.seen, vec![0, 1, 2, 3]);

        let sha = SuccessiveHalving::new(SchedulerConfig::new(8, 2.0, 8));
        let mut sampler = RandomSampler::new(SeedStream::new(24));
        let mut eval = BracketCounter { seen: Vec::new() };
        let _ = sha.run(
            &mut sampler,
            &space(),
            &BudgetPolicy::epoch_default(),
            &mut eval,
        );
        assert_eq!(eval.seen, vec![0], "a lone SHA bracket is bracket 0");
    }

    #[test]
    fn fixed_budget_evaluates_every_trial_at_the_same_level() {
        let fixed = FixedBudgetSearch::new(12, 8);
        let mut sampler = RandomSampler::new(SeedStream::new(9));
        let mut eval = evaluator();
        let policy = BudgetPolicy::multi_default();
        let history = fixed.run(&mut sampler, &space(), &policy, &mut eval);
        assert_eq!(history.len(), 12);
        let expected = policy.budget(8);
        for r in history.records() {
            assert_eq!(r.budget, expected);
        }
    }

    #[test]
    fn multi_fidelity_is_cheaper_than_fixed_budget_at_equal_quality() {
        // §2.2's motivation for multi-fidelity budgets: the same number
        // of explored configurations costs much less because unpromising
        // ones never see the full budget.
        let policy = BudgetPolicy::multi_default();
        let mut sha_sampler = RandomSampler::new(SeedStream::new(10));
        let mut eval1 = evaluator();
        let sha = SuccessiveHalving::new(SchedulerConfig::new(16, 2.0, 8)).run(
            &mut sha_sampler,
            &space(),
            &policy,
            &mut eval1,
        );
        let mut fixed_sampler = RandomSampler::new(SeedStream::new(10));
        let mut eval2 = evaluator();
        let fixed =
            FixedBudgetSearch::new(16, 8).run(&mut fixed_sampler, &space(), &policy, &mut eval2);
        assert!(
            sha.total_runtime().value() < fixed.total_runtime().value(),
            "SHA {} should be cheaper than fixed {}",
            sha.total_runtime(),
            fixed.total_runtime()
        );
        // And the quality of the final answer is comparable.
        let sha_best = sha.winner().unwrap().outcome.accuracy;
        let fixed_best = fixed.winner().unwrap().outcome.accuracy;
        assert!(sha_best >= fixed_best - 0.1, "{sha_best} vs {fixed_best}");
    }
}
