//! Deterministic merging of per-shard trial histories.
//!
//! When a study is partitioned across engine shards, each shard owns a
//! slice of every rung and records its trials locally. To hand back one
//! [`History`] — and one byte-stable report — the coordinator stamps
//! every record with its simulated start time and the bracket that
//! produced it, and [`HistoryMerge`] interleaves the shard histories by
//! `(simulated start, bracket, trial id)`.
//!
//! That key reproduces the unsharded execution order exactly: within a
//! rung, list-scheduled start times are non-decreasing in trial-id
//! order (each trial takes the least-loaded slot, and loads only grow);
//! across rungs and brackets the simulated clock only advances; and
//! trial ids are globally unique, so the key is a total order. Merging
//! is therefore a pure sort — independent of how many shards there were
//! or in which order their histories arrive.

use std::cmp::Ordering;

use edgetune_util::units::Seconds;

use crate::trial::{History, TrialRecord};

/// One trial record plus the provenance stamps sharding needs to put it
/// back in global order.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedTrial {
    /// The recorded trial.
    pub record: TrialRecord,
    /// Simulated timestamp at which the trial started.
    pub start: Seconds,
    /// Index (in execution order) of the scheduler bracket that ran it.
    pub bracket: u32,
}

/// The trials one shard executed, in the order it executed them.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHistory {
    /// The shard's index in the study coordinator's partition.
    pub shard: usize,
    /// The shard's stamped trial records.
    pub trials: Vec<StampedTrial>,
}

/// Deterministic interleaving of per-shard trial histories.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistoryMerge;

impl HistoryMerge {
    /// Merges shard histories into one [`History`] ordered by
    /// `(simulated start, bracket, trial id)` — the unsharded execution
    /// order. The result is identical for any partition of the same
    /// trials into shards and any permutation of the `shards` argument.
    #[must_use]
    pub fn merge(shards: Vec<ShardHistory>) -> History {
        let mut stamped: Vec<StampedTrial> =
            shards.into_iter().flat_map(|shard| shard.trials).collect();
        stamped.sort_by(Self::execution_order);
        let mut history = History::new();
        history.extend(stamped.into_iter().map(|trial| trial.record));
        history
    }

    /// The total order merged histories are emitted in.
    #[must_use]
    pub fn execution_order(a: &StampedTrial, b: &StampedTrial) -> Ordering {
        a.start
            .value()
            .total_cmp(&b.start.value())
            .then_with(|| a.bracket.cmp(&b.bracket))
            .then_with(|| a.record.id.cmp(&b.record.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::TrialBudget;
    use crate::space::Config;
    use crate::trial::TrialOutcome;
    use edgetune_util::units::Joules;

    fn stamped(id: u64, start: f64, bracket: u32) -> StampedTrial {
        let outcome = TrialOutcome::new(
            id as f64,
            0.5,
            Seconds::new(10.0 + id as f64),
            Joules::new(1.0),
        );
        StampedTrial {
            record: TrialRecord {
                id,
                config: Config::new(),
                budget: TrialBudget::new(1.0, 1.0),
                outcome,
            },
            start: Seconds::new(start),
            bracket,
        }
    }

    #[test]
    fn merge_restores_global_execution_order() {
        let even = ShardHistory {
            shard: 0,
            trials: vec![stamped(0, 0.0, 0), stamped(2, 40.0, 0)],
        };
        let odd = ShardHistory {
            shard: 1,
            trials: vec![stamped(1, 20.0, 0), stamped(3, 60.0, 0)],
        };
        let merged = HistoryMerge::merge(vec![odd, even]);
        let ids: Vec<u64> = merged.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ties_on_start_break_by_bracket_then_id() {
        // Parallel slots start a rung's first trials at the same instant.
        let shard = ShardHistory {
            shard: 0,
            trials: vec![stamped(5, 0.0, 1), stamped(4, 0.0, 1), stamped(2, 0.0, 0)],
        };
        let merged = HistoryMerge::merge(vec![shard]);
        let ids: Vec<u64> = merged.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 4, 5]);
    }

    #[test]
    fn merging_no_shards_or_empty_shards_yields_an_empty_history() {
        assert!(HistoryMerge::merge(Vec::new()).is_empty());
        let empty = ShardHistory {
            shard: 0,
            trials: Vec::new(),
        };
        assert!(HistoryMerge::merge(vec![empty]).is_empty());
    }
}
