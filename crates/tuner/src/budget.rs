//! Trial budgets: epoch-based, dataset-based, and the paper's
//! multi-budget (§4.3, Algorithm 2).
//!
//! A [`TrialBudget`] tells a trial how many epochs to run and on what
//! fraction of the data; a [`BudgetPolicy`] maps a successive-halving
//! *iteration level* to a budget:
//!
//! * **Epoch** budget — epochs grow with the iteration, always on the
//!   full dataset ("epochs is equal to two times the iteration level"),
//! * **Dataset** budget — exactly one epoch, on a growing data fraction
//!   ("percentage of dataset used is equals to min(1, iteration_id*0.1)"),
//! * **Multi-budget** — *both* grow simultaneously and proportionally,
//!   each capped independently at its maximum (Algorithm 2:
//!   `epochs = min(min_epochs·it, max_epochs)`,
//!   `frac = min(min_frac·it, 1)`).

use serde::{Deserialize, Serialize};

/// The resources one training trial is allowed to consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialBudget {
    /// Number of epochs to run.
    pub epochs: f64,
    /// Fraction of the training data to use, in `(0, 1]`.
    pub data_fraction: f64,
}

impl TrialBudget {
    /// Creates a budget.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is not positive or `data_fraction` is outside
    /// `(0, 1]`.
    #[must_use]
    pub fn new(epochs: f64, data_fraction: f64) -> Self {
        assert!(epochs > 0.0, "epochs must be positive, got {epochs}");
        assert!(
            data_fraction > 0.0 && data_fraction <= 1.0,
            "data fraction must be in (0,1], got {data_fraction}"
        );
        TrialBudget {
            epochs,
            data_fraction,
        }
    }

    /// The *effective* training effort of this budget, in units of
    /// full-dataset epochs (epochs × fraction). Both sample-count cost and
    /// learning progress scale with it.
    #[must_use]
    pub fn effective_epochs(&self) -> f64 {
        self.epochs * self.data_fraction
    }
}

/// A policy mapping iteration levels (1-based) to trial budgets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BudgetPolicy {
    /// Epoch-based: `epochs = min(epochs_per_iteration · it, max_epochs)`,
    /// full dataset.
    Epoch {
        /// Epochs added per iteration level (the paper uses 2).
        epochs_per_iteration: f64,
        /// Cap on epochs.
        max_epochs: f64,
    },
    /// Dataset-based: one epoch on `min(1, fraction_per_iteration · it)`
    /// of the data.
    Dataset {
        /// Data fraction added per iteration level (the paper uses 0.1).
        fraction_per_iteration: f64,
    },
    /// The paper's multi-budget (Algorithm 2): both dimensions grow
    /// proportionally to the iteration and cap independently.
    Multi {
        /// Minimum (and per-iteration increment of) epochs.
        min_epochs: f64,
        /// Cap on epochs.
        max_epochs: f64,
        /// Minimum (and per-iteration increment of) data fraction.
        min_fraction: f64,
    },
}

impl BudgetPolicy {
    /// The paper's epoch-based baseline (2 epochs per iteration, capped).
    #[must_use]
    pub fn epoch_default() -> Self {
        BudgetPolicy::Epoch {
            epochs_per_iteration: 2.0,
            max_epochs: 16.0,
        }
    }

    /// The paper's dataset-based baseline (10% per iteration).
    #[must_use]
    pub fn dataset_default() -> Self {
        BudgetPolicy::Dataset {
            fraction_per_iteration: 0.1,
        }
    }

    /// The paper's multi-budget defaults (§4.3's running example: start
    /// at 2 epochs / 10% data, cap at 10 epochs / 100%).
    #[must_use]
    pub fn multi_default() -> Self {
        BudgetPolicy::Multi {
            min_epochs: 2.0,
            max_epochs: 10.0,
            min_fraction: 0.1,
        }
    }

    /// The budget granted at iteration level `iteration` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `iteration` is zero.
    #[must_use]
    pub fn budget(&self, iteration: u32) -> TrialBudget {
        assert!(iteration >= 1, "iteration levels are 1-based");
        let it = f64::from(iteration);
        match *self {
            BudgetPolicy::Epoch {
                epochs_per_iteration,
                max_epochs,
            } => TrialBudget::new((epochs_per_iteration * it).min(max_epochs), 1.0),
            BudgetPolicy::Dataset {
                fraction_per_iteration,
            } => TrialBudget::new(1.0, (fraction_per_iteration * it).min(1.0)),
            BudgetPolicy::Multi {
                min_epochs,
                max_epochs,
                min_fraction,
            } => TrialBudget::new(
                (min_epochs * it).min(max_epochs),
                (min_fraction * it).min(1.0),
            ),
        }
    }

    /// The iteration level at which the policy stops growing (both
    /// dimensions at their caps).
    #[must_use]
    pub fn saturation_iteration(&self) -> u32 {
        match *self {
            BudgetPolicy::Epoch {
                epochs_per_iteration,
                max_epochs,
            } => (max_epochs / epochs_per_iteration).ceil() as u32,
            BudgetPolicy::Dataset {
                fraction_per_iteration,
            } => (1.0 / fraction_per_iteration).ceil() as u32,
            BudgetPolicy::Multi {
                min_epochs,
                max_epochs,
                min_fraction,
            } => {
                let by_epochs = (max_epochs / min_epochs).ceil() as u32;
                let by_fraction = (1.0 / min_fraction).ceil() as u32;
                by_epochs.max(by_fraction)
            }
        }
    }

    /// Short display name matching the paper's legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BudgetPolicy::Epoch { .. } => "epochs",
            BudgetPolicy::Dataset { .. } => "dataset",
            BudgetPolicy::Multi { .. } => "multi-budget",
        }
    }
}

impl std::fmt::Display for BudgetPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_policy_grows_epochs_on_full_data() {
        let p = BudgetPolicy::epoch_default();
        let b1 = p.budget(1);
        assert_eq!(b1.epochs, 2.0);
        assert_eq!(b1.data_fraction, 1.0);
        let b4 = p.budget(4);
        assert_eq!(b4.epochs, 8.0);
        let b99 = p.budget(99);
        assert_eq!(b99.epochs, 16.0, "cap applies");
    }

    #[test]
    fn dataset_policy_grows_fraction_single_epoch() {
        let p = BudgetPolicy::dataset_default();
        assert_eq!(p.budget(1), TrialBudget::new(1.0, 0.1));
        assert_eq!(p.budget(5), TrialBudget::new(1.0, 0.5));
        assert_eq!(
            p.budget(20),
            TrialBudget::new(1.0, 1.0),
            "fraction caps at 1"
        );
    }

    #[test]
    fn multi_budget_matches_algorithm2_example() {
        // §4.3: min epochs 2, min fraction 10%: iteration 2 = 4 epochs on
        // 20%, iteration 3 = 6 epochs on 30%; epochs cap at 10 from the
        // 5th iteration while the dataset keeps growing to the 10th.
        let p = BudgetPolicy::multi_default();
        let close = |b: TrialBudget, epochs: f64, frac: f64| {
            assert!((b.epochs - epochs).abs() < 1e-9, "epochs {b:?} vs {epochs}");
            assert!(
                (b.data_fraction - frac).abs() < 1e-9,
                "fraction {b:?} vs {frac}"
            );
        };
        close(p.budget(1), 2.0, 0.1);
        close(p.budget(2), 4.0, 0.2);
        close(p.budget(3), 6.0, 0.3);
        close(p.budget(5), 10.0, 0.5);
        close(p.budget(7), 10.0, 0.7); // epochs capped, data grows
        close(p.budget(10), 10.0, 1.0);
        close(p.budget(12), 10.0, 1.0);
    }

    #[test]
    fn multi_budget_early_iterations_are_cheaper_than_epoch_budget() {
        let multi = BudgetPolicy::multi_default();
        let epoch = BudgetPolicy::epoch_default();
        for it in 1..=4 {
            assert!(
                multi.budget(it).effective_epochs() < epoch.budget(it).effective_epochs(),
                "iteration {it}"
            );
        }
    }

    #[test]
    fn effective_epochs_multiplies_dimensions() {
        assert_eq!(TrialBudget::new(4.0, 0.5).effective_epochs(), 2.0);
        assert_eq!(TrialBudget::new(1.0, 1.0).effective_epochs(), 1.0);
    }

    #[test]
    fn saturation_iterations() {
        assert_eq!(BudgetPolicy::epoch_default().saturation_iteration(), 8);
        assert_eq!(BudgetPolicy::dataset_default().saturation_iteration(), 10);
        assert_eq!(BudgetPolicy::multi_default().saturation_iteration(), 10);
    }

    #[test]
    fn budgets_grow_monotonically() {
        for policy in [
            BudgetPolicy::epoch_default(),
            BudgetPolicy::dataset_default(),
            BudgetPolicy::multi_default(),
        ] {
            let mut last = 0.0;
            for it in 1..=15 {
                let eff = policy.budget(it).effective_epochs();
                assert!(eff >= last, "{policy}: effective epochs must not shrink");
                last = eff;
            }
        }
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(BudgetPolicy::epoch_default().name(), "epochs");
        assert_eq!(BudgetPolicy::dataset_default().to_string(), "dataset");
        assert_eq!(BudgetPolicy::multi_default().name(), "multi-budget");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn iteration_zero_rejected() {
        let _ = BudgetPolicy::multi_default().budget(0);
    }

    #[test]
    #[should_panic(expected = "data fraction")]
    fn budget_rejects_bad_fraction() {
        let _ = TrialBudget::new(1.0, 1.5);
    }
}
