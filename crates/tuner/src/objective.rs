//! Objective functions and metrics (§4.4 of the paper).
//!
//! The Model Tuning Server minimises a performance-to-accuracy ratio:
//!
//! ```text
//! ratio = training_time   · inference_time   / accuracy     (runtime)
//! ratio = training_energy · inference_energy / accuracy     (energy)
//! ```
//!
//! while the Inference Tuning Server minimises inference runtime or
//! energy alone. Inference-unaware baselines (Tune, HyperPower) drop the
//! inference factor.

use edgetune_util::units::{Joules, JoulesPerItem, Seconds};
use serde::{Deserialize, Serialize};

/// Which physical metric an objective optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Wall-clock time.
    Runtime,
    /// Energy consumption.
    Energy,
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Metric::Runtime => write!(f, "runtime"),
            Metric::Energy => write!(f, "energy"),
        }
    }
}

/// Everything a training trial measured, handed to the objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainMeasurement {
    /// Accuracy the trial reached.
    pub accuracy: f64,
    /// Training wall-clock time of the trial.
    pub train_time: Seconds,
    /// Training energy of the trial.
    pub train_energy: Joules,
    /// Estimated per-item inference latency on the target device, if the
    /// inference server has reported one.
    pub inference_time: Option<Seconds>,
    /// Estimated per-item inference energy, if reported.
    pub inference_energy: Option<JoulesPerItem>,
}

/// Base of the graded penalty applied to trials below the accuracy
/// floor: huge enough to lose to any feasible trial, but still *ranked*
/// by accuracy so multi-fidelity scheduling stays informative when a
/// whole low-budget rung is infeasible.
pub const INFEASIBLE_PENALTY: f64 = 1e12;

/// The Model Tuning Server's objective function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainObjective {
    metric: Metric,
    inference_aware: bool,
    accuracy_only: bool,
    accuracy_floor: Option<f64>,
}

impl TrainObjective {
    /// The paper's inference-aware ratio objective.
    #[must_use]
    pub fn inference_aware(metric: Metric) -> Self {
        TrainObjective {
            metric,
            inference_aware: true,
            accuracy_only: false,
            accuracy_floor: None,
        }
    }

    /// An inference-unaware variant: `train_metric / accuracy`.
    #[must_use]
    pub fn training_only(metric: Metric) -> Self {
        TrainObjective {
            metric,
            inference_aware: false,
            accuracy_only: false,
            accuracy_floor: None,
        }
    }

    /// Pure accuracy maximisation (`score = 1 − accuracy`) — how
    /// conventional tuning services such as the Tune baseline define
    /// success ("assist users to achieve the target model accuracy",
    /// §1).
    #[must_use]
    pub fn accuracy_only() -> Self {
        TrainObjective {
            metric: Metric::Runtime,
            inference_aware: false,
            accuracy_only: true,
            accuracy_floor: None,
        }
    }

    /// Marks trials below an accuracy threshold as infeasible (the
    /// "threshold" optimisation-function option of §3.3).
    ///
    /// # Panics
    ///
    /// Panics unless `floor` is in `(0, 1)`.
    #[must_use]
    pub fn with_accuracy_floor(mut self, floor: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&floor) && floor > 0.0,
            "floor must be in (0,1)"
        );
        self.accuracy_floor = Some(floor);
        self
    }

    /// The metric being optimised.
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Whether the inference factor participates.
    #[must_use]
    pub fn is_inference_aware(&self) -> bool {
        self.inference_aware
    }

    /// Scores a measurement; **lower is better**. Returns `+∞` for
    /// infeasible trials (zero/negative accuracy, below the floor, or —
    /// for inference-aware scoring — a missing inference estimate).
    #[must_use]
    pub fn score(&self, m: &TrainMeasurement) -> f64 {
        if m.accuracy <= 0.0 {
            return f64::INFINITY;
        }
        if let Some(floor) = self.accuracy_floor {
            if m.accuracy < floor {
                return INFEASIBLE_PENALTY * (1.0 + floor - m.accuracy);
            }
        }
        if self.accuracy_only {
            return 1.0 - m.accuracy;
        }
        let train_factor = match self.metric {
            Metric::Runtime => m.train_time.value(),
            Metric::Energy => m.train_energy.value(),
        };
        let inference_factor = if self.inference_aware {
            match self.metric {
                Metric::Runtime => match m.inference_time {
                    Some(t) => t.value(),
                    None => return f64::INFINITY,
                },
                Metric::Energy => match m.inference_energy {
                    Some(e) => e.value(),
                    None => return f64::INFINITY,
                },
            }
        } else {
            1.0
        };
        train_factor * inference_factor / m.accuracy
    }
}

/// The Inference Tuning Server's objective: minimise per-item inference
/// runtime or energy (§4.4: "defined only in terms of inference
/// performance").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceObjective {
    metric: Metric,
}

impl InferenceObjective {
    /// Creates the objective for a metric.
    #[must_use]
    pub fn new(metric: Metric) -> Self {
        InferenceObjective { metric }
    }

    /// The metric being optimised.
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Scores a per-item latency/energy pair; lower is better.
    #[must_use]
    pub fn score(&self, latency_per_item: Seconds, energy_per_item: JoulesPerItem) -> f64 {
        match self.metric {
            Metric::Runtime => latency_per_item.value(),
            Metric::Energy => energy_per_item.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(accuracy: f64) -> TrainMeasurement {
        TrainMeasurement {
            accuracy,
            train_time: Seconds::new(100.0),
            train_energy: Joules::new(5000.0),
            inference_time: Some(Seconds::new(0.05)),
            inference_energy: Some(JoulesPerItem::new(0.4)),
        }
    }

    #[test]
    fn runtime_ratio_matches_paper_formula() {
        let obj = TrainObjective::inference_aware(Metric::Runtime);
        let m = measurement(0.8);
        assert!((obj.score(&m) - 100.0 * 0.05 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn energy_ratio_matches_paper_formula() {
        let obj = TrainObjective::inference_aware(Metric::Energy);
        let m = measurement(0.8);
        assert!((obj.score(&m) - 5000.0 * 0.4 / 0.8).abs() < 1e-9);
    }

    #[test]
    fn higher_accuracy_scores_better() {
        let obj = TrainObjective::inference_aware(Metric::Runtime);
        assert!(obj.score(&measurement(0.9)) < obj.score(&measurement(0.5)));
    }

    #[test]
    fn training_only_ignores_inference() {
        let obj = TrainObjective::training_only(Metric::Runtime);
        let mut m = measurement(0.8);
        let with = obj.score(&m);
        m.inference_time = None;
        m.inference_energy = None;
        assert_eq!(obj.score(&m), with, "inference factors must not matter");
        assert!((with - 100.0 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn inference_aware_without_estimate_is_infeasible() {
        let obj = TrainObjective::inference_aware(Metric::Runtime);
        let mut m = measurement(0.8);
        m.inference_time = None;
        assert!(obj.score(&m).is_infinite());
    }

    #[test]
    fn accuracy_floor_applies_graded_penalty() {
        let obj = TrainObjective::inference_aware(Metric::Runtime).with_accuracy_floor(0.8);
        let below = obj.score(&measurement(0.79));
        let lower = obj.score(&measurement(0.40));
        let above = obj.score(&measurement(0.81));
        assert!(
            below >= INFEASIBLE_PENALTY,
            "below-floor trials are heavily penalised"
        );
        assert!(lower > below, "penalty still ranks by accuracy");
        assert!(above < INFEASIBLE_PENALTY, "feasible trials always win");
    }

    #[test]
    fn zero_accuracy_is_infeasible() {
        let obj = TrainObjective::training_only(Metric::Energy);
        assert!(obj.score(&measurement(0.0)).is_infinite());
    }

    #[test]
    fn inference_objective_picks_metric() {
        let t = InferenceObjective::new(Metric::Runtime);
        let e = InferenceObjective::new(Metric::Energy);
        let lat = Seconds::new(0.02);
        let en = JoulesPerItem::new(0.6);
        assert_eq!(t.score(lat, en), 0.02);
        assert_eq!(e.score(lat, en), 0.6);
        assert_eq!(t.metric(), Metric::Runtime);
    }

    #[test]
    fn accuracy_only_ranks_by_accuracy_alone() {
        let obj = TrainObjective::accuracy_only();
        let fast_inaccurate = TrainMeasurement {
            accuracy: 0.6,
            train_time: Seconds::new(1.0),
            train_energy: Joules::new(1.0),
            inference_time: None,
            inference_energy: None,
        };
        let slow_accurate = TrainMeasurement {
            accuracy: 0.9,
            train_time: Seconds::new(1e6),
            train_energy: Joules::new(1e9),
            inference_time: None,
            inference_energy: None,
        };
        assert!(obj.score(&slow_accurate) < obj.score(&fast_inaccurate));
        assert!((obj.score(&slow_accurate) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn metric_display() {
        assert_eq!(Metric::Runtime.to_string(), "runtime");
        assert_eq!(Metric::Energy.to_string(), "energy");
    }
}
