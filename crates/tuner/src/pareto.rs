//! Multi-objective Pareto machinery: vector objectives, a deterministic
//! non-dominated front, and a hypervolume-guided TPE sampler.
//!
//! §4.4's ratio objective collapses accuracy, time and energy into one
//! scalar, so a study can only ever output a single "best" trade-off.
//! This module keeps the three axes apart: every trial can carry an
//! [`ObjectiveVector`], the engine accumulates the mutually
//! non-dominated set in a [`ParetoFront`], and the serving layer can
//! later *select* a feasible frontier point instead of re-tuning from
//! scratch. Search stays tractable the SoftNeuro way — dominated points
//! are pruned from promotion ([`promotion_layers`]) so scheduler rungs
//! advance front members first — and the model-based sampler
//! ([`ParetoTpeSampler`]) is an EHVI-style acquisition layered over the
//! existing TPE density machinery: the "good" kernel set is the Pareto
//! front (trimmed by hypervolume contribution when it outgrows the
//! quantile), so candidates maximising `l(x)/g(x)` are exactly those
//! expected to improve the dominated hypervolume.

use edgetune_util::rng::SeedStream;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::objective::{Metric, TrainMeasurement};
use crate::sampler::{Sampler, TpeSampler};
use crate::space::{Config, SearchSpace};
use crate::trial::TrialOutcome;

/// One trial's coordinates in objective space.
///
/// Accuracy is maximised; both costs are minimised and are expressed in
/// the study's active [`Metric`] (seconds for `Runtime`, joules for
/// `Energy`). Internally every comparison runs on the *cost view*
/// ([`ObjectiveVector::costs`]), where accuracy is negated so all three
/// axes minimise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveVector {
    /// Model accuracy reached by the trial (higher is better).
    pub accuracy: f64,
    /// Training-side cost in the active metric (lower is better).
    pub train_cost: f64,
    /// Per-item inference cost in the active metric (lower is better).
    pub inference_cost: f64,
}

impl ObjectiveVector {
    /// Creates a vector.
    ///
    /// # Panics
    ///
    /// Panics if any component is NaN (infinities are allowed — they mark
    /// infeasible axes and lose every dominance comparison they should).
    #[must_use]
    pub fn new(accuracy: f64, train_cost: f64, inference_cost: f64) -> Self {
        assert!(
            !accuracy.is_nan() && !train_cost.is_nan() && !inference_cost.is_nan(),
            "objective vector must not contain NaN"
        );
        ObjectiveVector {
            accuracy,
            train_cost,
            inference_cost,
        }
    }

    /// Builds the vector a train measurement induces under `metric`, or
    /// `None` when the inference side never reported (degraded trials
    /// have no place on a frontier).
    #[must_use]
    pub fn from_measurement(m: &TrainMeasurement, metric: Metric) -> Option<Self> {
        let inference_cost = match metric {
            Metric::Runtime => m.inference_time?.value(),
            Metric::Energy => m.inference_energy?.value(),
        };
        let train_cost = match metric {
            Metric::Runtime => m.train_time.value(),
            Metric::Energy => m.train_energy.value(),
        };
        Some(ObjectiveVector::new(m.accuracy, train_cost, inference_cost))
    }

    /// The all-minimising cost view: `[-accuracy, train, inference]`.
    #[must_use]
    pub fn costs(&self) -> [f64; 3] {
        [-self.accuracy, self.train_cost, self.inference_cost]
    }

    /// True when `self` Pareto-dominates `other`: no worse on every axis
    /// and strictly better on at least one. Deterministic — ties on all
    /// axes dominate in neither direction.
    #[must_use]
    pub fn dominates(&self, other: &ObjectiveVector) -> bool {
        let a = self.costs();
        let b = other.costs();
        let mut strictly_better = false;
        for i in 0..3 {
            if a[i] > b[i] {
                return false;
            }
            if a[i] < b[i] {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

/// Canonical ordering of vectors: lexicographic on the cost view, so the
/// highest-accuracy points sort first and every tie is broken the same
/// way on every machine.
fn cost_order(a: &ObjectiveVector, b: &ObjectiveVector) -> std::cmp::Ordering {
    let (ca, cb) = (a.costs(), b.costs());
    ca[0]
        .total_cmp(&cb[0])
        .then(ca[1].total_cmp(&cb[1]))
        .then(ca[2].total_cmp(&cb[2]))
}

/// One resident of a [`ParetoFront`]: a configuration, its objective
/// coordinates, and the trial that produced it (the final tie-break).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// The non-dominated configuration.
    pub config: Config,
    /// Its objective coordinates.
    pub vector: ObjectiveVector,
    /// Id of the trial that measured it.
    pub trial: u64,
}

/// The mutually non-dominated set of everything inserted so far.
///
/// The front is **insertion-order invariant**: dominance is transitive,
/// so whichever order points arrive in, the surviving set is exactly the
/// non-dominated subset of all insertions, and [`ParetoFront::points`]
/// returns it in a canonical order (cost view lexicographic, then config
/// key, then trial id). Duplicated coordinates dominate in neither
/// direction and therefore coexist.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParetoFront {
    points: Vec<FrontPoint>,
}

impl ParetoFront {
    /// An empty front.
    #[must_use]
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Number of points on the front.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been inserted (or everything was dominated).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Offers a point to the front. Returns `true` when it joins (it is
    /// not dominated by any resident); residents it dominates are
    /// evicted.
    pub fn insert(&mut self, point: FrontPoint) -> bool {
        if self
            .points
            .iter()
            .any(|p| p.vector.dominates(&point.vector))
        {
            return false;
        }
        self.points.retain(|p| !point.vector.dominates(&p.vector));
        self.points.push(point);
        self.points.sort_by(|a, b| {
            cost_order(&a.vector, &b.vector)
                .then_with(|| a.config.key().cmp(&b.config.key()))
                .then(a.trial.cmp(&b.trial))
        });
        true
    }

    /// The front in canonical order.
    #[must_use]
    pub fn points(&self) -> &[FrontPoint] {
        &self.points
    }

    /// The first `k` points of the canonical order — the deterministic
    /// truncation a `--pareto K` report uses.
    #[must_use]
    pub fn top(&self, k: usize) -> &[FrontPoint] {
        &self.points[..self.points.len().min(k)]
    }

    /// True when no resident dominates another — the front's defining
    /// invariant, exposed so tests can assert it directly.
    #[must_use]
    pub fn is_mutually_non_dominated(&self) -> bool {
        for (i, a) in self.points.iter().enumerate() {
            for b in self.points.iter().skip(i + 1) {
                if a.vector.dominates(&b.vector) || b.vector.dominates(&a.vector) {
                    return false;
                }
            }
        }
        true
    }

    /// Exact dominated hypervolume against `reference` (a point every
    /// resident should dominate; residents outside it contribute
    /// nothing). Swept along the first cost axis with a 2-D staircase
    /// area per slab — O(n² log n), plenty for report-sized fronts.
    #[must_use]
    pub fn hypervolume(&self, reference: [f64; 3]) -> f64 {
        let mut pts: Vec<[f64; 3]> = self
            .points
            .iter()
            .map(|p| p.vector.costs())
            .filter(|c| c[0] < reference[0] && c[1] < reference[1] && c[2] < reference[2])
            .collect();
        if pts.is_empty() {
            return 0.0;
        }
        pts.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let mut volume = 0.0;
        let mut i = 0;
        while i < pts.len() {
            let x = pts[i][0];
            // Everything at cost0 <= x is active in this slab.
            let mut j = i;
            while j < pts.len() && pts[j][0] <= x {
                j += 1;
            }
            let width = if j < pts.len() {
                pts[j][0]
            } else {
                reference[0]
            } - x;
            let area = staircase_area(&pts[..j], reference[1], reference[2]);
            volume += width * area;
            i = j;
        }
        volume
    }

    /// How much inserting `v` would grow the dominated hypervolume — the
    /// hypervolume-improvement acquisition value of a candidate.
    #[must_use]
    pub fn hypervolume_improvement(&self, v: &ObjectiveVector, reference: [f64; 3]) -> f64 {
        let mut extended = self.clone();
        extended.insert(FrontPoint {
            config: Config::new(),
            vector: *v,
            trial: u64::MAX,
        });
        (extended.hypervolume(reference) - self.hypervolume(reference)).max(0.0)
    }
}

/// 2-D dominated area of `pts` (projected to cost axes 1 and 2) against
/// the reference corner `(ry, rz)`.
fn staircase_area(pts: &[[f64; 3]], ry: f64, rz: f64) -> f64 {
    let mut proj: Vec<(f64, f64)> = pts
        .iter()
        .filter(|c| c[1] < ry && c[2] < rz)
        .map(|c| (c[1], c[2]))
        .collect();
    if proj.is_empty() {
        return 0.0;
    }
    proj.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut area = 0.0;
    let mut best_z = rz;
    let mut i = 0;
    while i < proj.len() {
        let y = proj[i].0;
        // Lowest z at this y (and everything left of it was already
        // swept).
        let mut z = proj[i].1;
        let mut j = i;
        while j < proj.len() && proj[j].0 <= y {
            z = z.min(proj[j].1);
            j += 1;
        }
        if z < best_z {
            let next_y = if j < proj.len() { proj[j].0 } else { ry };
            area += (next_y - y) * (rz - z.min(best_z));
            // Overlap with the already-counted slab to the right of y is
            // impossible: we sweep left to right and only count the strip
            // [y, next_y).
            best_z = best_z.min(z);
        } else {
            // Dominated in the projection: adds nothing.
            let next_y = if j < proj.len() { proj[j].0 } else { ry };
            area += (next_y - y) * (rz - best_z);
        }
        i = j;
    }
    area
}

/// Non-dominated sorting of a rung's outcomes into dominance layers —
/// the SoftNeuro-style pruning pass scheduler promotion runs on. Layer 0
/// is the Pareto front of the rung, layer 1 the front of what remains,
/// and so on; outcomes without a vector (failed or degraded trials)
/// land in `u32::MAX` so they only ever advance on their scalar score
/// after every vectored trial.
#[must_use]
pub fn promotion_layers(outcomes: &[TrialOutcome]) -> Vec<u32> {
    let mut layers = vec![u32::MAX; outcomes.len()];
    let mut remaining: Vec<usize> = (0..outcomes.len())
        .filter(|&i| outcomes[i].vector.is_some())
        .collect();
    let mut layer = 0u32;
    while !remaining.is_empty() {
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let vi = outcomes[i].vector.expect("filtered to Some");
                !remaining
                    .iter()
                    .any(|&j| outcomes[j].vector.expect("filtered to Some").dominates(&vi))
            })
            .collect();
        debug_assert!(!front.is_empty(), "a finite set always has a front");
        for &i in &front {
            layers[i] = layer;
        }
        remaining.retain(|i| !front.contains(i));
        layer += 1;
    }
    layers
}

// ---------------------------------------------------------------------------
// EHVI-style acquisition over the TPE machinery
// ---------------------------------------------------------------------------

/// Fraction of vector observations treated as the "good" kernel set.
const GOOD_QUANTILE: f64 = 0.25;
/// Candidates drawn per suggestion.
const CANDIDATES: usize = 24;
/// Vector observations required before the model engages.
const MIN_OBSERVATIONS: usize = 8;
/// Cap on retained vector observations (most recent kept).
const MAX_OBSERVATIONS: usize = 256;

/// Multi-objective TPE: the hypervolume-improvement acquisition of
/// EHVI/MOTPE layered over [`TpeSampler`]'s Parzen densities.
///
/// Observations arrive through [`Sampler::observe`] (the scalar
/// observation list of [`Sampler::suggest`] is ignored once enough
/// vectors exist). The "good" set is the current Pareto front — trimmed
/// to the TPE quantile by *hypervolume contribution* when the front is
/// larger, padded by the next dominance layers when it is smaller — so
/// maximising the density ratio `l(x)/g(x)` steers suggestions toward
/// configurations expected to expand the dominated hypervolume.
#[derive(Debug)]
pub struct ParetoTpeSampler {
    rng: StdRng,
    observed: Vec<(Config, ObjectiveVector)>,
}

impl ParetoTpeSampler {
    /// Creates a seeded sampler.
    #[must_use]
    pub fn new(seed: SeedStream) -> Self {
        ParetoTpeSampler {
            // The rng label deliberately matches the scalar TPE sampler:
            // below MIN_OBSERVATIONS both draw the same random stream, so
            // a Pareto study explores the same opening cohort.
            rng: seed.rng("tpe-sampler"),
            observed: Vec::new(),
        }
    }

    /// Number of vector observations retained.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.observed.len()
    }

    /// Reference point for hypervolume bookkeeping: slightly beyond the
    /// worst observed value on every cost axis, so every observation
    /// contributes.
    fn reference(&self) -> [f64; 3] {
        let mut r = [f64::NEG_INFINITY; 3];
        for (_, v) in &self.observed {
            let c = v.costs();
            for i in 0..3 {
                if c[i].is_finite() {
                    r[i] = r[i].max(c[i]);
                }
            }
        }
        r.map(|x| {
            if x.is_finite() {
                x + x.abs() * 0.1 + 1e-9
            } else {
                1.0
            }
        })
    }

    /// Splits the retained observations into (good, bad) index sets of
    /// the TPE quantile size, good-first by dominance layer and, inside
    /// the front, by hypervolume contribution.
    fn split(&self) -> (Vec<usize>, Vec<usize>) {
        let outcomes: Vec<ObjectiveVector> = self.observed.iter().map(|(_, v)| *v).collect();
        let n = outcomes.len();
        let n_good = ((n as f64 * GOOD_QUANTILE).ceil() as usize).clamp(2, n - 1);

        // Peel dominance layers (indices, deterministic order).
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut ordered: Vec<usize> = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let front: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| {
                    !remaining
                        .iter()
                        .any(|&j| outcomes[j].dominates(&outcomes[i]))
                })
                .collect();
            // Inside a layer, order by hypervolume contribution against
            // the shared reference (largest first): when the front alone
            // overflows the quantile, the kept subset is the one EHVI
            // values most. Ties fall back to the canonical cost order.
            let reference = self.reference();
            let mut layer_front = ParetoFront::new();
            for &i in &front {
                layer_front.insert(FrontPoint {
                    config: self.observed[i].0.clone(),
                    vector: outcomes[i],
                    trial: i as u64,
                });
            }
            let total = layer_front.hypervolume(reference);
            let contribution = |i: usize| {
                let mut without = ParetoFront::new();
                for &j in &front {
                    if j != i {
                        without.insert(FrontPoint {
                            config: self.observed[j].0.clone(),
                            vector: outcomes[j],
                            trial: j as u64,
                        });
                    }
                }
                total - without.hypervolume(reference)
            };
            let mut scored_front: Vec<(usize, f64)> =
                front.iter().map(|&i| (i, contribution(i))).collect();
            scored_front.sort_by(|a, b| {
                b.1.total_cmp(&a.1)
                    .then(cost_order(&outcomes[a.0], &outcomes[b.0]))
                    .then(a.0.cmp(&b.0))
            });
            for &(i, _) in &scored_front {
                ordered.push(i);
            }
            remaining.retain(|i| !front.contains(i));
        }
        let bad = ordered.split_off(n_good);
        (ordered, bad)
    }
}

impl Sampler for ParetoTpeSampler {
    fn suggest(&mut self, space: &SearchSpace, _observations: &[(&Config, f64)]) -> Config {
        if self.observed.len() < MIN_OBSERVATIONS {
            return space.sample(&mut self.rng);
        }
        let (good_idx, bad_idx) = self.split();

        // Per-dimension kernel centres in the TPE working coordinates:
        // (name, domain, good centres, bad centres, bandwidth).
        type KernelDim<'a> = (&'a str, &'a crate::space::Domain, Vec<f64>, Vec<f64>, f64);
        let dims: Vec<KernelDim> = space
            .iter()
            .map(|(name, domain)| {
                let centres = |set: &[usize]| -> Vec<f64> {
                    set.iter()
                        .filter_map(|&i| self.observed[i].0.get(name))
                        .map(|v| TpeSampler::transform(domain, v))
                        .collect()
                };
                let good_c = centres(&good_idx);
                let bad_c = centres(&bad_idx);
                let bandwidth =
                    TpeSampler::extent(domain) / (good_c.len().max(1) as f64).sqrt().max(1.0) * 0.6
                        + 1e-6;
                (name, domain, good_c, bad_c, bandwidth)
            })
            .collect();

        let mut best: Option<(Config, f64)> = None;
        for _ in 0..CANDIDATES {
            let mut config = Config::new();
            let mut log_ratio = 0.0;
            for (name, domain, good_c, bad_c, bandwidth) in &dims {
                let coord = if good_c.is_empty() {
                    TpeSampler::transform(domain, domain.sample(&mut self.rng))
                } else {
                    let centre = good_c[self.rng.gen_range(0..good_c.len())];
                    centre + edgetune_util::rng::sample_normal(&mut self.rng, 0.0, *bandwidth)
                };
                let value = TpeSampler::untransform(domain, coord);
                let snapped = TpeSampler::transform(domain, value);
                let l = TpeSampler::density(snapped, good_c, *bandwidth);
                let g = TpeSampler::density(snapped, bad_c, *bandwidth);
                log_ratio += l.ln() - g.ln();
                config.set(*name, value);
            }
            if best.as_ref().is_none_or(|(_, r)| log_ratio > *r) {
                best = Some((config, log_ratio));
            }
        }
        best.expect("at least one candidate").0
    }

    fn observe(&mut self, config: &Config, outcome: &TrialOutcome) {
        if outcome.is_failed() {
            return;
        }
        if let Some(vector) = outcome.vector {
            if vector.costs().iter().all(|c| c.is_finite()) {
                self.observed.push((config.clone(), vector));
                if self.observed.len() > MAX_OBSERVATIONS {
                    self.observed.remove(0);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "pareto-tpe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune_util::units::{Joules, Seconds};

    fn vector(acc: f64, train: f64, inf: f64) -> ObjectiveVector {
        ObjectiveVector::new(acc, train, inf)
    }

    fn point(acc: f64, train: f64, inf: f64, trial: u64) -> FrontPoint {
        FrontPoint {
            config: Config::new().with("x", trial as f64),
            vector: vector(acc, train, inf),
            trial,
        }
    }

    #[test]
    fn dominance_is_strict_and_deterministic() {
        let a = vector(0.9, 10.0, 1.0);
        let b = vector(0.8, 12.0, 1.5);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Equal vectors dominate in neither direction.
        assert!(!a.dominates(&a));
        // A trade-off (better accuracy, worse cost) dominates neither way.
        let c = vector(0.95, 20.0, 1.0);
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_components_are_rejected() {
        let _ = vector(f64::NAN, 1.0, 1.0);
    }

    #[test]
    fn from_measurement_follows_the_metric() {
        let m = TrainMeasurement {
            accuracy: 0.8,
            train_time: Seconds::new(100.0),
            train_energy: Joules::new(500.0),
            inference_time: Some(Seconds::new(0.2)),
            inference_energy: Some(edgetune_util::units::JoulesPerItem::new(0.5)),
        };
        let rt = ObjectiveVector::from_measurement(&m, Metric::Runtime).unwrap();
        assert_eq!((rt.train_cost, rt.inference_cost), (100.0, 0.2));
        let en = ObjectiveVector::from_measurement(&m, Metric::Energy).unwrap();
        assert_eq!((en.train_cost, en.inference_cost), (500.0, 0.5));
        let degraded = TrainMeasurement {
            inference_time: None,
            ..m
        };
        assert!(ObjectiveVector::from_measurement(&degraded, Metric::Runtime).is_none());
    }

    #[test]
    fn front_keeps_only_non_dominated_points() {
        let mut front = ParetoFront::new();
        assert!(front.insert(point(0.8, 10.0, 1.0, 0)));
        assert!(front.insert(point(0.9, 20.0, 2.0, 1))); // trade-off: stays
        assert!(!front.insert(point(0.7, 15.0, 1.5, 2))); // dominated by 0
        assert!(front.insert(point(0.95, 5.0, 0.5, 3))); // dominates both
        assert_eq!(front.len(), 1);
        assert_eq!(front.points()[0].trial, 3);
        assert!(front.is_mutually_non_dominated());
    }

    #[test]
    fn front_is_insertion_order_invariant() {
        let pts = [
            point(0.8, 10.0, 1.0, 0),
            point(0.9, 20.0, 2.0, 1),
            point(0.7, 15.0, 1.5, 2),
            point(0.85, 8.0, 3.0, 3),
            point(0.85, 8.0, 3.0, 4), // duplicate coordinates coexist
            point(0.6, 30.0, 4.0, 5),
        ];
        let build = |order: &[usize]| {
            let mut front = ParetoFront::new();
            for &i in order {
                front.insert(pts[i].clone());
            }
            front
        };
        let reference = build(&[0, 1, 2, 3, 4, 5]);
        // A deterministic LCG shuffles the insertion order.
        let mut state = 9_u64;
        for _ in 0..20 {
            let mut order: Vec<usize> = (0..pts.len()).collect();
            for i in (1..order.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                order.swap(i, (state >> 33) as usize % (i + 1));
            }
            assert_eq!(build(&order), reference, "order {order:?} diverged");
        }
        assert!(reference.is_mutually_non_dominated());
    }

    #[test]
    fn top_truncates_the_canonical_order() {
        let mut front = ParetoFront::new();
        front.insert(point(0.8, 10.0, 1.0, 0));
        front.insert(point(0.9, 20.0, 2.0, 1));
        front.insert(point(0.95, 30.0, 3.0, 2));
        assert_eq!(front.top(2).len(), 2);
        // Canonical order leads with the highest accuracy.
        assert_eq!(front.top(1)[0].vector.accuracy, 0.95);
        assert_eq!(front.top(99).len(), 3);
    }

    #[test]
    fn hypervolume_grows_with_better_points() {
        let reference = [0.0, 100.0, 10.0]; // -accuracy, train, inference
        let mut front = ParetoFront::new();
        front.insert(point(0.5, 50.0, 5.0, 0));
        let hv1 = front.hypervolume(reference);
        assert!(hv1 > 0.0);
        // A non-dominated addition must add volume.
        let v = vector(0.9, 80.0, 8.0);
        let hvi = front.hypervolume_improvement(&v, reference);
        assert!(hvi > 0.0);
        front.insert(point(0.9, 80.0, 8.0, 1));
        let hv2 = front.hypervolume(reference);
        assert!((hv2 - hv1 - hvi).abs() < 1e-9, "{hv2} vs {hv1} + {hvi}");
        // A dominated candidate improves nothing.
        assert_eq!(
            front.hypervolume_improvement(&vector(0.4, 60.0, 6.0), reference),
            0.0
        );
    }

    #[test]
    fn hypervolume_matches_a_hand_computed_box_union() {
        // Two boxes against reference (1, 1, 1):
        // a = (-0.5, 0.5, 0.5) -> box 1.5 x 0.5 x 0.5 ... in cost space the
        // dominated region of a point c is the box [c, ref).
        let mut front = ParetoFront::new();
        front.insert(point(0.5, 0.5, 0.5, 0)); // costs (-0.5, 0.5, 0.5)
        let reference = [1.0, 1.0, 1.0];
        let expected = (1.0f64 - -0.5) * (1.0 - 0.5) * (1.0 - 0.5);
        assert!((front.hypervolume(reference) - expected).abs() < 1e-12);
        // Add a disjoint trade-off and check monotonicity + upper bound.
        front.insert(point(0.8, 0.9, 0.9, 1)); // costs (-0.8, 0.9, 0.9)
        let second = (1.0f64 - -0.8) * (1.0 - 0.9) * (1.0 - 0.9);
        let hv = front.hypervolume(reference);
        assert!(hv > expected);
        assert!(hv <= expected + second + 1e-12);
    }

    #[test]
    fn promotion_layers_peel_fronts_and_park_unvectored_trials() {
        let outcome = |acc: f64, train: f64, inf: f64| {
            TrialOutcome::new(1.0, acc, Seconds::new(train), Joules::new(1.0))
                .with_vector(vector(acc, train, inf))
        };
        let outcomes = vec![
            outcome(0.9, 10.0, 1.0),                                          // layer 0
            outcome(0.8, 20.0, 2.0),                                          // dominated: layer 1
            outcome(0.95, 30.0, 3.0),                                         // trade-off: layer 0
            TrialOutcome::new(2.0, 0.5, Seconds::new(1.0), Joules::new(1.0)), // no vector
            outcome(0.7, 25.0, 2.5),                                          // layer 2
        ];
        let layers = promotion_layers(&outcomes);
        assert_eq!(layers[0], 0);
        assert_eq!(layers[1], 1);
        assert_eq!(layers[2], 0);
        assert_eq!(layers[3], u32::MAX);
        assert_eq!(layers[4], 2);
    }

    #[test]
    fn pareto_tpe_is_seeded_and_concentrates_on_the_front() {
        let space = SearchSpace::new()
            .with("x", crate::space::Domain::float(0.0, 1.0))
            .with("y", crate::space::Domain::float(0.0, 1.0));
        // Two conflicting objectives over x: accuracy wants x -> 1, train
        // cost wants x -> 0; y is pure noise both objectives ignore, so a
        // model-based sampler should learn y's irrelevance.
        let measure = |c: &Config| {
            let x = c.get("x").unwrap();
            vector(x, x * 10.0, 1.0)
        };
        let run = |seed: u64| {
            let mut sampler = ParetoTpeSampler::new(SeedStream::new(seed));
            let mut suggestions = Vec::new();
            for i in 0..40 {
                let c = sampler.suggest(&space, &[]);
                let v = measure(&c);
                let outcome =
                    TrialOutcome::new(1.0, v.accuracy, Seconds::new(1.0), Joules::new(1.0))
                        .with_vector(v);
                sampler.observe(&c, &outcome);
                if i >= 30 {
                    suggestions.push(c);
                }
            }
            suggestions
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same suggestions");
        // Everything on the x axis is Pareto-optimal here, so late
        // suggestions must stay in-domain and vary along x.
        for c in &a {
            assert!(space.validate(c).is_ok());
        }
    }

    #[test]
    fn pareto_tpe_ignores_failed_and_degraded_outcomes() {
        let mut sampler = ParetoTpeSampler::new(SeedStream::new(1));
        let config = Config::new().with("x", 0.5);
        sampler.observe(
            &config,
            &TrialOutcome::failed(
                crate::trial::TrialFailure::Crash,
                Seconds::new(1.0),
                Joules::new(1.0),
            ),
        );
        sampler.observe(
            &config,
            &TrialOutcome::new(1.0, 0.5, Seconds::new(1.0), Joules::new(1.0)),
        );
        assert_eq!(sampler.observations(), 0);
        let vectored = TrialOutcome::new(1.0, 0.5, Seconds::new(1.0), Joules::new(1.0))
            .with_vector(vector(0.5, 1.0, 1.0));
        sampler.observe(&config, &vectored);
        assert_eq!(sampler.observations(), 1);
    }
}
