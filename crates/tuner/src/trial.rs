//! Trial records and tuning history.

use edgetune_util::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

use crate::budget::TrialBudget;
use crate::pareto::ObjectiveVector;
use crate::space::Config;

/// Why a trial was abandoned by the fault-tolerance layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TrialFailure {
    /// The training process crashed and exhausted its retry budget.
    Crash,
    /// The trial exceeded its deadline and was treated as hung.
    Timeout,
    /// The inference side never produced a recommendation and the
    /// degradation ladder had no fallback left.
    InferenceLoss,
}

/// What a trial evaluation reports back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Scheduler score — **lower is better** (objective functions convert
    /// maximisation into minimisation).
    pub score: f64,
    /// Model accuracy reached by the trial.
    pub accuracy: f64,
    /// Wall-clock time the trial consumed.
    pub runtime: Seconds,
    /// Energy the trial consumed.
    pub energy: Joules,
    /// Failure marker set by the fault-tolerance layer when the trial was
    /// abandoned after exhausting its retries. `None` for every healthy
    /// (or naturally infeasible) trial, and omitted from JSON so
    /// fault-free reports are unchanged by its existence.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub failure: Option<TrialFailure>,
    /// The trial's multi-objective coordinates, set only when the study
    /// runs in Pareto mode. `None` in scalar mode and omitted from JSON
    /// so scalar reports are unchanged by its existence.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub vector: Option<ObjectiveVector>,
}

impl TrialOutcome {
    /// Creates an outcome.
    ///
    /// # Panics
    ///
    /// Panics if `score` is NaN (infinite scores are allowed: they mark
    /// failed/infeasible trials).
    #[must_use]
    pub fn new(score: f64, accuracy: f64, runtime: Seconds, energy: Joules) -> Self {
        assert!(!score.is_nan(), "trial score must not be NaN");
        TrialOutcome {
            score,
            accuracy,
            runtime,
            energy,
            failure: None,
            vector: None,
        }
    }

    /// Attaches the trial's objective-space coordinates (Pareto mode).
    #[must_use]
    pub fn with_vector(mut self, vector: ObjectiveVector) -> Self {
        self.vector = Some(vector);
        self
    }

    /// An abandoned trial: infinite penalty score, zero accuracy, and the
    /// (wasted) runtime and energy the attempts consumed.
    #[must_use]
    pub fn failed(failure: TrialFailure, runtime: Seconds, energy: Joules) -> Self {
        TrialOutcome {
            score: f64::INFINITY,
            accuracy: 0.0,
            runtime,
            energy,
            failure: Some(failure),
            vector: None,
        }
    }

    /// True when the fault-tolerance layer abandoned this trial.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.failure.is_some()
    }
}

/// One completed trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Sequential trial identifier (order of completion).
    pub id: u64,
    /// The evaluated configuration.
    pub config: Config,
    /// The budget the trial ran under.
    pub budget: TrialBudget,
    /// The observed outcome.
    pub outcome: TrialOutcome,
}

/// An append-only log of completed trials.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    records: Vec<TrialRecord>,
}

impl History {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        History::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TrialRecord) {
        self.records.push(record);
    }

    /// All records, in completion order.
    #[must_use]
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// Number of completed trials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no trials have completed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with the lowest score across the whole history.
    ///
    /// Beware: raw scores are only comparable *within* one budget level
    /// (a 2-epoch trial trivially has a lower time×accuracy ratio than a
    /// converged one); use [`History::winner`] for the tuning job's
    /// output.
    #[must_use]
    pub fn best(&self) -> Option<&TrialRecord> {
        self.records.iter().min_by(|a, b| {
            a.outcome
                .score
                .partial_cmp(&b.outcome.score)
                .expect("scores are not NaN by construction")
        })
    }

    /// The *winning trial*: the best-scoring record among those evaluated
    /// at the highest budget reached — the final-rung winner a
    /// successive-halving tuner outputs to the user.
    #[must_use]
    pub fn winner(&self) -> Option<&TrialRecord> {
        let max_budget = self
            .records
            .iter()
            .map(|r| r.budget.effective_epochs())
            .fold(f64::NEG_INFINITY, f64::max);
        self.records
            .iter()
            .filter(|r| r.budget.effective_epochs() >= max_budget - 1e-9)
            .min_by(|a, b| {
                a.outcome
                    .score
                    .partial_cmp(&b.outcome.score)
                    .expect("scores are not NaN by construction")
            })
    }

    /// Total wall-clock time across all trials — the *tuning duration* the
    /// paper's figures report (trials run sequentially on the testbed).
    #[must_use]
    pub fn total_runtime(&self) -> Seconds {
        self.records.iter().map(|r| r.outcome.runtime).sum()
    }

    /// Total energy across all trials — the *tuning energy* of the
    /// figures.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.records.iter().map(|r| r.outcome.energy).sum()
    }

    /// `(config, score)` observations for model-based samplers, highest
    /// budget first so the sampler models the most faithful evidence.
    #[must_use]
    pub fn observations(&self) -> Vec<(&Config, f64)> {
        let mut obs: Vec<&TrialRecord> = self.records.iter().collect();
        obs.sort_by(|a, b| {
            b.budget
                .effective_epochs()
                .partial_cmp(&a.budget.effective_epochs())
                .expect("budgets are finite")
        });
        obs.into_iter()
            .map(|r| (&r.config, r.outcome.score))
            .collect()
    }

    /// First trial id (completion index) at which accuracy reached
    /// `target`, if ever — convergence speed in Fig. 12.
    #[must_use]
    pub fn first_reaching_accuracy(&self, target: f64) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.outcome.accuracy >= target)
            .map(|r| r.id)
    }
}

impl Extend<TrialRecord> for History {
    fn extend<T: IntoIterator<Item = TrialRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, score: f64, accuracy: f64, runtime: f64, energy: f64) -> TrialRecord {
        TrialRecord {
            id,
            config: Config::new().with("x", id as f64),
            budget: TrialBudget::new(id as f64 + 1.0, 1.0),
            outcome: TrialOutcome::new(score, accuracy, Seconds::new(runtime), Joules::new(energy)),
        }
    }

    #[test]
    fn best_is_lowest_score() {
        let mut h = History::new();
        h.push(record(0, 5.0, 0.5, 10.0, 100.0));
        h.push(record(1, 2.0, 0.8, 10.0, 100.0));
        h.push(record(2, 9.0, 0.9, 10.0, 100.0));
        assert_eq!(h.best().unwrap().id, 1);
    }

    #[test]
    fn winner_only_considers_the_top_budget() {
        let mut h = History::new();
        // record() gives trial `id` a budget of `id + 1` epochs, so the
        // later trials ran at higher budgets.
        h.push(record(0, 0.1, 0.2, 1.0, 1.0)); // cheap rung, tiny score
        h.push(record(1, 5.0, 0.7, 10.0, 10.0));
        h.push(record(2, 7.0, 0.9, 20.0, 20.0)); // top budget, higher raw score
        assert_eq!(h.best().unwrap().id, 0, "raw best is the cheap trial");
        assert_eq!(h.winner().unwrap().id, 2, "winner comes from the top rung");
        assert!(History::new().winner().is_none());
    }

    #[test]
    fn winner_picks_lowest_score_within_the_top_rung() {
        let mut h = History::new();
        let mut top = |id: u64, score: f64| {
            let mut r = record(id, score, 0.8, 1.0, 1.0);
            r.budget = TrialBudget::new(10.0, 1.0);
            h.push(r);
        };
        top(0, 3.0);
        top(1, 1.0);
        top(2, 2.0);
        assert_eq!(h.winner().unwrap().id, 1);
    }

    #[test]
    fn totals_accumulate() {
        let mut h = History::new();
        h.push(record(0, 1.0, 0.5, 10.0, 100.0));
        h.push(record(1, 1.0, 0.5, 20.0, 300.0));
        assert_eq!(h.total_runtime(), Seconds::new(30.0));
        assert_eq!(h.total_energy(), Joules::new(400.0));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn observations_sorted_by_budget_desc() {
        let mut h = History::new();
        h.push(record(0, 1.0, 0.5, 1.0, 1.0)); // budget 1 epoch
        h.push(record(3, 2.0, 0.5, 1.0, 1.0)); // budget 4 epochs
        h.push(record(1, 3.0, 0.5, 1.0, 1.0)); // budget 2 epochs
        let obs = h.observations();
        assert_eq!(obs.len(), 3);
        assert_eq!(obs[0].1, 2.0, "highest budget first");
    }

    #[test]
    fn first_reaching_accuracy_finds_earliest() {
        let mut h = History::new();
        h.push(record(0, 1.0, 0.3, 1.0, 1.0));
        h.push(record(1, 1.0, 0.85, 1.0, 1.0));
        h.push(record(2, 1.0, 0.9, 1.0, 1.0));
        assert_eq!(h.first_reaching_accuracy(0.8), Some(1));
        assert_eq!(h.first_reaching_accuracy(0.99), None);
    }

    #[test]
    fn empty_history() {
        let h = History::new();
        assert!(h.is_empty());
        assert!(h.best().is_none());
        assert_eq!(h.total_runtime(), Seconds::ZERO);
    }

    #[test]
    fn infinite_score_marks_failed_trials_but_nan_is_rejected() {
        let r = TrialOutcome::new(f64::INFINITY, 0.0, Seconds::ZERO, Joules::ZERO);
        assert!(r.score.is_infinite());
        let caught = std::panic::catch_unwind(|| {
            TrialOutcome::new(f64::NAN, 0.0, Seconds::ZERO, Joules::ZERO)
        });
        assert!(caught.is_err());
    }

    #[test]
    fn failure_marker_is_absent_from_healthy_json() {
        let healthy = TrialOutcome::new(1.0, 0.9, Seconds::new(5.0), Joules::new(2.0));
        assert!(!healthy.is_failed());
        let json = serde_json::to_string(&healthy).unwrap();
        assert!(
            !json.contains("failure"),
            "healthy outcomes must serialize exactly as before: {json}"
        );
        let back: TrialOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(healthy, back);
    }

    #[test]
    fn vector_is_absent_from_scalar_json() {
        let scalar = TrialOutcome::new(1.0, 0.9, Seconds::new(5.0), Joules::new(2.0));
        let json = serde_json::to_string(&scalar).unwrap();
        assert!(
            !json.contains("vector"),
            "scalar outcomes must serialize exactly as before: {json}"
        );
        let vectored = scalar.with_vector(ObjectiveVector::new(0.9, 5.0, 0.1));
        let json = serde_json::to_string(&vectored).unwrap();
        assert!(json.contains("\"vector\""));
        let back: TrialOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(vectored, back);
    }

    #[test]
    fn failed_outcome_carries_penalty_and_marker() {
        let failed =
            TrialOutcome::failed(TrialFailure::Crash, Seconds::new(40.0), Joules::new(9.0));
        assert!(failed.is_failed());
        assert!(failed.score.is_infinite());
        assert_eq!(failed.accuracy, 0.0);
        let json = serde_json::to_string(&failed).unwrap();
        assert!(json.contains("\"failure\":\"crash\""));
        // Non-finite scores serialize as `null` (serde_json), so parse a
        // finite failed outcome to exercise the marker's deserialization.
        let back: TrialOutcome = serde_json::from_str(
            r#"{"score":1e9,"accuracy":0.0,"runtime":40.0,"energy":9.0,"failure":"timeout"}"#,
        )
        .unwrap();
        assert_eq!(back.failure, Some(TrialFailure::Timeout));
    }

    #[test]
    fn extend_appends() {
        let mut h = History::new();
        h.extend(vec![
            record(0, 1.0, 0.1, 1.0, 1.0),
            record(1, 2.0, 0.2, 1.0, 1.0),
        ]);
        assert_eq!(h.len(), 2);
    }
}
