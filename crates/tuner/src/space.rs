//! Search spaces and configurations.
//!
//! A [`SearchSpace`] maps parameter names to [`Domain`]s; a [`Config`] is
//! one concrete assignment. All values are `f64` (integers and categorical
//! choices are represented exactly — every supported value fits a double),
//! which keeps the sampler machinery uniform across parameter kinds.

use std::collections::BTreeMap;
use std::fmt;

use edgetune_util::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The domain of one tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// An integer range `lo..=hi`; `log` samples uniformly in log space
    /// (e.g. batch sizes).
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Sample in log space.
        log: bool,
    },
    /// A continuous range `lo..=hi`; `log` samples uniformly in log space
    /// (e.g. learning rates).
    Float {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
        /// Sample in log space.
        log: bool,
    },
    /// An explicit finite set of values (e.g. ResNet depths {18,34,50}).
    Choice(Vec<f64>),
}

impl Domain {
    /// An integer range domain.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn int(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty int domain {lo}..={hi}");
        Domain::Int { lo, hi, log: false }
    }

    /// A log-scaled integer range domain (both bounds must be positive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo <= 0`.
    #[must_use]
    pub fn int_log(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty int domain {lo}..={hi}");
        assert!(lo > 0, "log domain requires positive bounds");
        Domain::Int { lo, hi, log: true }
    }

    /// A continuous domain.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[must_use]
    pub fn float(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad float domain {lo}..={hi}"
        );
        Domain::Float { lo, hi, log: false }
    }

    /// A log-scaled continuous domain (both bounds must be positive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo <= 0`.
    #[must_use]
    pub fn float_log(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad float domain {lo}..={hi}"
        );
        assert!(lo > 0.0, "log domain requires positive bounds");
        Domain::Float { lo, hi, log: true }
    }

    /// A categorical domain over explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a non-finite value.
    #[must_use]
    pub fn choice(values: impl Into<Vec<f64>>) -> Self {
        let values = values.into();
        assert!(!values.is_empty(), "choice domain must not be empty");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "choice values must be finite"
        );
        Domain::Choice(values)
    }

    /// Whether `value` lies inside the domain.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        match self {
            Domain::Int { lo, hi, .. } => {
                value.fract() == 0.0 && value >= *lo as f64 && value <= *hi as f64
            }
            Domain::Float { lo, hi, .. } => value >= *lo && value <= *hi,
            Domain::Choice(values) => values.iter().any(|v| v == &value),
        }
    }

    /// Draws a uniform sample (in linear or log space as configured).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Domain::Int { lo, hi, log } => {
                if *log {
                    let x = rng.gen_range((*lo as f64).ln()..=(*hi as f64).ln());
                    x.exp().round().clamp(*lo as f64, *hi as f64)
                } else {
                    rng.gen_range(*lo..=*hi) as f64
                }
            }
            Domain::Float { lo, hi, log } => {
                if *log {
                    // exp(ln(x)) can land one ULP outside the domain.
                    rng.gen_range(lo.ln()..=hi.ln()).exp().clamp(*lo, *hi)
                } else if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            Domain::Choice(values) => values[rng.gen_range(0..values.len())],
        }
    }

    /// A finite grid over the domain with at most `resolution` points
    /// (choices enumerate exactly; ranges are evenly spaced, in log space
    /// when configured).
    #[must_use]
    pub fn grid(&self, resolution: usize) -> Vec<f64> {
        let resolution = resolution.max(1);
        match self {
            Domain::Choice(values) => values.clone(),
            Domain::Int { lo, hi, log } => {
                let count = ((hi - lo + 1) as usize).min(resolution);
                let points = spaced(*lo as f64, *hi as f64, count, *log);
                let mut ints: Vec<f64> = points.into_iter().map(f64::round).collect();
                ints.dedup();
                ints
            }
            Domain::Float { lo, hi, log } => spaced(*lo, *hi, resolution, *log)
                .into_iter()
                // Log-space interpolation can land one ULP outside.
                .map(|p| p.clamp(*lo, *hi))
                .collect(),
        }
    }

    /// Clamps/snaps an arbitrary value back into the domain (nearest
    /// choice for categorical domains).
    #[must_use]
    pub fn clamp(&self, value: f64) -> f64 {
        match self {
            Domain::Int { lo, hi, .. } => value.round().clamp(*lo as f64, *hi as f64),
            Domain::Float { lo, hi, .. } => value.clamp(*lo, *hi),
            Domain::Choice(values) => *values
                .iter()
                .min_by(|a, b| {
                    (*a - value)
                        .abs()
                        .partial_cmp(&(*b - value).abs())
                        .expect("finite by construction")
                })
                .expect("non-empty by construction"),
        }
    }
}

fn spaced(lo: f64, hi: f64, count: usize, log: bool) -> Vec<f64> {
    if count == 1 || lo == hi {
        return vec![(lo + hi) / 2.0];
    }
    (0..count)
        .map(|i| {
            let t = i as f64 / (count - 1) as f64;
            if log {
                (lo.ln() + t * (hi.ln() - lo.ln())).exp()
            } else {
                lo + t * (hi - lo)
            }
        })
        .collect()
}

/// A named collection of parameter domains.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchSpace {
    params: Vec<(String, Domain)>,
}

impl SearchSpace {
    /// An empty space.
    #[must_use]
    pub fn new() -> Self {
        SearchSpace::default()
    }

    /// Adds a parameter (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the name is already present.
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, domain: Domain) -> Self {
        let name = name.into();
        assert!(
            !self.params.iter().any(|(n, _)| n == &name),
            "duplicate parameter '{name}'"
        );
        self.params.push((name, domain));
        self
    }

    /// Number of parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the space has no parameters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates `(name, domain)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Domain)> {
        self.params.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// Looks a domain up by name.
    #[must_use]
    pub fn domain(&self, name: &str) -> Option<&Domain> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Draws a uniform random configuration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Config {
        let mut config = Config::new();
        for (name, domain) in &self.params {
            config.set(name, domain.sample(rng));
        }
        config
    }

    /// Full Cartesian grid with per-dimension `resolution`.
    #[must_use]
    pub fn grid(&self, resolution: usize) -> Vec<Config> {
        let mut configs = vec![Config::new()];
        for (name, domain) in &self.params {
            let values = domain.grid(resolution);
            let mut next = Vec::with_capacity(configs.len() * values.len());
            for config in &configs {
                for &v in &values {
                    let mut c = config.clone();
                    c.set(name, v);
                    next.push(c);
                }
            }
            configs = next;
        }
        configs
    }

    /// Validates that `config` assigns an in-domain value to every
    /// parameter (extraneous keys are rejected too).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] describing the first violation.
    pub fn validate(&self, config: &Config) -> Result<()> {
        for (name, domain) in &self.params {
            let value = config
                .get(name)
                .ok_or_else(|| Error::invalid_config(format!("missing parameter '{name}'")))?;
            if !domain.contains(value) {
                return Err(Error::invalid_config(format!(
                    "value {value} outside domain of '{name}'"
                )));
            }
        }
        for key in config.keys() {
            if self.domain(key).is_none() {
                return Err(Error::invalid_config(format!("unknown parameter '{key}'")));
            }
        }
        Ok(())
    }
}

/// One concrete parameter assignment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Config {
    values: BTreeMap<String, f64>,
}

impl Config {
    /// An empty configuration.
    #[must_use]
    pub fn new() -> Self {
        Config::default()
    }

    /// Sets a parameter value (builder-style variant: [`Config::with`]).
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        self.values.insert(name.into(), value);
    }

    /// Builder-style [`Config::set`].
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Reads a parameter value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Reads a parameter, erroring when absent.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] when the parameter is not set.
    pub fn require(&self, name: &str) -> Result<f64> {
        self.get(name)
            .ok_or_else(|| Error::not_found(format!("parameter '{name}'")))
    }

    /// Parameter names in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Number of assigned parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A canonical string key (sorted `name=value` pairs) for caching and
    /// deduplication.
    #[must_use]
    pub fn key(&self) -> String {
        let parts: Vec<String> = self
            .values
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        parts.join(",")
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.key())
    }
}

impl FromIterator<(String, f64)> for Config {
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        Config {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgetune_util::rng::SeedStream;

    fn rng() -> rand::rngs::StdRng {
        SeedStream::new(9).rng("space")
    }

    #[test]
    fn int_domain_samples_in_range() {
        let d = Domain::int(1, 8);
        let mut r = rng();
        for _ in 0..200 {
            let v = d.sample(&mut r);
            assert!(d.contains(v), "{v}");
            assert_eq!(v.fract(), 0.0);
        }
    }

    #[test]
    fn log_int_domain_prefers_small_values() {
        let d = Domain::int_log(1, 1024);
        let mut r = rng();
        let below_32 = (0..2000).filter(|_| d.sample(&mut r) <= 32.0).count();
        assert!(
            below_32 > 800,
            "log sampling should favour small values: {below_32}/2000"
        );
    }

    #[test]
    fn float_log_domain_in_range() {
        let d = Domain::float_log(1e-4, 1.0);
        let mut r = rng();
        for _ in 0..100 {
            let v = d.sample(&mut r);
            assert!((1e-4..=1.0).contains(&v));
        }
    }

    #[test]
    fn choice_domain_membership() {
        let d = Domain::choice(vec![18.0, 34.0, 50.0]);
        assert!(d.contains(34.0));
        assert!(!d.contains(33.0));
        let mut r = rng();
        for _ in 0..50 {
            assert!(d.contains(d.sample(&mut r)));
        }
    }

    #[test]
    fn grids_enumerate_and_space() {
        assert_eq!(Domain::choice(vec![1.0, 2.0]).grid(10), vec![1.0, 2.0]);
        let g = Domain::int(1, 4).grid(10);
        assert_eq!(g, vec![1.0, 2.0, 3.0, 4.0]);
        let f = Domain::float(0.0, 1.0).grid(3);
        assert_eq!(f, vec![0.0, 0.5, 1.0]);
        let lg = Domain::float_log(1.0, 100.0).grid(3);
        assert!((lg[1] - 10.0).abs() < 1e-9, "{lg:?}");
    }

    #[test]
    fn clamp_snaps_to_domain() {
        assert_eq!(Domain::int(1, 8).clamp(99.0), 8.0);
        assert_eq!(Domain::int(1, 8).clamp(3.4), 3.0);
        assert_eq!(Domain::float(0.0, 1.0).clamp(-2.0), 0.0);
        assert_eq!(Domain::choice(vec![18.0, 34.0, 50.0]).clamp(30.0), 34.0);
    }

    #[test]
    fn space_sampling_and_validation() {
        let space = SearchSpace::new()
            .with("layers", Domain::choice(vec![18.0, 34.0, 50.0]))
            .with("batch", Domain::int_log(32, 512));
        let mut r = rng();
        let c = space.sample(&mut r);
        assert!(space.validate(&c).is_ok());
        let bad = Config::new().with("layers", 18.0).with("batch", 7.0);
        assert!(space.validate(&bad).is_err());
        let missing = Config::new().with("layers", 18.0);
        assert!(space.validate(&missing).is_err());
        let extra = c.clone().with("bogus", 1.0);
        assert!(space.validate(&extra).is_err());
    }

    #[test]
    fn cartesian_grid_size() {
        let space = SearchSpace::new()
            .with("a", Domain::choice(vec![1.0, 2.0, 3.0]))
            .with("b", Domain::choice(vec![10.0, 20.0]));
        let grid = space.grid(10);
        assert_eq!(grid.len(), 6);
        // All combinations distinct.
        let mut keys: Vec<String> = grid.iter().map(Config::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn config_key_is_canonical() {
        let a = Config::new().with("b", 2.0).with("a", 1.0);
        let b = Config::new().with("a", 1.0).with("b", 2.0);
        assert_eq!(a.key(), b.key());
        assert_eq!(a.key(), "a=1,b=2");
        assert_eq!(a.to_string(), "{a=1,b=2}");
    }

    #[test]
    fn config_require_errors_on_missing() {
        let c = Config::new().with("x", 1.0);
        assert_eq!(c.require("x").unwrap(), 1.0);
        assert!(c.require("y").is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_parameter_rejected() {
        let _ = SearchSpace::new()
            .with("a", Domain::int(0, 1))
            .with("a", Domain::int(0, 1));
    }

    #[test]
    #[should_panic(expected = "empty int domain")]
    fn empty_domain_rejected() {
        let _ = Domain::int(5, 1);
    }
}
