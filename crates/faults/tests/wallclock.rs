//! Wall-clock behaviour of [`Supervisor`] and [`Deadline`].
//!
//! The unit tests in `retry.rs` pin the policy arithmetic on the
//! virtual clock; these tests run the *same* policy objects against
//! real host time — short real sleeps, a real hung thread — because the
//! process shard fabric supervises its workers in the wall-clock
//! domain. Durations are kept generous relative to scheduler jitter so
//! the tests stay honest on loaded CI machines.

use std::time::Duration;

use edgetune_faults::{Deadline, RetryPolicy, Supervisor};
use edgetune_runtime::WallClock;
use edgetune_util::rng::SeedStream;
use edgetune_util::units::Seconds;

#[test]
fn deadline_fires_under_real_time() {
    let deadline = Deadline::new(Seconds::new(0.02));
    let clock = WallClock::new();
    let start = clock.now();
    assert!(
        !deadline.exceeded_since(&clock, start),
        "a 20 ms deadline cannot already be spent"
    );
    std::thread::sleep(Duration::from_millis(60));
    assert!(deadline.exceeded_since(&clock, start));

    // A generous limit is untouched by the same wait.
    assert!(!Deadline::new(Seconds::new(60.0)).exceeded_since(&clock, start));
}

#[test]
fn supervised_retry_loop_recovers_in_real_time() {
    // Fail twice, succeed on the third attempt, sleeping the policy's
    // real jittered backoff between attempts — the exact loop shape the
    // process fabric runs per shard.
    let supervisor = Supervisor::new(RetryPolicy {
        max_attempts: 3,
        base_delay: Seconds::new(0.01),
        multiplier: 2.0,
        max_delay: Seconds::new(0.05),
        jitter: 0.5,
    });
    let seed = SeedStream::new(3);
    let clock = WallClock::new();
    let start = clock.now();

    let mut attempt = 1u32;
    let mut slept = Seconds::ZERO;
    loop {
        let failed = attempt < 3;
        if !failed {
            break;
        }
        assert!(
            !supervisor.give_up(attempt),
            "budget spent before the flake cleared"
        );
        let backoff = supervisor.backoff(attempt, seed, u64::from(attempt));
        std::thread::sleep(Duration::from_secs_f64(backoff.value()));
        slept += backoff;
        attempt += 1;
    }

    assert_eq!(attempt, 3);
    // Real elapsed time covers at least the backoff actually slept
    // (jitter only ever shortens delays, never stretches them).
    assert!(clock.now() - start >= slept);
    assert!(slept.value() > 0.0, "backoff schedule never slept");
}

#[test]
fn hung_work_is_detected_while_it_is_still_hung() {
    // A worker that stops responding for 500 ms, watched by a 40 ms
    // heartbeat deadline polled on the wall clock: detection must come
    // long before the hang resolves.
    let hung = std::thread::spawn(|| std::thread::sleep(Duration::from_millis(500)));
    let supervisor =
        Supervisor::new(RetryPolicy::no_retries()).with_deadline(Deadline::new(Seconds::new(0.04)));
    let clock = WallClock::new();
    let start = clock.now();
    while !supervisor.deadline_exceeded_since(&clock, start) {
        std::thread::sleep(Duration::from_millis(5));
    }
    let detected_after = clock.now() - start;
    assert!(
        detected_after.value() < 0.5,
        "deadline ({detected_after:?}) fired only after the hang resolved"
    );
    assert!(
        !hung.is_finished(),
        "the hung worker returned before the deadline tripped"
    );
    hung.join().unwrap();
}

#[test]
fn wall_clock_ignores_virtual_advances() {
    use edgetune_runtime::Clock;
    // The fabric hands policies a clock it cannot steer: model-cost
    // `advance` calls must not consume real deadline budget.
    let clock = WallClock::new();
    let start = Clock::now(&clock);
    clock.advance(Seconds::new(1e6));
    let deadline = Deadline::new(Seconds::new(30.0));
    assert!(!deadline.exceeded_since(&clock, start));
}
