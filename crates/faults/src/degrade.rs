//! The degradation ladder: ordered fallbacks for a failing dependency.

use serde::{Deserialize, Serialize};

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Fallback {
    /// Resubmit the request under the retry policy.
    Retry,
    /// Serve the last known cache entry for the key, even if stale.
    StaleCache,
    /// Fall back to the device-model default recommendation (batch 1,
    /// all cores, maximum frequency).
    DeviceDefault,
    /// Give up on the trial and record it with a penalty score so the
    /// scheduler routes budget elsewhere.
    SkipWithPenalty,
    /// Abandon process isolation and run the work in-process on the
    /// supervisor's own thread — the shard fabric's terminal rung when a
    /// worker process exhausts its retry budget.
    InProcess,
}

impl Fallback {
    /// Stable snake_case label for this rung, used as the event name
    /// when degradation steps are recorded on a trace.
    #[must_use]
    pub fn trace_label(self) -> &'static str {
        match self {
            Fallback::Retry => "retry",
            Fallback::StaleCache => "stale_cache",
            Fallback::DeviceDefault => "device_default",
            Fallback::SkipWithPenalty => "skip_with_penalty",
            Fallback::InProcess => "in_process",
        }
    }
}

/// The ordered fallbacks tried when a dependency stops answering.
///
/// The default ladder is retry → stale cache entry → device-model default
/// recommendation → skip the trial with a penalty score, mirroring how an
/// operator would want an unattended tuning job to degrade: prefer any
/// real answer over a guess, and any guess over poisoning the study.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationLadder {
    steps: Vec<Fallback>,
}

impl Default for DegradationLadder {
    fn default() -> Self {
        DegradationLadder {
            steps: vec![
                Fallback::Retry,
                Fallback::StaleCache,
                Fallback::DeviceDefault,
                Fallback::SkipWithPenalty,
            ],
        }
    }
}

impl DegradationLadder {
    /// A custom ladder; rungs are tried in the order given.
    #[must_use]
    pub fn new(steps: Vec<Fallback>) -> Self {
        DegradationLadder { steps }
    }

    /// The rungs, most-preferred first.
    #[must_use]
    pub fn steps(&self) -> &[Fallback] {
        &self.steps
    }
}

/// Counters for every fault observed and every ladder rung exercised.
///
/// All zeros in a fault-free run; serialized into the chaos sections of
/// the tuning report so degradation is observable, not silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegradationStats {
    /// Injected trial crashes observed (each failed attempt counts).
    pub trial_crashes: u64,
    /// Injected trial stragglers observed.
    pub trial_stragglers: u64,
    /// Trials that hit their deadline and were treated as hung.
    pub trial_timeouts: u64,
    /// Trial retries performed after crashes/timeouts.
    pub trial_retries: u64,
    /// Trials abandoned with a penalty score after exhausting retries.
    pub trials_skipped: u64,
    /// Inference requests whose reply was lost (worker death or timeout).
    pub worker_losses: u64,
    /// Inference requests resubmitted by the ladder's retry rung.
    pub inference_retries: u64,
    /// Trials served from a stale cache entry.
    pub stale_cache_served: u64,
    /// Trials served the device-model default recommendation.
    pub default_recommendations: u64,
}

impl DegradationStats {
    /// True when nothing was ever injected or degraded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == DegradationStats::default()
    }

    /// The counters as stable (name, value) pairs, in field order —
    /// the shape trace counter events and report tooling consume.
    #[must_use]
    pub fn as_counters(&self) -> Vec<(String, f64)> {
        vec![
            ("trial_crashes".to_string(), self.trial_crashes as f64),
            ("trial_stragglers".to_string(), self.trial_stragglers as f64),
            ("trial_timeouts".to_string(), self.trial_timeouts as f64),
            ("trial_retries".to_string(), self.trial_retries as f64),
            ("trials_skipped".to_string(), self.trials_skipped as f64),
            ("worker_losses".to_string(), self.worker_losses as f64),
            (
                "inference_retries".to_string(),
                self.inference_retries as f64,
            ),
            (
                "stale_cache_served".to_string(),
                self.stale_cache_served as f64,
            ),
            (
                "default_recommendations".to_string(),
                self.default_recommendations as f64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_prefers_answers_over_guesses() {
        let ladder = DegradationLadder::default();
        assert_eq!(
            ladder.steps(),
            [
                Fallback::Retry,
                Fallback::StaleCache,
                Fallback::DeviceDefault,
                Fallback::SkipWithPenalty,
            ]
        );
    }

    #[test]
    fn stats_start_empty_and_notice_any_counter() {
        let mut stats = DegradationStats::default();
        assert!(stats.is_empty());
        stats.stale_cache_served += 1;
        assert!(!stats.is_empty());
    }

    #[test]
    fn trace_labels_match_the_serde_names() {
        for rung in [
            Fallback::Retry,
            Fallback::StaleCache,
            Fallback::DeviceDefault,
            Fallback::SkipWithPenalty,
        ] {
            let json = serde_json::to_string(&rung).unwrap();
            assert_eq!(json, format!("\"{}\"", rung.trace_label()));
        }
    }

    #[test]
    fn counters_cover_every_field() {
        let stats = DegradationStats {
            trial_crashes: 1,
            trial_stragglers: 2,
            trial_timeouts: 3,
            trial_retries: 4,
            trials_skipped: 5,
            worker_losses: 6,
            inference_retries: 7,
            stale_cache_served: 8,
            default_recommendations: 9,
        };
        let counters = stats.as_counters();
        assert_eq!(counters.len(), 9);
        let total: f64 = counters.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 45.0);
        assert_eq!(counters[0], ("trial_crashes".to_string(), 1.0));
        assert_eq!(counters[8].0, "default_recommendations");
    }

    #[test]
    fn ladder_round_trips_through_json() {
        let ladder = DegradationLadder::default();
        let json = serde_json::to_string(&ladder).unwrap();
        let back: DegradationLadder = serde_json::from_str(&json).unwrap();
        assert_eq!(ladder, back);
    }
}
