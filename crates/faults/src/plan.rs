//! Fault plans and the seeded injector that executes them.

use edgetune_util::rng::SeedStream;
use edgetune_util::units::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Default straggler slowdown factor (co-location interference roughly
/// quadruples a trial's runtime, in line with the multi-tenancy studies).
const DEFAULT_STRAGGLER_SLOWDOWN: f64 = 4.0;
/// Default transient device outage duration.
const DEFAULT_OUTAGE_S: f64 = 30.0;

/// Per-component fault rates for one chaos run.
///
/// Every rate is a per-event probability in `[0, 1]`: `trial_crash` is
/// drawn once per training trial, `worker_panic` and `device_outage` once
/// per inference request (or served batch), `retune_failure` once per
/// drift-triggered re-tune, `cache_torn_write` once per cache save. The
/// default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultPlan {
    /// Probability that a training trial crashes mid-epoch.
    pub trial_crash: f64,
    /// Probability that a training trial straggles (runs slowed by
    /// `straggler_slowdown` under co-location interference).
    pub trial_straggler: f64,
    /// Runtime/energy multiplier applied to straggling trials.
    pub straggler_slowdown: f64,
    /// Probability that an inference worker dies while holding a request
    /// (the requester sees a dropped reply channel).
    pub worker_panic: f64,
    /// Probability that the emulated device is transiently unavailable
    /// for one sweep or serving batch.
    pub device_outage: f64,
    /// Duration of one transient device outage, in seconds.
    pub outage_duration_s: f64,
    /// Probability that a cache save is torn mid-write (only exercised by
    /// the chaos CLI; the atomic save path itself can never tear).
    pub cache_torn_write: f64,
    /// Probability that an online re-tune attempt fails outright.
    pub retune_failure: f64,
}

impl FaultPlan {
    /// The empty plan: nothing is ever injected and no RNG is consumed.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no fault can ever fire (every rate is zero); injectors
    /// built from such a plan are strict no-ops.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.trial_crash <= 0.0
            && self.trial_straggler <= 0.0
            && self.worker_panic <= 0.0
            && self.device_outage <= 0.0
            && self.cache_torn_write <= 0.0
            && self.retune_failure <= 0.0
    }

    /// A plan applying the same rate to every fault kind, with default
    /// straggler slowdown and outage duration.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    #[must_use]
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        FaultPlan {
            trial_crash: rate,
            trial_straggler: rate,
            straggler_slowdown: DEFAULT_STRAGGLER_SLOWDOWN,
            worker_panic: rate,
            device_outage: rate,
            outage_duration_s: DEFAULT_OUTAGE_S,
            cache_torn_write: rate,
            retune_failure: rate,
        }
    }

    /// Sets the trial crash rate.
    #[must_use]
    pub fn with_trial_crash(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        self.trial_crash = rate;
        self
    }

    /// Sets the trial straggler rate (and a default slowdown when none is
    /// configured yet).
    #[must_use]
    pub fn with_trial_straggler(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        self.trial_straggler = rate;
        if self.straggler_slowdown <= 1.0 {
            self.straggler_slowdown = DEFAULT_STRAGGLER_SLOWDOWN;
        }
        self
    }

    /// Sets the inference-worker panic rate.
    #[must_use]
    pub fn with_worker_panic(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        self.worker_panic = rate;
        self
    }

    /// Sets the transient device-outage rate (and a default duration when
    /// none is configured yet).
    #[must_use]
    pub fn with_device_outage(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        self.device_outage = rate;
        if self.outage_duration_s <= 0.0 {
            self.outage_duration_s = DEFAULT_OUTAGE_S;
        }
        self
    }

    /// Sets the torn-cache-write rate.
    #[must_use]
    pub fn with_cache_torn_write(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        self.cache_torn_write = rate;
        self
    }

    /// Sets the re-tune failure rate.
    #[must_use]
    pub fn with_retune_failure(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        self.retune_failure = rate;
        self
    }
}

/// A fault injected into one training trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrialFault {
    /// The trial process dies mid-epoch; setup time and part of the first
    /// epoch are paid, nothing is learned.
    Crash,
    /// Co-location interference slows the trial by the given factor.
    Straggle {
        /// Runtime/energy multiplier (> 1).
        slowdown: f64,
    },
}

/// Turns a [`FaultPlan`] into concrete, reproducible decisions.
///
/// Every decision draws from `seed.rng_indexed(label, index)` where
/// `index` is a stable counter supplied by the caller (trial number,
/// request sequence), so decisions are independent of thread interleaving
/// and of each other: skipping one draw never shifts another. When the
/// plan [`is none`](FaultPlan::is_none) — or an individual rate is zero —
/// the corresponding method returns without touching any RNG.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: SeedStream,
}

impl FaultInjector {
    /// Builds an injector executing `plan` with decisions derived from
    /// `seed`.
    #[must_use]
    pub fn new(plan: FaultPlan, seed: SeedStream) -> Self {
        FaultInjector { plan, seed }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when this injector can never fire.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.plan.is_none()
    }

    fn draw(&self, label: &str, index: u64) -> f64 {
        self.seed.rng_indexed(label, index).gen::<f64>()
    }

    /// Decides the fate of training trial number `trial` (a monotone
    /// counter of `run_trial` calls, including retries). Crash and
    /// straggle are mutually exclusive; crash wins the shared draw.
    #[must_use]
    pub fn trial_fault(&self, trial: u64) -> Option<TrialFault> {
        if self.plan.trial_crash <= 0.0 && self.plan.trial_straggler <= 0.0 {
            return None;
        }
        let u = self.draw("trial-fault", trial);
        if u < self.plan.trial_crash {
            return Some(TrialFault::Crash);
        }
        if u < self.plan.trial_crash + self.plan.trial_straggler {
            return Some(TrialFault::Straggle {
                slowdown: self.plan.straggler_slowdown.max(1.0),
            });
        }
        None
    }

    /// Whether the worker handling inference request `request` dies
    /// mid-flight.
    #[must_use]
    pub fn worker_panic(&self, request: u64) -> bool {
        self.plan.worker_panic > 0.0 && self.draw("worker-panic", request) < self.plan.worker_panic
    }

    /// Whether event `index` (an inference sweep or a serving batch) hits
    /// a transient device outage, and for how long.
    #[must_use]
    pub fn device_outage(&self, index: u64) -> Option<Seconds> {
        if self.plan.device_outage <= 0.0 {
            return None;
        }
        (self.draw("device-outage", index) < self.plan.device_outage)
            .then(|| Seconds::new(self.plan.outage_duration_s.max(0.0)))
    }

    /// Whether cache save number `save` is torn mid-write.
    #[must_use]
    pub fn torn_write(&self, save: u64) -> bool {
        self.plan.cache_torn_write > 0.0
            && self.draw("torn-write", save) < self.plan.cache_torn_write
    }

    /// Whether re-tune attempt number `attempt` fails outright.
    #[must_use]
    pub fn retune_failure(&self, attempt: u64) -> bool {
        self.plan.retune_failure > 0.0
            && self.draw("retune-failure", attempt) < self.plan.retune_failure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert!(!FaultPlan::uniform(0.5).is_none());
        assert!(FaultPlan::uniform(0.0).is_none());
    }

    #[test]
    fn none_injector_never_fires() {
        let injector = FaultInjector::new(FaultPlan::none(), SeedStream::new(1));
        for i in 0..100 {
            assert_eq!(injector.trial_fault(i), None);
            assert!(!injector.worker_panic(i));
            assert_eq!(injector.device_outage(i), None);
            assert!(!injector.torn_write(i));
            assert!(!injector.retune_failure(i));
        }
    }

    #[test]
    fn certain_rates_always_fire() {
        let injector = FaultInjector::new(
            FaultPlan::uniform(1.0).with_trial_straggler(0.0),
            SeedStream::new(2),
        );
        for i in 0..20 {
            assert_eq!(injector.trial_fault(i), Some(TrialFault::Crash));
            assert!(injector.worker_panic(i));
            assert!(injector.device_outage(i).is_some());
            assert!(injector.torn_write(i));
            assert!(injector.retune_failure(i));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_index_keyed() {
        let a = FaultInjector::new(FaultPlan::uniform(0.3), SeedStream::new(7));
        let b = FaultInjector::new(FaultPlan::uniform(0.3), SeedStream::new(7));
        let faults: Vec<_> = (0..200).map(|i| a.trial_fault(i)).collect();
        // Same seed, same plan: identical decisions, in any query order.
        for i in (0..200).rev() {
            assert_eq!(b.trial_fault(i), faults[usize::try_from(i).unwrap()]);
        }
        // A moderate rate fires sometimes but not always.
        assert!(faults.iter().any(Option::is_some));
        assert!(faults.iter().any(Option::is_none));
    }

    #[test]
    fn straggle_carries_the_configured_slowdown() {
        let plan = FaultPlan {
            trial_straggler: 1.0,
            straggler_slowdown: 2.5,
            ..FaultPlan::none()
        };
        let injector = FaultInjector::new(plan, SeedStream::new(3));
        assert_eq!(
            injector.trial_fault(0),
            Some(TrialFault::Straggle { slowdown: 2.5 })
        );
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::uniform(0.25);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Missing fields default to zero (forward compatibility).
        let sparse: FaultPlan = serde_json::from_str(r#"{"trial_crash":0.1}"#).unwrap();
        assert!((sparse.trial_crash - 0.1).abs() < 1e-12);
        assert!(sparse.worker_panic.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fault rate must be in [0, 1]")]
    fn out_of_range_rate_panics() {
        let _ = FaultPlan::uniform(1.5);
    }
}
