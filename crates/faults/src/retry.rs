//! Retry, backoff, and deadline policies.
//!
//! Deadlines live in the workspace's unified time domain: callers either
//! pass an elapsed duration they tracked themselves
//! ([`Deadline::exceeded`]) or hand over the [`Clock`] they run on plus
//! the operation's start time ([`Deadline::exceeded_since`]). Under a
//! virtual clock both forms are deterministic; under a wall clock they
//! measure real time — the policy code is identical either way.

use edgetune_runtime::Clock;
use edgetune_util::rng::SeedStream;
use edgetune_util::units::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential backoff with deterministic jitter, capped.
///
/// Attempt numbers are 1-based: attempt 1 is the first try, so the first
/// *retry* (attempt 2) waits roughly `base_delay`, the next one
/// `base_delay * multiplier`, and so on up to `max_delay`. Jitter only
/// ever shortens a delay (`delay = base * (1 - jitter * u)`, `u ∈ [0,1)`),
/// so every delay is bounded by the cap and the jitter-free schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (so `3` = two retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Seconds,
    /// Growth factor between consecutive retries.
    pub multiplier: f64,
    /// Hard cap on any single delay.
    pub max_delay: Seconds,
    /// Jitter fraction in `[0, 1]`: how much of each delay may be shaved
    /// off to decorrelate retry storms.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Seconds::new(1.0),
            multiplier: 2.0,
            max_delay: Seconds::new(30.0),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, immediate give-up).
    #[must_use]
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// True when `attempt` (1-based) exhausted the budget.
    #[must_use]
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.max_attempts
    }

    /// The jitter-free delay after `attempt` failures: monotone
    /// nondecreasing in the attempt number and saturating at
    /// [`max_delay`](RetryPolicy::max_delay).
    #[must_use]
    pub fn base_delay_for(&self, attempt: u32) -> Seconds {
        let exponent = f64::from(attempt.saturating_sub(1));
        let raw = self.base_delay.value() * self.multiplier.max(1.0).powf(exponent);
        Seconds::new(raw.min(self.max_delay.value()).max(0.0))
    }

    /// The jittered delay after `attempt` failures. Deterministic per
    /// `(seed, draw, attempt)` — `draw` must be a caller-maintained
    /// counter unique to the operation being retried — and always within
    /// `[0, base_delay_for(attempt)]`, hence within the cap.
    #[must_use]
    pub fn delay(&self, attempt: u32, seed: SeedStream, draw: u64) -> Seconds {
        let base = self.base_delay_for(attempt);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter <= 0.0 {
            return base;
        }
        let u = seed
            .child_indexed("backoff", draw)
            .rng_indexed("jitter", u64::from(attempt))
            .gen::<f64>();
        Seconds::new(base.value() * (1.0 - jitter * u))
    }
}

/// A wall-clock budget for one supervised operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deadline {
    /// The elapsed-time limit.
    pub limit: Seconds,
}

impl Deadline {
    /// A deadline of `limit` seconds.
    #[must_use]
    pub fn new(limit: Seconds) -> Self {
        Deadline { limit }
    }

    /// True once `elapsed` passed the limit.
    #[must_use]
    pub fn exceeded(&self, elapsed: Seconds) -> bool {
        elapsed > self.limit
    }

    /// True once `clock` has moved past `start + limit` — the
    /// clock-domain form of [`Deadline::exceeded`] for callers that track
    /// an operation's start time on a shared [`Clock`] instead of
    /// accumulating elapsed time themselves.
    #[must_use]
    pub fn exceeded_since(&self, clock: &dyn Clock, start: Seconds) -> bool {
        self.exceeded(clock.now() - start)
    }
}

/// Retry + deadline policy for one supervised component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Supervisor {
    /// Retry/backoff schedule.
    pub retry: RetryPolicy,
    /// Optional per-operation deadline (a trial running longer than this
    /// is treated as hung and failed).
    pub deadline: Option<Deadline>,
}

impl Supervisor {
    /// A supervisor with the given retry policy and no deadline.
    #[must_use]
    pub fn new(retry: RetryPolicy) -> Self {
        Supervisor {
            retry,
            deadline: None,
        }
    }

    /// Adds a per-operation deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// True when `attempt` (1-based) exhausted the retry budget.
    #[must_use]
    pub fn give_up(&self, attempt: u32) -> bool {
        self.retry.exhausted(attempt)
    }

    /// The backoff to wait after `attempt` failures (see
    /// [`RetryPolicy::delay`]).
    #[must_use]
    pub fn backoff(&self, attempt: u32, seed: SeedStream, draw: u64) -> Seconds {
        self.retry.delay(attempt, seed, draw)
    }

    /// True once `elapsed` passed the configured deadline, if any.
    #[must_use]
    pub fn deadline_exceeded(&self, elapsed: Seconds) -> bool {
        self.deadline.is_some_and(|d| d.exceeded(elapsed))
    }

    /// True once `clock` moved past `start` + the configured deadline, if
    /// any (see [`Deadline::exceeded_since`]).
    #[must_use]
    pub fn deadline_exceeded_since(&self, clock: &dyn Clock, start: Seconds) -> bool {
        self.deadline
            .is_some_and(|d| d.exceeded_since(clock, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_delays_grow_and_saturate() {
        let policy = RetryPolicy::default();
        let mut previous = Seconds::ZERO;
        for attempt in 1..=12 {
            let delay = policy.base_delay_for(attempt);
            assert!(delay >= previous, "schedule must be monotone");
            assert!(delay <= policy.max_delay, "schedule must respect the cap");
            previous = delay;
        }
        assert_eq!(policy.base_delay_for(12), policy.max_delay);
    }

    #[test]
    fn jittered_delay_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        let seed = SeedStream::new(11);
        for attempt in 1..=6 {
            for draw in 0..8 {
                let d = policy.delay(attempt, seed, draw);
                assert_eq!(d, policy.delay(attempt, seed, draw));
                assert!(d.value() >= 0.0);
                assert!(d <= policy.base_delay_for(attempt));
            }
        }
    }

    #[test]
    fn zero_jitter_reproduces_the_base_schedule() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let seed = SeedStream::new(5);
        assert_eq!(policy.delay(3, seed, 0), policy.base_delay_for(3));
    }

    #[test]
    fn exhaustion_counts_the_first_attempt() {
        let policy = RetryPolicy::default();
        assert!(!policy.exhausted(1));
        assert!(!policy.exhausted(2));
        assert!(policy.exhausted(3));
        assert!(RetryPolicy::no_retries().exhausted(1));
    }

    #[test]
    fn deadline_is_exclusive_at_the_limit() {
        let deadline = Deadline::new(Seconds::new(10.0));
        assert!(!deadline.exceeded(Seconds::new(10.0)));
        assert!(deadline.exceeded(Seconds::new(10.001)));
    }

    #[test]
    fn deadline_tracks_a_virtual_clock() {
        use edgetune_runtime::SimClock;
        let deadline = Deadline::new(Seconds::new(10.0));
        let clock = SimClock::new();
        let start = clock.now();
        clock.advance(Seconds::new(10.0));
        assert!(
            !deadline.exceeded_since(&clock, start),
            "exclusive at the limit, same as the elapsed form"
        );
        clock.advance(Seconds::new(0.001));
        assert!(deadline.exceeded_since(&clock, start));
    }

    #[test]
    fn supervisor_deadline_works_in_the_clock_domain() {
        use edgetune_runtime::SimClock;
        let supervisor = Supervisor::new(RetryPolicy::default())
            .with_deadline(Deadline::new(Seconds::new(60.0)));
        let clock = SimClock::at(Seconds::new(100.0));
        let start = clock.now();
        clock.advance(Seconds::new(61.0));
        assert!(supervisor.deadline_exceeded_since(&clock, start));
        assert!(!Supervisor::default().deadline_exceeded_since(&clock, Seconds::ZERO));
    }

    #[test]
    fn supervisor_combines_retry_and_deadline() {
        let supervisor = Supervisor::new(RetryPolicy::default())
            .with_deadline(Deadline::new(Seconds::new(60.0)));
        assert!(!supervisor.give_up(2));
        assert!(supervisor.give_up(3));
        assert!(supervisor.deadline_exceeded(Seconds::new(61.0)));
        assert!(!Supervisor::default().deadline_exceeded(Seconds::new(1e9)));
    }
}
