//! Deterministic fault injection and fault-tolerance policies.
//!
//! Real edge fleets are not the happy path the paper benchmarks: trials
//! crash or straggle under co-location interference, inference workers
//! die, devices blink out for seconds at a time, and cache files get torn
//! by mid-write crashes. This crate provides the two halves needed to
//! engineer (and test) survival of all of that:
//!
//! * **Injection** — a [`FaultPlan`] holds per-component fault rates and a
//!   [`FaultInjector`] turns them into concrete, *reproducible* decisions.
//!   Every decision is drawn from an independent
//!   [`SeedStream`](edgetune_util::rng::SeedStream) child keyed by a
//!   stable index (trial counter, request sequence number), never by
//!   wall-clock time or arrival order, so the same seed and plan replay
//!   the same chaos regardless of thread interleaving. A plan of
//!   [`FaultPlan::none`] draws nothing at all: with injection disabled
//!   the layer is a strict no-op and every report stays byte-identical.
//! * **Tolerance** — a [`Supervisor`] combines a [`RetryPolicy`]
//!   (exponential backoff with deterministic jitter, capped) with an
//!   optional per-trial [`Deadline`] (checkable against elapsed time or
//!   directly against an `edgetune-runtime` clock), and a
//!   [`DegradationLadder`] orders
//!   the fallbacks taken when retries run out: serve a stale cache entry,
//!   fall back to the device-model default recommendation, or skip the
//!   trial with a penalty score. [`DegradationStats`] counts every rung
//!   of the ladder actually exercised so chaos runs are observable.

pub mod degrade;
pub mod plan;
pub mod retry;

pub use degrade::{DegradationLadder, DegradationStats, Fallback};
pub use plan::{FaultInjector, FaultPlan, TrialFault};
pub use retry::{Deadline, RetryPolicy, Supervisor};
