//! End-to-end deployment planning: tune the model, checkpoint it, then
//! pick inference parameters *for the deployment's actual traffic
//! pattern* (§3.4's Batching subcomponent) rather than for raw
//! steady-state throughput.
//!
//! Run with: `cargo run --release --example scenario_deployment`

use edgetune::batching::{MultiStreamScenario, ServerScenario};
use edgetune::inference::InferenceSpace;
use edgetune::scenario::{tune_for_scenario, Scenario};
use edgetune_device::spec::DeviceSpec;
use edgetune_nn::checkpoint;
use edgetune_nn::data::Dataset;
use edgetune_nn::layer::{Dense, Relu};
use edgetune_nn::model::Sequential;
use edgetune_nn::optim::Sgd;
use edgetune_nn::train::{evaluate, fit, FitConfig};
use edgetune_util::rng::SeedStream;
use edgetune_util::units::Seconds;
use edgetune_workloads::catalog::Workload;
use edgetune_workloads::WorkloadId;

fn main() -> Result<(), edgetune_util::Error> {
    let seed = SeedStream::new(77);

    // --- 1. Train a real model and checkpoint it (the "trained model"
    //        half of the tuning service's output). ---
    let data = Dataset::gaussian_blobs(400, 8, 4, 0.3, seed.child("data"));
    let (train, val) = data.split(0.8);
    let mut model = Sequential::new()
        .with(Dense::new(8, 24, seed.child("l1")))
        .with(Relu::new())
        .with(Dense::new(24, 4, seed.child("l2")));
    let mut opt = Sgd::new(0.1).with_momentum(0.9);
    let report = fit(
        &mut model,
        &mut opt,
        &train,
        &val,
        &FitConfig::new(20, 16).with_early_stopping(3),
        seed,
    );
    println!(
        "trained MLP to {:.1}% val accuracy in {} epochs (early stopping)",
        report.final_val_accuracy() * 100.0,
        report.epochs.len()
    );
    let ckpt = std::env::temp_dir().join("edgetune-example-model.ckpt");
    checkpoint::save(&mut model, &ckpt)?;
    let mut restored = Sequential::new()
        .with(Dense::new(8, 24, seed.child("x1")))
        .with(Relu::new())
        .with(Dense::new(24, 4, seed.child("x2")));
    checkpoint::load(&mut restored, &ckpt)?;
    println!(
        "checkpoint round-trip: restored accuracy {:.1}%\n",
        evaluate(&mut restored, &val) * 100.0
    );
    std::fs::remove_file(&ckpt).ok();

    // --- 2. Scenario-aware inference tuning for a production model. ---
    let device = DeviceSpec::raspberry_pi_3b();
    let space = InferenceSpace::for_device(&device);
    let profile = Workload::by_id(WorkloadId::Ic).profile(18.0);

    println!("deployment planning for ResNet18 on the {}:", device.name);
    let scenarios = [
        (
            "server: 64-sample queries / 30 s",
            Scenario::Server(ServerScenario::new(64, Seconds::new(30.0))),
        ),
        (
            "multi-stream: 0.2 samples/s",
            Scenario::MultiStream(MultiStreamScenario::new(0.2, 300)),
        ),
        (
            "multi-stream: 30 samples/s",
            Scenario::MultiStream(MultiStreamScenario::new(30.0, 300)),
        ),
    ];
    for (label, scenario) in scenarios {
        match tune_for_scenario(&device, &space, &profile, &scenario, seed) {
            Ok(rec) => println!(
                "  {label:<34} -> batch {:>3}, {} cores @ {:.2} GHz, mean response {:.3} s",
                rec.batch,
                rec.cores,
                rec.freq.as_ghz(),
                rec.mean_response.value()
            ),
            Err(err) => println!("  {label:<34} -> infeasible ({err})"),
        }
    }
    println!("\nthe optimal batch size depends on the traffic pattern — exactly why the");
    println!("Inference Tuning Server carries a dedicated Batching subcomponent (Fig. 8).");
    Ok(())
}
