//! Trace a full tuning study on the simulated clock and export it as
//! Chrome trace JSON — the paper's Fig. 6, reproduced as an artefact you
//! can open in `chrome://tracing` or <https://ui.perfetto.dev>: training
//! trials on the model-server tracks with the asynchronous inference
//! sweeps they spawn running concurrently on the inference-server tracks.
//!
//! Run with: `cargo run --release --example trace_study`

use edgetune::prelude::*;
use edgetune_trace::{ChromeEvent, ChromeTrace};

/// Complete (`"X"`) spans of one category.
fn spans<'t>(trace: &'t ChromeTrace, category: &str) -> Vec<&'t ChromeEvent> {
    trace
        .trace_events
        .iter()
        .filter(|event| event.ph == "X" && event.cat.as_deref() == Some(category))
        .collect()
}

/// Strict overlap of two spans on the viewer's microsecond timeline.
fn overlaps(a: &ChromeEvent, b: &ChromeEvent) -> bool {
    let (a0, a1) = (a.ts, a.ts + a.dur.unwrap_or(0.0));
    let (b0, b1) = (b.ts, b.ts + b.dur.unwrap_or(0.0));
    a0 < b1 && b0 < a1
}

fn config() -> EdgeTuneConfig {
    EdgeTuneConfig::for_workload(WorkloadId::Ic)
        .with_scheduler(SchedulerConfig::new(8, 2.0, 8))
        .with_seed(42)
}

fn main() -> Result<(), edgetune_util::Error> {
    // The pipelined study (the default): every trial fires its inference
    // sweep at trial start, on separate simulated resources.
    let (report, trace) = EdgeTune::new(config()).run_traced()?;
    let trials = spans(&trace, "model");
    let sweeps = spans(&trace, "inference");
    let overlapped = sweeps
        .iter()
        .filter(|sweep| trials.iter().any(|trial| overlaps(sweep, trial)))
        .count();
    println!(
        "pipelined study : {} trial spans, {} sweep spans, {} sweeps overlap a trial",
        trials.len(),
        sweeps.len(),
        overlapped,
    );
    println!(
        "                  makespan {:.1} min, best accuracy {:.1}%",
        report.tuning_runtime().as_minutes(),
        report.best_accuracy() * 100.0,
    );

    // The negative control of Fig. 6: with pipelining off the same sweeps
    // run serially after their trials and the makespan stretches.
    let (serial_report, serial_trace) =
        EdgeTune::new(config().without_pipelining()).run_traced()?;
    let serial_trials = spans(&serial_trace, "model");
    let serial_overlapped = spans(&serial_trace, "inference")
        .iter()
        .filter(|sweep| serial_trials.iter().any(|trial| overlaps(sweep, trial)))
        .count();
    println!(
        "serialised study: {} sweeps overlap a trial, makespan {:.1} min",
        serial_overlapped,
        serial_report.tuning_runtime().as_minutes(),
    );

    // The export is self-describing; `otherData` carries the summary.
    let summary: Vec<String> = trace
        .other_data
        .iter()
        .map(|(key, value)| format!("{key}={value}"))
        .collect();
    println!("trace summary   : {}", summary.join(" "));

    let path = "study.trace.json";
    trace.write(path)?;
    println!("wrote {path} — load it in chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
