//! Deploy a tuned configuration into the serving runtime and drive it
//! with three traffic patterns — steady Poisson, a bursty on/off trace
//! and a drifting rate shift — comparing the frozen offline optimum
//! against SLO-aware adaptive serving with online re-tuning.
//!
//! Run with: `cargo run --release --example serve_traffic`

use edgetune::batching::MultiStreamScenario;
use edgetune::scenario::Scenario;
use edgetune::serve::ScenarioRetuner;
use edgetune::InferenceSpace;
use edgetune_device::spec::DeviceSpec;
use edgetune_serving::{OnlineTuner, RuntimeOptions, ServingRuntime, SloPolicy, TrafficProfile};
use edgetune_util::rng::SeedStream;
use edgetune_util::units::Seconds;
use edgetune_workloads::catalog::Workload;
use edgetune_workloads::WorkloadId;

fn main() -> Result<(), edgetune_util::Error> {
    let device = DeviceSpec::raspberry_pi_3b();
    let workload = Workload::by_id(WorkloadId::Ic);
    let profile = workload.profile(workload.model_hp_values[0]);
    let retuner =
        ScenarioRetuner::new(device.clone(), InferenceSpace::for_device(&device), profile);
    let seed = SeedStream::new(42);
    let horizon = Seconds::new(240.0);
    let slo = SloPolicy::new(Seconds::new(4.0));

    // Tune the offline optimum for the design rate of 10 items/s.
    let design = Scenario::MultiStream(MultiStreamScenario::new(10.0, 400));
    let config = retuner.recommend(&design, seed.child("offline"))?;
    println!(
        "offline optimum on {}: batch={} cores={} freq={:.2} GHz",
        device.name,
        config.batch_cap,
        config.cores,
        config.freq.as_ghz()
    );

    let traces = [
        TrafficProfile::Poisson { rate: 10.0 },
        TrafficProfile::OnOff {
            on_rate: 30.0,
            off_rate: 3.0,
            mean_on: Seconds::new(15.0),
            mean_off: Seconds::new(30.0),
        },
        TrafficProfile::RateShift {
            initial_rate: 10.0,
            shifted_rate: 40.0,
            at: Seconds::new(80.0),
        },
    ];

    println!(
        "\n{:<8} {:<9} {:>9} {:>8} {:>9} {:>12} {:>9}",
        "trace", "policy", "served", "shed %", "p99 (s)", "SLO viol. %", "switches"
    );
    for traffic in &traces {
        for adaptive in [false, true] {
            let mut options = RuntimeOptions::new(slo);
            if !adaptive {
                options = options.static_serving();
            }
            let runtime = ServingRuntime::new(device.clone(), profile, config, options)?;
            let tuner = adaptive.then_some(&retuner as &dyn OnlineTuner);
            let report = runtime.serve(traffic, horizon, tuner, seed)?;
            println!(
                "{:<8} {:<9} {:>9} {:>8.1} {:>9.3} {:>12.1} {:>9}",
                traffic.name(),
                if adaptive { "adaptive" } else { "static" },
                format!("{}/{}", report.served, report.requests),
                report.shed_fraction * 100.0,
                report.p99_response.value(),
                report.slo_violation_rate * 100.0,
                report.switches.len(),
            );
        }
    }

    println!(
        "\nadaptive serving grows batches under pressure, sheds hopeless \
         requests, and re-tunes through the scenario tuner when the rate drifts."
    );
    Ok(())
}
