//! Quickstart: tune the image-classification workload with EdgeTune and
//! print both outputs — the winning training configuration *and* the
//! inference deployment recommendation.
//!
//! Run with: `cargo run --release --example quickstart`

use edgetune::prelude::*;

fn main() -> Result<(), edgetune_util::Error> {
    // ResNet/CIFAR10 with the paper's defaults: BOHB (TPE + HyperBand),
    // multi-budget trials, Raspberry Pi 3B+ as the edge target.
    let config = EdgeTuneConfig::for_workload(WorkloadId::Ic)
        .with_scheduler(SchedulerConfig::new(8, 2.0, 10))
        .with_seed(42);

    println!("tuning {:?} ...", config.workload);
    let report = EdgeTune::new(config).run()?;

    println!("\n== winning trial ==");
    println!("configuration : {}", report.best_config());
    println!("accuracy      : {:.1}%", report.best_accuracy() * 100.0);
    println!("trials run    : {}", report.history().len());
    println!(
        "tuning cost   : {:.1} min, {:.1} kJ",
        report.tuning_runtime().as_minutes(),
        report.tuning_energy().as_kilojoules()
    );

    let rec = report.recommendation();
    println!("\n== deploy for inference ==");
    println!("device        : {}", rec.device);
    println!("batch size    : {}", rec.batch);
    println!("CPU cores     : {}", rec.cores);
    println!("frequency     : {:.2} GHz", rec.freq.as_ghz());
    println!("throughput    : {:.1} img/s", rec.throughput.value());
    println!("energy        : {:.3} J/img", rec.energy_per_item.value());

    println!("\n== pipelining ==");
    println!(
        "inference tuning fully overlapped: {} (stall: {:.3} s)",
        report.timeline().overlap_fraction() >= 1.0 - 1e-9,
        report.stall_time().value()
    );
    println!(
        "historical cache: {} hits / {} misses",
        report.cache_stats().hits,
        report.cache_stats().misses
    );
    Ok(())
}
