//! Edge deployment across heterogeneous devices: the paper's common case
//! where "the tuned model might be deployed across different edge
//! devices" (§1). One tuning job per target device shows how the optimal
//! inference configuration — and therefore the recommendation EdgeTune
//! hands the user — shifts with the hardware.
//!
//! Run with: `cargo run --release --example edge_deployment`

use edgetune::inference::{InferenceSpace, InferenceTuningServer};
use edgetune::prelude::*;
use edgetune_device::spec::DeviceSpec;
use edgetune_tuner::objective::InferenceObjective;
use edgetune_workloads::catalog::Workload;

fn main() -> Result<(), edgetune_util::Error> {
    // The trained architecture whose deployment we are planning — take
    // the tuning winner for the speech-recognition workload.
    let report = EdgeTune::new(
        EdgeTuneConfig::for_workload(WorkloadId::Sr)
            .with_scheduler(SchedulerConfig::new(8, 2.0, 10))
            .with_seed(7),
    )
    .run()?;
    let workload = Workload::by_id(WorkloadId::Sr);
    let model_hp = report
        .best_config()
        .get("model_hp")
        .expect("model hyperparameter is part of the space");
    let profile = workload.profile(model_hp);
    println!(
        "tuned {} (embed_dim = {model_hp}) to {:.1}% accuracy\n",
        workload.model,
        report.best_accuracy() * 100.0
    );

    println!(
        "{:<22} {:>6} {:>6} {:>9} {:>12} {:>12}",
        "edge device", "batch", "cores", "freq", "throughput", "energy"
    );
    for device in [
        DeviceSpec::armv7_board(),
        DeviceSpec::raspberry_pi_3b(),
        DeviceSpec::intel_i7_7567u(),
    ] {
        let server = InferenceTuningServer::new(
            device.clone(),
            InferenceSpace::for_device(&device),
            InferenceObjective::new(Metric::Runtime),
        )?;
        let (rec, cost) = server.tune(&profile);
        println!(
            "{:<22} {:>6} {:>6} {:>6.2}GHz {:>7.1} it/s {:>9.3} J/it   (tuned in {:.1}s)",
            device.name,
            rec.batch,
            rec.cores,
            rec.freq.as_ghz(),
            rec.throughput.value(),
            rec.energy_per_item.value(),
            cost.runtime.value(),
        );
    }

    println!("\nsame model, three devices, three different optimal configurations —");
    println!("exactly the guidance a conventional tuning service never produces.");
    Ok(())
}
