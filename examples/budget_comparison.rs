//! The paper's budget study in miniature: run the same tuning job under
//! the epoch-based, dataset-based and multi-budget policies (§4.3,
//! Figs. 11-13) and compare cost and outcome.
//!
//! Run with: `cargo run --release --example budget_comparison`

use edgetune::prelude::*;

fn main() -> Result<(), edgetune_util::Error> {
    let policies = [
        BudgetPolicy::epoch_default(),
        BudgetPolicy::dataset_default(),
        BudgetPolicy::multi_default(),
    ];

    println!("budget ladders (iteration -> epochs / data fraction):");
    for policy in &policies {
        let ladder: Vec<String> = (1..=8)
            .map(|it| {
                let b = policy.budget(it);
                format!("{}ep/{:.0}%", b.epochs, b.data_fraction * 100.0)
            })
            .collect();
        println!("  {:<13} {}", policy.name(), ladder.join("  "));
    }

    println!("\ntuning ResNet/CIFAR10 under each policy:");
    println!(
        "{:<13} {:>8} {:>11} {:>11} {:>10} {:>12}",
        "budget", "trials", "runtime", "energy", "accuracy", "reached 80%?"
    );
    for policy in policies {
        let report = EdgeTune::new(
            EdgeTuneConfig::for_workload(WorkloadId::Ic)
                .with_budget(policy)
                .with_scheduler(SchedulerConfig::new(8, 2.0, 10))
                .with_seed(42),
        )
        .run()?;
        let reached = report
            .history()
            .first_reaching_accuracy(0.8)
            .map_or("never".to_string(), |id| format!("trial #{id}"));
        println!(
            "{:<13} {:>8} {:>9.1} m {:>9.1} kJ {:>9.1}% {:>12}",
            policy.name(),
            report.history().len(),
            report.tuning_runtime().as_minutes(),
            report.tuning_energy().as_kilojoules(),
            report.best_accuracy() * 100.0,
            reached,
        );
    }

    println!("\nthe multi-budget run reaches the target accuracy at a fraction of the");
    println!("epoch-based cost, while the dataset-only budget never gets there (Fig. 12).");
    Ok(())
}
