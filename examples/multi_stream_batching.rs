//! The Batching component's two serving scenarios (paper §3.4, Fig. 8):
//!
//! * a **server** receiving queries of N samples at a fixed frequency —
//!   how should each query be split into sub-batches?
//! * a **multi-stream** of single-sample queries arriving as a Poisson
//!   process — up to which size should samples be aggregated?
//!
//! Run with: `cargo run --release --example multi_stream_batching`

use edgetune::batching::{MultiStreamScenario, ServerScenario};
use edgetune_device::latency::CpuAllocation;
use edgetune_device::spec::DeviceSpec;
use edgetune_util::rng::SeedStream;
use edgetune_util::units::Seconds;
use edgetune_workloads::catalog::Workload;
use edgetune_workloads::WorkloadId;

fn main() {
    let device = DeviceSpec::raspberry_pi_3b();
    let alloc = CpuAllocation::full(&device);
    let profile = Workload::by_id(WorkloadId::Ic).profile(18.0);
    let candidates = [1u32, 2, 4, 8, 16, 32, 64];

    // --- Scenario 1: fixed-frequency server ---
    println!("== server scenario: 64-sample queries every 30 s ==");
    let server = ServerScenario::new(64, Seconds::new(30.0));
    for &batch in &candidates {
        match server.response_time(&device, &alloc, &profile, batch) {
            Some(t) => println!("  sub-batch {batch:>3}: response {:>7.2} s", t.value()),
            None => println!("  sub-batch {batch:>3}: UNSTABLE (backlog grows)"),
        }
    }
    if let Some((batch, t)) = server.optimal_batch(&device, &alloc, &profile, &candidates) {
        println!(
            "  -> optimal split: sub-batches of {batch} ({:.2} s per query)\n",
            t.value()
        );
    }

    // --- Scenario 2: Poisson multi-stream ---
    let seed = SeedStream::new(42);
    for rate in [2.0f64, 10.0, 25.0] {
        println!("== multi-stream scenario: Poisson arrivals at {rate} samples/s ==");
        let scenario = MultiStreamScenario::new(rate, 600);
        for &cap in &candidates {
            let t = scenario.mean_response_time(&device, &alloc, &profile, cap, seed);
            println!("  batch cap {cap:>3}: mean response {:>8.3} s", t.value());
        }
        if let Some((cap, t)) =
            scenario.optimal_batch_cap(&device, &alloc, &profile, &candidates, seed)
        {
            println!(
                "  -> optimal aggregation cap: {cap} ({:.3} s mean response)\n",
                t.value()
            );
        }
    }
    println!("higher arrival rates need larger aggregation caps — the sweet spot the");
    println!("Inference Tuning Server's Batching subcomponent finds automatically.");
}
