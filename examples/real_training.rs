//! EdgeTune driving *real* gradient-descent training: the same
//! middleware (onefold search, async inference server, historical cache)
//! runs against `edgetune-nn`'s from-scratch MLP instead of the workload
//! simulator — proving the tuning stack is not tied to simulation.
//!
//! Run with: `cargo run --release --example real_training`

use edgetune::backend::{NnTrainingBackend, TrainingBackend};
use edgetune::prelude::*;
use edgetune_util::rng::SeedStream;

fn main() -> Result<(), edgetune_util::Error> {
    let mut backend = NnTrainingBackend::new(SeedStream::new(2024));
    println!("search space (real MLP training):");
    for (name, domain) in backend.search_space().iter() {
        println!("  {name}: {domain:?}");
    }

    let config = EdgeTuneConfig::for_workload(WorkloadId::Ic) // workload id unused by custom backends
        .with_scheduler(SchedulerConfig::new(6, 2.0, 6))
        .without_hyperband()
        .with_seed(9);
    println!("\nrunning EdgeTune over actual SGD training ...");
    let report = EdgeTune::new(config).run_with_backend(&mut backend)?;

    println!("\n== winner (really trained) ==");
    println!("configuration : {}", report.best_config());
    println!("val accuracy  : {:.1}%", report.best_accuracy() * 100.0);
    println!("trials        : {}", report.history().len());
    println!(
        "wall time     : {:.2} s of genuine training",
        report
            .history()
            .records()
            .iter()
            .map(|r| r.outcome.runtime.value())
            .sum::<f64>()
    );

    let rec = report.recommendation();
    println!("\n== edge recommendation for the trained MLP ==");
    println!(
        "deploy on {} with batch {}, {} cores @ {:.2} GHz -> {:.0} items/s",
        rec.device,
        rec.batch,
        rec.cores,
        rec.freq.as_ghz(),
        rec.throughput.value()
    );
    Ok(())
}
