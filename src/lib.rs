//! Workspace root crate for the EdgeTune reproduction.
//!
//! This crate only hosts the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`. The actual library surface
//! lives in the `edgetune` crate and its substrate crates.
